"""Offline verification of decision-tree policies (Section 3.3).

Two verifiers are implemented:

* :func:`verify_criteria_2_3` — **Algorithm 1** of the paper.  It enumerates
  every leaf, reconstructs its unique root-to-leaf decision path, intersects
  the half-spaces along the path into an axis-aligned input box, determines
  whether that box contains any too-warm / too-cold zone temperatures and, if
  so, checks that the leaf's setpoints respond in the correct direction.
  Failing leaves are *corrected in place* by setting their setpoints to the
  median of the comfort zone, which yields a 100% guarantee on criteria #2/#3.

* :func:`verify_criterion_1` — the probabilistic verifier.  It samples start
  states from the augmented historical distribution restricted to the safe set
  and checks one-step safety ``f_hat(x, T(x)) in S``; the paper proves this
  one-step estimate equals the H-step forward-reachability-tube estimate while
  allowing full batching.  A bootstrapped H-step variant is also provided
  (:func:`verify_criterion_1_bootstrap`) so the equivalence can be checked
  empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.criteria import VerificationCriteria
from repro.core.sampling import AugmentedHistoricalSampler
from repro.core.tree_policy import TreePolicy, ZONE_TEMPERATURE_FEATURE
from repro.utils.rng import RNGLike, ensure_rng


# --------------------------------------------------------------------- reports
@dataclass
class LeafVerificationRecord:
    """Verification outcome for a single leaf."""

    leaf_id: int
    zone_temperature_interval: tuple
    heating_setpoint: int
    cooling_setpoint: int
    subject_to_criterion_2: bool
    subject_to_criterion_3: bool
    violates_criterion_2: bool
    violates_criterion_3: bool
    corrected: bool


@dataclass
class FormalVerificationReport:
    """Result of Algorithm 1 over a whole policy."""

    total_nodes: int
    total_leaves: int
    leaves_subject_to_criterion_2: int
    leaves_subject_to_criterion_3: int
    violations_criterion_2: int
    violations_criterion_3: int
    corrected_criterion_2: int
    corrected_criterion_3: int
    records: List[LeafVerificationRecord] = field(default_factory=list)

    @property
    def total_corrected(self) -> int:
        return self.corrected_criterion_2 + self.corrected_criterion_3

    @property
    def satisfied(self) -> bool:
        """Whether the policy (after any corrections) satisfies criteria #2/#3."""
        return (
            self.violations_criterion_2 == self.corrected_criterion_2
            and self.violations_criterion_3 == self.corrected_criterion_3
        )

    @classmethod
    def from_dict(cls, data: dict) -> "FormalVerificationReport":
        """Rebuild a report persisted through ``to_jsonable`` (policy store)."""
        records = [
            LeafVerificationRecord(
                leaf_id=int(r["leaf_id"]),
                zone_temperature_interval=tuple(r["zone_temperature_interval"]),
                heating_setpoint=int(r["heating_setpoint"]),
                cooling_setpoint=int(r["cooling_setpoint"]),
                subject_to_criterion_2=bool(r["subject_to_criterion_2"]),
                subject_to_criterion_3=bool(r["subject_to_criterion_3"]),
                violates_criterion_2=bool(r["violates_criterion_2"]),
                violates_criterion_3=bool(r["violates_criterion_3"]),
                corrected=bool(r["corrected"]),
            )
            for r in data.get("records", [])
        ]
        return cls(
            total_nodes=int(data["total_nodes"]),
            total_leaves=int(data["total_leaves"]),
            leaves_subject_to_criterion_2=int(data["leaves_subject_to_criterion_2"]),
            leaves_subject_to_criterion_3=int(data["leaves_subject_to_criterion_3"]),
            violations_criterion_2=int(data["violations_criterion_2"]),
            violations_criterion_3=int(data["violations_criterion_3"]),
            corrected_criterion_2=int(data["corrected_criterion_2"]),
            corrected_criterion_3=int(data["corrected_criterion_3"]),
            records=records,
        )


@dataclass
class ProbabilisticVerificationReport:
    """Result of the criterion #1 Monte-Carlo verification."""

    safe_probability: float
    num_samples: int
    threshold: float
    passed: bool
    method: str = "one_step"

    @classmethod
    def from_dict(cls, data: dict) -> "ProbabilisticVerificationReport":
        return cls(
            safe_probability=float(data["safe_probability"]),
            num_samples=int(data["num_samples"]),
            threshold=float(data["threshold"]),
            passed=bool(data["passed"]),
            method=str(data.get("method", "one_step")),
        )


@dataclass
class VerificationSummary:
    """Everything Table 2 of the paper reports for one city's policy."""

    city: Optional[str]
    total_nodes: int
    leaf_nodes: int
    safe_probability: float
    corrected_criterion_2: int
    corrected_criterion_3: int
    criterion_1_passed: bool
    formal_report: FormalVerificationReport = None
    probabilistic_report: ProbabilisticVerificationReport = None

    def as_row(self) -> List:
        """Row of the Table 2 reproduction."""
        return [
            self.city or "-",
            self.total_nodes,
            self.leaf_nodes,
            self.safe_probability,
            self.corrected_criterion_2,
            self.corrected_criterion_3,
        ]

    @classmethod
    def from_dict(cls, data: dict) -> "VerificationSummary":
        """Rebuild a summary persisted through ``to_jsonable`` (policy store)."""
        formal = data.get("formal_report")
        probabilistic = data.get("probabilistic_report")
        return cls(
            city=data.get("city"),
            total_nodes=int(data["total_nodes"]),
            leaf_nodes=int(data["leaf_nodes"]),
            safe_probability=float(data["safe_probability"]),
            corrected_criterion_2=int(data["corrected_criterion_2"]),
            corrected_criterion_3=int(data["corrected_criterion_3"]),
            criterion_1_passed=bool(data["criterion_1_passed"]),
            formal_report=FormalVerificationReport.from_dict(formal) if formal else None,
            probabilistic_report=(
                ProbabilisticVerificationReport.from_dict(probabilistic)
                if probabilistic
                else None
            ),
        )


# ---------------------------------------------------------------- Algorithm 1
def verify_criteria_2_3(
    policy: TreePolicy,
    criteria: VerificationCriteria,
    correct: bool = True,
) -> FormalVerificationReport:
    """Formal decision-path verification of criteria #2 and #3 (Algorithm 1).

    Parameters
    ----------
    policy:
        The extracted decision-tree policy.
    criteria:
        The verification criteria (comfort range and correction target).
    correct:
        When True (the default, as in the paper), failing leaves are edited in
        place so the returned policy carries a 100% guarantee.
    """
    z_lower = criteria.safety.lower
    z_upper = criteria.safety.upper
    records: List[LeafVerificationRecord] = []
    subject_2 = subject_3 = 0
    violations_2 = violations_3 = 0
    corrected_2 = corrected_3 = 0

    for region in policy.leaf_regions():
        box = region.box
        temp_low, temp_high = box.interval(ZONE_TEMPERATURE_FEATURE)
        heating, cooling = policy.leaf_setpoints(region.leaf)

        # Does this leaf handle any inputs whose zone temperature is too warm /
        # too cold?  (Algorithm 1, line 6: the box intersects the unsafe set.)
        handles_too_warm = temp_high > z_upper
        handles_too_cold = temp_low < z_lower
        violates_2 = violates_3 = False

        if handles_too_warm:
            subject_2 += 1
            # The zone temperatures this leaf must respond to are
            # (max(temp_low, z_upper), temp_high]; the cooling setpoint must lie
            # below every one of them.
            infimum = max(temp_low, z_upper)
            if temp_low > z_upper:
                # The box lies strictly in the too-warm region, including its
                # lower edge, so the setpoint must be strictly below that edge.
                violates_2 = not (cooling < infimum)
            else:
                violates_2 = not (cooling <= infimum)
            if violates_2:
                violations_2 += 1

        if handles_too_cold:
            subject_3 += 1
            supremum = min(temp_high, z_lower)
            if temp_high < z_lower:
                violates_3 = not (heating > supremum)
            else:
                violates_3 = not (heating >= supremum)
            if violates_3:
                violations_3 += 1

        corrected = False
        if correct and (violates_2 or violates_3):
            corrective_heating, corrective_cooling = criteria.corrective_setpoints()
            policy.set_leaf_action(
                region.leaf, int(round(corrective_heating)), int(round(corrective_cooling))
            )
            corrected = True
            if violates_2:
                corrected_2 += 1
            if violates_3:
                corrected_3 += 1
            heating, cooling = policy.leaf_setpoints(region.leaf)

        records.append(
            LeafVerificationRecord(
                leaf_id=region.leaf.node_id,
                zone_temperature_interval=(temp_low, temp_high),
                heating_setpoint=heating,
                cooling_setpoint=cooling,
                subject_to_criterion_2=handles_too_warm,
                subject_to_criterion_3=handles_too_cold,
                violates_criterion_2=violates_2,
                violates_criterion_3=violates_3,
                corrected=corrected,
            )
        )

    return FormalVerificationReport(
        total_nodes=policy.node_count,
        total_leaves=policy.leaf_count,
        leaves_subject_to_criterion_2=subject_2,
        leaves_subject_to_criterion_3=subject_3,
        violations_criterion_2=violations_2,
        violations_criterion_3=violations_3,
        corrected_criterion_2=corrected_2,
        corrected_criterion_3=corrected_3,
        records=records,
    )


# ----------------------------------------------------------------- criterion 1
def _sample_safe_start_states(
    sampler: AugmentedHistoricalSampler,
    criteria: VerificationCriteria,
    num_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample policy inputs whose zone temperature lies in the safe set.

    Samples are drawn from the augmented historical distribution; the zone
    temperature feature is clipped into the comfort range so every start state
    belongs to the set S that criterion #1 quantifies over, while the
    disturbance components keep their historical distribution.
    """
    samples = sampler.sample(num_samples, rng)
    samples[:, ZONE_TEMPERATURE_FEATURE] = np.clip(
        samples[:, ZONE_TEMPERATURE_FEATURE], criteria.safety.lower, criteria.safety.upper
    )
    return samples


def verify_criterion_1(
    policy: TreePolicy,
    dynamics_model,
    sampler: AugmentedHistoricalSampler,
    criteria: VerificationCriteria,
    num_samples: int = 2000,
    seed: RNGLike = None,
) -> ProbabilisticVerificationReport:
    """One-step probabilistic verification of criterion #1.

    Repeatedly sample a safe start state ``x`` from the augmented historical
    distribution, apply the tree policy, predict the next state with the
    learned dynamics model and count how often the next state is still safe.
    By the paper's argument this estimates the same failure probability as
    checking full H-step reachability tubes, with far less computation.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = ensure_rng(seed)
    samples = _sample_safe_start_states(sampler, criteria, num_samples, rng)

    actions = np.array([policy.setpoints_for(row) for row in samples], dtype=float)
    states = samples[:, ZONE_TEMPERATURE_FEATURE]
    disturbances = samples[:, 1:]
    prediction = dynamics_model.predict(states, disturbances, actions)
    next_states = prediction[0] if isinstance(prediction, tuple) else prediction

    safe = (next_states >= criteria.safety.lower) & (next_states <= criteria.safety.upper)
    safe_probability = float(np.mean(safe))
    return ProbabilisticVerificationReport(
        safe_probability=safe_probability,
        num_samples=num_samples,
        threshold=criteria.safe_probability_threshold,
        passed=criteria.criterion_1_satisfied(safe_probability),
        method="one_step",
    )


def verify_criterion_1_bootstrap(
    policy: TreePolicy,
    dynamics_model,
    sampler: AugmentedHistoricalSampler,
    criteria: VerificationCriteria,
    num_samples: int = 200,
    seed: RNGLike = None,
) -> ProbabilisticVerificationReport:
    """H-step bootstrapped verification of criterion #1 (the slow baseline).

    For every sampled safe start state, roll the closed loop (tree policy +
    dynamics model) forward for ``criteria.horizon`` steps under a persistence
    disturbance forecast and mark the start state unsafe if any state along the
    trajectory leaves the comfort range.  Kept for validating the paper's
    one-step equivalence argument and for the verification-overhead ablation.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = ensure_rng(seed)
    samples = _sample_safe_start_states(sampler, criteria, num_samples, rng)

    failures = 0
    for row in samples:
        state = float(row[ZONE_TEMPERATURE_FEATURE])
        disturbance = row[1:]
        trajectory_safe = True
        current = state
        for _t in range(criteria.horizon):
            heating, cooling = policy.setpoints_for(np.concatenate(([current], disturbance)))
            prediction = dynamics_model.predict(
                np.array([current]), disturbance.reshape(1, -1), np.array([[heating, cooling]])
            )
            current = float(prediction[0][0] if isinstance(prediction, tuple) else prediction[0])
            if not criteria.safety.is_safe(current):
                trajectory_safe = False
                break
        if not trajectory_safe:
            failures += 1

    safe_probability = 1.0 - failures / num_samples
    return ProbabilisticVerificationReport(
        safe_probability=safe_probability,
        num_samples=num_samples,
        threshold=criteria.safe_probability_threshold,
        passed=criteria.criterion_1_satisfied(safe_probability),
        method="bootstrap",
    )


# --------------------------------------------------------------------- summary
def verify_policy(
    policy: TreePolicy,
    dynamics_model,
    sampler: AugmentedHistoricalSampler,
    criteria: VerificationCriteria,
    num_probabilistic_samples: int = 2000,
    correct: bool = True,
    seed: RNGLike = None,
) -> VerificationSummary:
    """Run the full verification procedure and assemble a Table-2-style summary.

    Criteria #2/#3 are verified (and corrected) first, then criterion #1 is
    estimated on the corrected policy, matching the order of Fig. 2.
    """
    formal = verify_criteria_2_3(policy, criteria, correct=correct)
    probabilistic = verify_criterion_1(
        policy,
        dynamics_model,
        sampler,
        criteria,
        num_samples=num_probabilistic_samples,
        seed=seed,
    )
    return VerificationSummary(
        city=policy.city,
        total_nodes=policy.node_count,
        leaf_nodes=policy.leaf_count,
        safe_probability=probabilistic.safe_probability,
        corrected_criterion_2=formal.corrected_criterion_2,
        corrected_criterion_3=formal.corrected_criterion_3,
        criterion_1_passed=probabilistic.passed,
        formal_report=formal,
        probabilistic_report=probabilistic,
    )
