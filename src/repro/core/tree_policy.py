"""The deployable decision-tree policy (Section 3.2.2).

A :class:`TreePolicy` wraps a fitted CART classifier whose classes are discrete
action indices over the (heating, cooling) setpoint pairs.  The policy input is
the concatenated ``(s, d)`` vector in the Table-1 order; every decision node
compares one physical quantity against a threshold, so the policy is directly
readable by building engineers (``tree_policy.describe()`` prints it).

The policy object also exposes the structural information the verifier needs:
leaf enumeration, decision paths and per-leaf input boxes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtree.cart import DecisionTreeClassifier
from repro.dtree.export import check_schema_version, tree_from_dict, tree_to_dict, tree_to_text
from repro.dtree.node import TreeNode
from repro.dtree.paths import LeafRegion, enumerate_leaf_regions
from repro.env.hvac_env import OBSERVATION_NAMES

#: Feature names of the policy-input vector (s followed by the disturbances).
POLICY_FEATURE_NAMES: Tuple[str, ...] = OBSERVATION_NAMES

#: Version of the ``TreePolicy.to_dict`` format (the policy-level envelope
#: around the versioned tree dictionary).
POLICY_SCHEMA_VERSION = 1

#: Index of the controlled-zone temperature in the policy-input vector.
ZONE_TEMPERATURE_FEATURE = 0


class TreePolicy:
    """A decision-tree HVAC policy mapping (s, d) to a setpoint pair."""

    def __init__(
        self,
        tree: DecisionTreeClassifier,
        action_pairs: Sequence[Tuple[int, int]],
        feature_names: Optional[Sequence[str]] = None,
        city: Optional[str] = None,
    ):
        if tree.root is None:
            raise ValueError("TreePolicy requires a fitted decision tree")
        self.tree = tree
        self.action_pairs = [tuple(int(v) for v in pair) for pair in action_pairs]
        if not self.action_pairs:
            raise ValueError("action_pairs must not be empty")
        self.feature_names = list(feature_names) if feature_names else list(POLICY_FEATURE_NAMES)
        if tree.n_features is not None and len(self.feature_names) != tree.n_features:
            raise ValueError(
                f"feature_names has {len(self.feature_names)} entries but the tree "
                f"expects {tree.n_features} features"
            )
        self.city = city

    # --------------------------------------------------------------- decisions
    def predict_action_index(self, policy_input: np.ndarray) -> int:
        """The discrete action index selected for a policy input."""
        label = self.tree.predict_one(np.asarray(policy_input, dtype=float))
        return int(label)

    def setpoints_for(self, policy_input: np.ndarray) -> Tuple[int, int]:
        """The (heating, cooling) setpoints selected for a policy input."""
        index = self.predict_action_index(policy_input)
        return self.decode_action(index)

    def predict_action_indices(self, policy_inputs: np.ndarray) -> np.ndarray:
        """Action indices for a batch of policy inputs (reference traversal).

        One recursive tree walk per row — the readable reference the compiled
        serving path (:meth:`compiled`) is verified against.
        """
        inputs = np.atleast_2d(np.asarray(policy_inputs, dtype=float))
        return np.fromiter(
            (int(self.tree.predict_one(row)) for row in inputs),
            dtype=np.int64,
            count=len(inputs),
        )

    def compiled(self):
        """This policy flattened for vectorised serving.

        Returns a :class:`repro.serving.CompiledTreePolicy` whose
        ``predict_batch`` selects exactly the same actions as the recursive
        traversal, at array speed.  Imported lazily to keep ``repro.core``
        free of a hard dependency on the serving subsystem.
        """
        from repro.serving.compiled import CompiledTreePolicy

        return CompiledTreePolicy.from_policy(self)

    def decode_action(self, action_index: int) -> Tuple[int, int]:
        """Map an action label to its setpoint pair."""
        if not (0 <= int(action_index) < len(self.action_pairs)):
            raise IndexError(
                f"Action index {action_index} outside the policy's action table "
                f"(size {len(self.action_pairs)})"
            )
        return self.action_pairs[int(action_index)]

    def encode_action(self, heating: int, cooling: int) -> int:
        """Map a setpoint pair to its action label (nearest valid pair)."""
        target = (int(round(heating)), int(round(cooling)))
        if target in self.action_pairs:
            return self.action_pairs.index(target)
        distances = [abs(p[0] - target[0]) + abs(p[1] - target[1]) for p in self.action_pairs]
        return int(np.argmin(distances))

    def __call__(self, policy_input: np.ndarray) -> Tuple[int, int]:
        return self.setpoints_for(policy_input)

    # ------------------------------------------------------------- structure
    @property
    def input_dim(self) -> int:
        return len(self.feature_names)

    @property
    def node_count(self) -> int:
        return self.tree.node_count

    @property
    def leaf_count(self) -> int:
        return self.tree.leaf_count

    @property
    def depth(self) -> int:
        return self.tree.depth

    @property
    def corrected_leaf_count(self) -> int:
        return sum(1 for leaf in self.tree.leaves() if leaf.corrected)

    def leaves(self) -> List[TreeNode]:
        return self.tree.leaves()

    def leaf_regions(self) -> List[LeafRegion]:
        """Every leaf with its decision path and input box (used by Algorithm 1)."""
        return enumerate_leaf_regions(self.tree.root, self.input_dim)

    def leaf_setpoints(self, leaf: TreeNode) -> Tuple[int, int]:
        """The setpoint pair a leaf returns."""
        return self.decode_action(int(leaf.prediction))

    def set_leaf_action(self, leaf: TreeNode, heating: int, cooling: int) -> None:
        """Edit a leaf's decision in place (used by the verification correction)."""
        leaf.prediction = self.encode_action(heating, cooling)
        leaf.corrected = True

    # ------------------------------------------------------------ description
    def describe(self, max_depth: Optional[int] = None) -> str:
        """Human-readable IF/ELSE rendering of the policy."""

        def _format(label) -> str:
            heating, cooling = self.decode_action(int(label))
            return f"setpoints(heating={heating}, cooling={cooling})"

        return tree_to_text(
            self.tree,
            feature_names=self.feature_names,
            value_formatter=_format,
            max_depth=max_depth,
        )

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> Dict:
        return {
            "schema_version": POLICY_SCHEMA_VERSION,
            "city": self.city,
            "feature_names": self.feature_names,
            "action_pairs": [list(pair) for pair in self.action_pairs],
            "tree": tree_to_dict(self.tree),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TreePolicy":
        check_schema_version(data, POLICY_SCHEMA_VERSION, "policy")
        tree = tree_from_dict(data["tree"])
        if not isinstance(tree, DecisionTreeClassifier):
            raise ValueError("TreePolicy requires a classification tree")
        return cls(
            tree=tree,
            action_pairs=[tuple(pair) for pair in data["action_pairs"]],
            feature_names=data.get("feature_names"),
            city=data.get("city"),
        )
