"""The end-to-end extract-verify-deploy pipeline (Fig. 2 of the paper).

:class:`VerifiedPolicyPipeline` chains every box of the paper's pipeline into
one call::

    historical data ──> dynamics model ──> RS optimiser
                                   │             │
                                   └── decision dataset (Monte-Carlo distillation)
                                                 │
                                            CART tree
                                                 │
                            formal + probabilistic verification (and correction)
                                                 │
                                           deployable policy

Every stage can be overridden by passing a pre-built artefact to
:meth:`VerifiedPolicyPipeline.run` (an existing environment, historical
dataset or fitted dynamics model), which is how the experiments reuse
expensive intermediates across ablations.  All stochasticity flows from
``PipelineConfig.seed`` through per-stage child generators, so a pipeline run
is exactly reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.criteria import SafetySpec, VerificationCriteria
from repro.core.decision_dataset import DecisionDataset, DecisionDatasetGenerator
from repro.core.extraction import ExtractionSettings, PolicyExtractor
from repro.core.sampling import AugmentedHistoricalSampler
from repro.core.tree_policy import TreePolicy
from repro.core.verification import VerificationSummary, verify_policy
from repro.env.dataset import TransitionDataset, collect_historical_data
from repro.env.hvac_env import HVACEnvironment, make_environment
from repro.nn.dynamics import ThermalDynamicsModel
from repro.utils.config import (
    ComfortConfig,
    ExperimentConfig,
    RewardConfig,
    SimulationConfig,
    get_season,
)
from repro.utils.rng import spawn_rngs
from repro.utils.serialization import save_json, to_jsonable


@dataclass(frozen=True)
class PipelineConfig:
    """Everything one extract-verify-deploy run needs (Section 4.1 defaults).

    The defaults mirror the paper's experimental platform; use
    :meth:`PipelineConfig.tiny` for smoke tests and CI, where a full-size run
    would be needlessly slow.
    """

    # ------------------------------------------------- environment / history
    city: str = "pittsburgh"
    season: str = "winter"
    seed: int = 0
    historical_days: int = 14
    peak_occupants: int = 24
    exploration_probability: float = 0.3
    # ------------------------------------------------------- dynamics model
    hidden_sizes: Tuple[int, ...] = (64, 64)
    training_epochs: int = 60
    learning_rate: float = 1e-3
    weight_decay: float = 1e-5
    batch_size: int = 64
    test_fraction: float = 0.2
    # -------------------------------------------------------- sampler (Eq. 5)
    noise_level: float = 0.05
    # ------------------------------------------------------------- optimiser
    optimizer_samples: int = 1000
    planning_horizon: int = 20
    discount: float = 0.99
    # ------------------------------------------------------ decision dataset
    num_decision_data: int = 500
    monte_carlo_runs: int = 5
    # ------------------------------------------------------------ extraction
    criterion: str = "gini"
    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    # ---------------------------------------------------------- verification
    safe_probability_threshold: float = 0.9
    num_probabilistic_samples: int = 2000
    correct_failing_leaves: bool = True
    # ---------------------------------------------------------- dtype policy
    #: Inference dtype for the dynamics model during planning/distillation/
    #: verification: "float64" is the bit-exact reference, "float32" the
    #: opt-in BLAS fast path (training always runs in float64).
    dtype: str = "float64"

    def __post_init__(self) -> None:
        get_season(self.season)  # raises ValueError on an unknown season
        if self.historical_days <= 0:
            raise ValueError("historical_days must be positive")
        if self.num_decision_data <= 0:
            raise ValueError("num_decision_data must be positive")
        from repro.data import resolve_float_dtype

        resolve_float_dtype(self.dtype)  # raises ValueError on an unknown dtype

    # ------------------------------------------------------------- derived
    @property
    def comfort(self) -> ComfortConfig:
        return ComfortConfig.for_season(self.season)

    def experiment_config(self) -> ExperimentConfig:
        """The environment configuration implied by this pipeline config."""
        season = get_season(self.season)
        return ExperimentConfig(
            city=self.city,
            simulation=SimulationConfig(
                days=self.historical_days,
                start_month=season.start_month,
                start_day_of_year=season.start_day_of_year,
            ),
            reward=RewardConfig(comfort=self.comfort),
            seed=self.seed,
        )

    def criteria(self) -> VerificationCriteria:
        """The Eq. 4 verification criteria implied by this config."""
        return VerificationCriteria(
            safety=SafetySpec(comfort=self.comfort),
            safe_probability_threshold=self.safe_probability_threshold,
            horizon=self.planning_horizon,
        )

    def extraction_settings(self) -> ExtractionSettings:
        return ExtractionSettings(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
        )

    def with_overrides(self, **overrides) -> "PipelineConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def tiny(cls, city: str = "pittsburgh", seed: int = 0, **overrides) -> "PipelineConfig":
        """A miniature configuration that runs end-to-end in seconds.

        Used by the test suite, the CI smoke job and the default on-the-fly
        policy construction of the ``dt`` agent.
        """
        base = dict(
            city=city,
            seed=seed,
            historical_days=2,
            hidden_sizes=(16,),
            training_epochs=15,
            optimizer_samples=64,
            planning_horizon=5,
            num_decision_data=96,
            monte_carlo_runs=3,
            num_probabilistic_samples=256,
        )
        base.update(overrides)
        return cls(**base)


@dataclass
class PipelineResult:
    """Everything the pipeline produced, from raw data to the verified policy.

    A result resolved from the :class:`~repro.store.PolicyStore` carries the
    persisted artifacts (policy, verification, fidelity, model metrics) but
    not the heavyweight intermediates — those fields are ``None`` and
    ``cache_hit`` is True.
    """

    config: PipelineConfig
    policy: TreePolicy
    verification: VerificationSummary
    fidelity: float
    decision_dataset: Optional[DecisionDataset] = None
    historical_data: Optional[TransitionDataset] = None
    dynamics_model: Optional[ThermalDynamicsModel] = None
    sampler: Optional[AugmentedHistoricalSampler] = None
    model_rmse: float = float("nan")
    model_mae: float = float("nan")
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: True when this result was loaded from the policy store (no extraction).
    cache_hit: bool = False
    #: Store name ("city/season/key_id") when the store was involved.
    store_key: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        return float(sum(self.stage_seconds.values()))

    @property
    def verified(self) -> bool:
        """Whether the (corrected) policy passes all three Eq. 4 criteria."""
        return bool(
            self.verification.formal_report.satisfied
            and self.verification.criterion_1_passed
        )

    def agent(self):
        """The deployable controller wrapping the verified policy."""
        from repro.agents.dt_agent import DecisionTreeAgent

        return DecisionTreeAgent(self.policy)

    def describe(self, max_depth: Optional[int] = None) -> str:
        """Human-readable rendering of the extracted policy."""
        return self.policy.describe(max_depth=max_depth)

    def summary_dict(self) -> Dict:
        """A compact JSON-ready summary (Table 2 fields plus diagnostics)."""
        return to_jsonable(
            {
                "city": self.config.city,
                "season": self.config.season,
                "seed": self.config.seed,
                "tree_nodes": self.policy.node_count,
                "tree_leaves": self.policy.leaf_count,
                "tree_depth": self.policy.depth,
                "fidelity": self.fidelity,
                "model_rmse": self.model_rmse,
                "model_mae": self.model_mae,
                "safe_probability": self.verification.safe_probability,
                "criterion_1_passed": self.verification.criterion_1_passed,
                "corrected_criterion_2": self.verification.corrected_criterion_2,
                "corrected_criterion_3": self.verification.corrected_criterion_3,
                "verified": self.verified,
                "decision_data": (
                    len(self.decision_dataset) if self.decision_dataset is not None else None
                ),
                "historical_transitions": (
                    len(self.historical_data) if self.historical_data is not None else None
                ),
                "cache_hit": self.cache_hit,
                "store_key": self.store_key,
                "stage_seconds": self.stage_seconds,
            }
        )

    def save_policy(self, path) -> None:
        """Persist the verified policy (and its provenance summary) as JSON."""
        save_json({"summary": self.summary_dict(), "policy": self.policy.to_dict()}, path)


class VerifiedPolicyPipeline:
    """The end-to-end extract-verify-deploy pipeline of Fig. 2.

    Example
    -------
    >>> result = VerifiedPolicyPipeline(PipelineConfig.tiny()).run()
    >>> agent = result.agent()          # deployable DecisionTreeAgent
    >>> result.verification.safe_probability  # doctest: +SKIP

    When a ``store`` is supplied (a :class:`~repro.store.PolicyStore`, a path,
    or ``True`` for the default store), :meth:`run` first resolves the
    configuration against the store — a hit returns the persisted policy with
    zero re-extraction — and every fresh run is written through, so the
    second identical invocation is a pure cache hit.
    """

    def __init__(self, config: Optional[PipelineConfig] = None, store=None):
        self.config = config or PipelineConfig()
        from repro.store import resolve_store

        self.store = resolve_store(store)

    # ------------------------------------------------------------------ stages
    def build_environment(self) -> HVACEnvironment:
        """Stage 0: the simulated building that stands in for the real plant."""
        cfg = self.config
        return make_environment(
            city=cfg.city,
            seed=cfg.seed,
            config=cfg.experiment_config(),
            peak_occupants=cfg.peak_occupants,
        )

    def collect_history(self, environment: HVACEnvironment, rng) -> TransitionDataset:
        """Stage 1: historical transitions from the behaviour controller."""
        from repro.agents.rule_based import RuleBasedAgent

        behaviour = RuleBasedAgent(comfort=self.config.comfort)
        return collect_historical_data(
            environment,
            behaviour,
            exploration_probability=self.config.exploration_probability,
            seed=rng,
        )

    def train_dynamics_model(
        self, historical_data: TransitionDataset, rng
    ) -> Tuple[ThermalDynamicsModel, float, float]:
        """Stage 2: fit the MLP dynamics model, report held-out RMSE/MAE."""
        cfg = self.config
        train, test = historical_data.train_test_split(cfg.test_fraction, seed=rng)
        model = ThermalDynamicsModel(hidden_sizes=cfg.hidden_sizes, seed=rng)
        model.fit(
            train,
            epochs=cfg.training_epochs,
            learning_rate=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
            batch_size=cfg.batch_size,
            seed=rng,
        )
        rmse, mae = model.evaluate(test)
        return model, rmse, mae

    def build_extractor(
        self,
        environment: HVACEnvironment,
        historical_data: TransitionDataset,
        dynamics_model: ThermalDynamicsModel,
        rng,
    ) -> Tuple[PolicyExtractor, AugmentedHistoricalSampler]:
        """Stage 3: importance sampler + RS optimiser + distillation generator."""
        from repro.agents.random_shooting import RandomShootingOptimizer

        cfg = self.config
        sampler = AugmentedHistoricalSampler.from_dataset(
            historical_data, noise_level=cfg.noise_level
        )
        optimizer = RandomShootingOptimizer(
            dynamics_model=dynamics_model,
            action_space=environment.action_space,
            reward_config=environment.config.reward,
            action_config=environment.config.actions,
            num_samples=cfg.optimizer_samples,
            horizon=cfg.planning_horizon,
            discount=cfg.discount,
            seed=rng,
        )
        generator = DecisionDatasetGenerator(
            optimizer=optimizer,
            sampler=sampler,
            action_pairs=environment.action_space.pairs,
            monte_carlo_runs=cfg.monte_carlo_runs,
            planning_horizon=cfg.planning_horizon,
        )
        extractor = PolicyExtractor(
            generator,
            settings=cfg.extraction_settings(),
            city=cfg.city,
        )
        return extractor, sampler

    # -------------------------------------------------------------------- run
    def run(
        self,
        environment: Optional[HVACEnvironment] = None,
        historical_data: Optional[TransitionDataset] = None,
        dynamics_model: Optional[ThermalDynamicsModel] = None,
        decision_dataset: Optional[DecisionDataset] = None,
        refresh: bool = False,
    ) -> PipelineResult:
        """Run extract → verify → deploy and return the verified policy.

        Any pre-built intermediate can be supplied to skip its stage — e.g.
        pass a fitted ``dynamics_model`` to rerun only extraction and
        verification under a new seed or noise level.  With a store attached,
        a configuration already on disk short-circuits to the stored policy
        (unless ``refresh=True`` or any intermediate override is passed, both
        of which force a fresh run).
        """
        cfg = self.config
        overridden = any(
            artefact is not None
            for artefact in (environment, historical_data, dynamics_model, decision_dataset)
        )
        if self.store is not None and not refresh and not overridden:
            start = time.perf_counter()
            stored = self.store.get(cfg)
            if stored is not None:
                return PipelineResult(
                    config=cfg,
                    policy=stored.policy,
                    verification=stored.verification,
                    fidelity=stored.fidelity,
                    model_rmse=stored.model_rmse,
                    model_mae=stored.model_mae,
                    stage_seconds={"store_lookup": time.perf_counter() - start},
                    cache_hit=True,
                    store_key=stored.entry.key.name,
                )
        # One child generator per stochastic stage, all derived from cfg.seed.
        (
            history_rng,
            model_rng,
            optimizer_rng,
            distill_rng,
            verify_rng,
        ) = spawn_rngs(cfg.seed, 5)
        stage_seconds: Dict[str, float] = {}

        start = time.perf_counter()
        if environment is None:
            environment = self.build_environment()
        stage_seconds["environment"] = time.perf_counter() - start

        start = time.perf_counter()
        if historical_data is None:
            historical_data = self.collect_history(environment, history_rng)
        if len(historical_data) == 0:
            raise ValueError("The pipeline needs a non-empty historical dataset")
        stage_seconds["historical_data"] = time.perf_counter() - start

        start = time.perf_counter()
        if dynamics_model is None:
            dynamics_model, rmse, mae = self.train_dynamics_model(historical_data, model_rng)
        else:
            rmse, mae = dynamics_model.evaluate(historical_data)
        # The dtype policy applies to everything downstream of training
        # (planning, distillation, verification); the held-out RMSE/MAE above
        # is always evaluated in the float64 reference.
        if hasattr(dynamics_model, "set_inference_dtype"):
            dynamics_model.set_inference_dtype(cfg.dtype)
        stage_seconds["dynamics_model"] = time.perf_counter() - start

        start = time.perf_counter()
        extractor, sampler = self.build_extractor(
            environment, historical_data, dynamics_model, optimizer_rng
        )
        policy = extractor.extract(
            cfg.num_decision_data, seed=distill_rng, decision_dataset=decision_dataset
        )
        fidelity = extractor.fidelity(policy)
        stage_seconds["extraction"] = time.perf_counter() - start

        start = time.perf_counter()
        verification = verify_policy(
            policy,
            dynamics_model,
            sampler,
            cfg.criteria(),
            num_probabilistic_samples=cfg.num_probabilistic_samples,
            correct=cfg.correct_failing_leaves,
            seed=verify_rng,
        )
        stage_seconds["verification"] = time.perf_counter() - start

        store_key = None
        result = PipelineResult(
            config=cfg,
            policy=policy,
            verification=verification,
            fidelity=fidelity,
            decision_dataset=extractor.last_decision_dataset,
            historical_data=historical_data,
            dynamics_model=dynamics_model,
            sampler=sampler,
            model_rmse=rmse,
            model_mae=mae,
            stage_seconds=stage_seconds,
            store_key=store_key,
        )
        if self.store is not None:
            start = time.perf_counter()
            entry = self.store.put(result)
            stage_seconds["store_put"] = time.perf_counter() - start
            result.store_key = entry.key.name
        return result
