"""The paper's core contribution: verifiable decision-tree HVAC policies.

The pipeline (Fig. 2, left) is::

    historical data ──> dynamics model ──> RS optimiser
                                   │             │
                                   └── decision dataset (Monte-Carlo distillation,
                                        importance sampling on historical data)
                                                 │
                                            CART tree
                                                 │
                            formal + probabilistic verification (and correction)
                                                 │
                                           deployable policy

Modules:

* :mod:`repro.core.criteria` — the domain-specific verification criteria (Eq. 4).
* :mod:`repro.core.sampling` — historical-data-conditioned importance sampling
  with Gaussian noise augmentation (Eq. 5) and the noise-level study.
* :mod:`repro.core.decision_dataset` — decision-dataset generation by
  Monte-Carlo distillation of the stochastic optimiser.
* :mod:`repro.core.tree_policy` — the deployable decision-tree policy object.
* :mod:`repro.core.extraction` — CART fitting / policy extraction.
* :mod:`repro.core.verification` — Algorithm 1 (formal decision-path
  verification with leaf correction) and the one-step probabilistic verifier.
* :mod:`repro.core.pipeline` — the end-to-end extract-verify-deploy pipeline.
"""

from repro.core.criteria import SafetySpec, VerificationCriteria
from repro.core.sampling import AugmentedHistoricalSampler, NoiseLevelStudy, noise_level_study
from repro.core.decision_dataset import DecisionDataset, DecisionDatasetGenerator
from repro.core.tree_policy import TreePolicy, POLICY_FEATURE_NAMES
from repro.core.extraction import PolicyExtractor, extract_tree_policy
from repro.core.verification import (
    FormalVerificationReport,
    ProbabilisticVerificationReport,
    VerificationSummary,
    verify_criteria_2_3,
    verify_criterion_1,
    verify_policy,
)
from repro.core.pipeline import PipelineConfig, PipelineResult, VerifiedPolicyPipeline

__all__ = [
    "SafetySpec",
    "VerificationCriteria",
    "AugmentedHistoricalSampler",
    "NoiseLevelStudy",
    "noise_level_study",
    "DecisionDataset",
    "DecisionDatasetGenerator",
    "TreePolicy",
    "POLICY_FEATURE_NAMES",
    "PolicyExtractor",
    "extract_tree_policy",
    "FormalVerificationReport",
    "ProbabilisticVerificationReport",
    "VerificationSummary",
    "verify_criteria_2_3",
    "verify_criterion_1",
    "verify_policy",
    "PipelineConfig",
    "PipelineResult",
    "VerifiedPolicyPipeline",
]
