"""Policy extraction: fit a CART tree on the decision dataset (Section 3.2.2).

The input tuple ``(s, d)`` of every decision-dataset entry is already a single
concatenated vector in the Table-1 order, so extraction reduces to fitting a
classification tree whose classes are the distilled action labels.  The tree is
grown with the Gini criterion, unbounded depth and the default split threshold,
exactly as in the paper's implementation details.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.decision_dataset import DecisionDataset, DecisionDatasetGenerator
from repro.core.sampling import AugmentedHistoricalSampler
from repro.core.tree_policy import POLICY_FEATURE_NAMES, TreePolicy
from repro.dtree.cart import DecisionTreeClassifier
from repro.utils.rng import RNGLike


def extract_tree_policy(
    decision_dataset: DecisionDataset,
    feature_names: Optional[Sequence[str]] = None,
    criterion: str = "gini",
    max_depth: Optional[int] = None,
    min_samples_split: int = 2,
    min_samples_leaf: int = 1,
    city: Optional[str] = None,
) -> TreePolicy:
    """Fit a decision-tree policy on a decision dataset."""
    if len(decision_dataset) == 0:
        raise ValueError("Cannot extract a policy from an empty decision dataset")
    names = list(feature_names) if feature_names else list(POLICY_FEATURE_NAMES)
    tree = DecisionTreeClassifier(
        criterion=criterion,
        max_depth=max_depth,
        min_samples_split=min_samples_split,
        min_samples_leaf=min_samples_leaf,
        feature_names=names,
    )
    tree.fit(decision_dataset.inputs, decision_dataset.action_labels)
    return TreePolicy(
        tree=tree,
        action_pairs=decision_dataset.action_pairs,
        feature_names=names,
        city=city,
    )


@dataclass
class ExtractionSettings:
    """Hyper-parameters of the extraction step."""

    criterion: str = "gini"
    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1


class PolicyExtractor:
    """Bundles decision-dataset generation and tree fitting.

    This is the "policy extraction procedure" box of Fig. 2: given the learned
    dynamics model (inside the optimiser), the augmented historical sampler and
    an action table, it produces a :class:`TreePolicy` from scratch.
    """

    def __init__(
        self,
        generator: DecisionDatasetGenerator,
        settings: Optional[ExtractionSettings] = None,
        feature_names: Optional[Sequence[str]] = None,
        city: Optional[str] = None,
    ):
        self.generator = generator
        self.settings = settings or ExtractionSettings()
        self.feature_names = list(feature_names) if feature_names else list(POLICY_FEATURE_NAMES)
        self.city = city
        self.last_decision_dataset: Optional[DecisionDataset] = None

    def extract(
        self,
        num_decision_data: int,
        seed: RNGLike = None,
        decision_dataset: Optional[DecisionDataset] = None,
    ) -> TreePolicy:
        """Generate (or reuse) a decision dataset and fit the tree policy."""
        if decision_dataset is None:
            decision_dataset = self.generator.generate(num_decision_data, seed=seed)
        self.last_decision_dataset = decision_dataset
        return extract_tree_policy(
            decision_dataset,
            feature_names=self.feature_names,
            criterion=self.settings.criterion,
            max_depth=self.settings.max_depth,
            min_samples_split=self.settings.min_samples_split,
            min_samples_leaf=self.settings.min_samples_leaf,
            city=self.city,
        )

    def fidelity(self, policy: TreePolicy, decision_dataset: Optional[DecisionDataset] = None) -> float:
        """Fraction of decision-dataset entries the tree reproduces exactly.

        A standard policy-distillation diagnostic: high fidelity means the tree
        faithfully captures the distilled optimiser decisions.
        """
        dataset = decision_dataset or self.last_decision_dataset
        if dataset is None or len(dataset) == 0:
            raise ValueError("No decision dataset available to measure fidelity against")
        predictions = np.array(
            [policy.predict_action_index(row) for row in dataset.inputs]
        )
        return float(np.mean(predictions == dataset.action_labels))
