"""Importance sampling conditioned on historical data (Section 3.2.1, Eq. 5).

Exhaustively sampling the optimal action over the whole policy-input space is
intractable (the paper estimates ~444 hours for a sparse 20-bin grid).  The key
observation — each city's weather induces its own input distribution, so
frequent scenarios matter far more than rare ones — leads to this sampler: draw
a historical input, add element-wise Gaussian noise whose standard deviation is
``noise_level`` times the per-feature standard deviation of the historical
data::

    d_p(x) = X + N(0, noise_level * std(X))          (Eq. 5)

The noise level trades off generalisation (entropy of the augmented
distribution) against fidelity to the local climate (Jensen-Shannon distance to
the original distribution); :func:`noise_level_study` reproduces the Fig. 3
experiment that picks the level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.distributions import dataset_entropy, dataset_jsd
from repro.env.dataset import TransitionDataset
from repro.utils.rng import RNGLike, ensure_rng


class AugmentedHistoricalSampler:
    """Samples policy inputs from the noise-augmented historical distribution."""

    def __init__(
        self,
        historical_inputs: np.ndarray,
        noise_level: float = 0.01,
        clip_low: Optional[Sequence[float]] = None,
        clip_high: Optional[Sequence[float]] = None,
    ):
        data = np.atleast_2d(np.asarray(historical_inputs, dtype=float))
        if len(data) == 0:
            raise ValueError("historical_inputs must contain at least one sample")
        if noise_level < 0:
            raise ValueError("noise_level must be non-negative")
        self.data = data
        self.noise_level = float(noise_level)
        self.feature_std = data.std(axis=0)
        self.clip_low = None if clip_low is None else np.asarray(clip_low, dtype=float)
        self.clip_high = None if clip_high is None else np.asarray(clip_high, dtype=float)
        for name, clip in (("clip_low", self.clip_low), ("clip_high", self.clip_high)):
            if clip is not None and clip.shape != (data.shape[1],):
                raise ValueError(f"{name} must have one entry per feature")

    @classmethod
    def from_dataset(
        cls,
        dataset: TransitionDataset,
        noise_level: float = 0.01,
        clip_low: Optional[Sequence[float]] = None,
        clip_high: Optional[Sequence[float]] = None,
    ) -> "AugmentedHistoricalSampler":
        """Build the sampler from the (s, d) rows of a historical transition dataset."""
        return cls(
            dataset.policy_inputs(),
            noise_level=noise_level,
            clip_low=clip_low,
            clip_high=clip_high,
        )

    @property
    def num_historical(self) -> int:
        return len(self.data)

    @property
    def dim(self) -> int:
        return self.data.shape[1]

    def sample(self, count: int, rng: RNGLike = None) -> np.ndarray:
        """Draw ``count`` augmented samples (Eq. 5)."""
        if count <= 0:
            raise ValueError("count must be positive")
        generator = ensure_rng(rng)
        rows = generator.integers(0, len(self.data), size=count)
        samples = self.data[rows].copy()
        if self.noise_level > 0:
            noise = generator.normal(
                0.0, 1.0, size=samples.shape
            ) * (self.noise_level * self.feature_std)
            samples = samples + noise
        if self.clip_low is not None:
            samples = np.maximum(samples, self.clip_low)
        if self.clip_high is not None:
            samples = np.minimum(samples, self.clip_high)
        return samples

    def sample_one(self, rng: RNGLike = None) -> np.ndarray:
        """Draw a single augmented sample."""
        return self.sample(1, rng)[0]


@dataclass
class NoiseLevelStudy:
    """Result of the Fig. 3 noise-level study."""

    noise_levels: List[float]
    jsd_to_original: List[float]
    entropy_augmented: List[float]
    jsd_to_similar_city: float
    entropy_original: float
    entropy_similar_city: float
    recommended_range: tuple = field(default=(0.01, 0.09))

    def recommended_noise_levels(self) -> List[float]:
        """Noise levels whose JSD stays below the similar-city JSD.

        The paper's selection rule: the augmented distribution must remain
        closer to the original city than a *different* (climate-similar) city
        is, while gaining as much entropy as possible.
        """
        return [
            level
            for level, jsd in zip(self.noise_levels, self.jsd_to_original)
            if jsd < self.jsd_to_similar_city
        ]

    def rows(self) -> List[List[float]]:
        """Table rows: noise level, JSD to original, entropy."""
        return [
            [level, jsd, entropy]
            for level, jsd, entropy in zip(
                self.noise_levels, self.jsd_to_original, self.entropy_augmented
            )
        ]


def noise_level_study(
    original_inputs: np.ndarray,
    similar_city_inputs: np.ndarray,
    noise_levels: Sequence[float] = (0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    samples_per_level: int = 2000,
    bins: int = 12,
    seed: RNGLike = None,
) -> NoiseLevelStudy:
    """Reproduce the paper's preliminary noise-level experiment (Fig. 3).

    For every noise level, augment the original city's historical inputs and
    measure (i) the Jensen-Shannon distance to the original distribution and
    (ii) the information entropy of the augmented distribution, comparing both
    against the corresponding values for a climate-similar city.
    """
    rng = ensure_rng(seed)
    original_inputs = np.atleast_2d(np.asarray(original_inputs, dtype=float))
    similar_city_inputs = np.atleast_2d(np.asarray(similar_city_inputs, dtype=float))

    jsd_values: List[float] = []
    entropy_values: List[float] = []
    for level in noise_levels:
        sampler = AugmentedHistoricalSampler(original_inputs, noise_level=float(level))
        augmented = sampler.sample(samples_per_level, rng)
        jsd_values.append(dataset_jsd(original_inputs, augmented, bins=bins))
        entropy_values.append(dataset_entropy(augmented, bins=bins))

    return NoiseLevelStudy(
        noise_levels=[float(l) for l in noise_levels],
        jsd_to_original=jsd_values,
        entropy_augmented=entropy_values,
        jsd_to_similar_city=dataset_jsd(original_inputs, similar_city_inputs, bins=bins),
        entropy_original=dataset_entropy(original_inputs, bins=bins),
        entropy_similar_city=dataset_entropy(similar_city_inputs, bins=bins),
    )
