"""Verification criteria for HVAC control policies (Section 3.1, Eq. 4).

The paper partitions the policy-input space by domain knowledge into three
subsets and attaches one criterion to each:

* **Criterion #1** (zone temperature inside the comfort range): the
  probability that the closed-loop system stays inside the comfort range must
  exceed a threshold ``l`` chosen by the building manager.  This criterion is
  probabilistic and is checked by Monte-Carlo estimation over the (augmented)
  historical input distribution.
* **Criterion #2** (zone too warm, ``s > z_upper``): the policy's effective
  setpoint must lie *below* the current zone temperature, so the HVAC drives
  the temperature back down.  This is a formal, 100% criterion.
* **Criterion #3** (zone too cold, ``s < z_lower``): symmetric — the setpoint
  must lie *above* the zone temperature.  Also formal.

Because the action in this platform is a (heating, cooling) setpoint pair, the
"setpoint" compared against the zone temperature is the cooling setpoint for
criterion #2 (responsive cooling) and the heating setpoint for criterion #3
(responsive heating).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.utils.config import ComfortConfig


@dataclass(frozen=True)
class SafetySpec:
    """The set of safe states: zone temperatures within the comfort range."""

    comfort: ComfortConfig = field(default_factory=ComfortConfig.winter)

    @property
    def lower(self) -> float:
        return self.comfort.lower

    @property
    def upper(self) -> float:
        return self.comfort.upper

    def is_safe(self, zone_temperature: float) -> bool:
        return self.comfort.contains(zone_temperature)

    def classify_state(self, zone_temperature: float) -> str:
        """Which input subset a zone temperature belongs to.

        Returns ``"comfortable"`` (criterion #1 applies), ``"too_warm"``
        (criterion #2) or ``"too_cold"`` (criterion #3).
        """
        if zone_temperature > self.upper:
            return "too_warm"
        if zone_temperature < self.lower:
            return "too_cold"
        return "comfortable"


@dataclass(frozen=True)
class VerificationCriteria:
    """The complete Eq. 4 verification specification.

    Parameters
    ----------
    safety:
        The comfort range defining safe states.
    safe_probability_threshold:
        The threshold ``l`` of criterion #1, specified by the building manager.
    horizon:
        The reachability horizon ``H`` of criterion #1.  The one-step
        verification procedure of the paper makes the estimate independent of
        ``H`` (see :func:`repro.core.verification.verify_criterion_1`), but the
        horizon is kept for bootstrapped verification and reporting.
    """

    safety: SafetySpec = field(default_factory=SafetySpec)
    safe_probability_threshold: float = 0.9
    horizon: int = 20

    def __post_init__(self) -> None:
        if not (0.0 < self.safe_probability_threshold < 1.0):
            raise ValueError("safe_probability_threshold must be in (0, 1)")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    # ------------------------------------------------------------ criterion 2
    def criterion_2_satisfied(
        self, zone_temperature: float, heating_setpoint: float, cooling_setpoint: float
    ) -> bool:
        """If the zone is too warm, the (cooling) setpoint must be below the zone temperature."""
        if zone_temperature <= self.safety.upper:
            return True  # criterion does not apply
        return cooling_setpoint < zone_temperature

    # ------------------------------------------------------------ criterion 3
    def criterion_3_satisfied(
        self, zone_temperature: float, heating_setpoint: float, cooling_setpoint: float
    ) -> bool:
        """If the zone is too cold, the (heating) setpoint must be above the zone temperature."""
        if zone_temperature >= self.safety.lower:
            return True  # criterion does not apply
        return heating_setpoint > zone_temperature

    # --------------------------------------------------------------- combined
    def formal_criteria_satisfied(
        self, zone_temperature: float, heating_setpoint: float, cooling_setpoint: float
    ) -> bool:
        """Criteria #2 and #3 together (the formal part of Eq. 4)."""
        return self.criterion_2_satisfied(
            zone_temperature, heating_setpoint, cooling_setpoint
        ) and self.criterion_3_satisfied(zone_temperature, heating_setpoint, cooling_setpoint)

    def corrective_setpoints(self) -> Tuple[float, float]:
        """The corrected setpoints used when a leaf fails a formal criterion.

        The paper corrects a failed leaf by setting its setpoint to the median
        of the comfort zone, which always drives the zone temperature towards
        the comfort range regardless of which side it violated.
        """
        midpoint = self.safety.comfort.midpoint
        return midpoint, midpoint

    def criterion_1_satisfied(self, safe_probability: float) -> bool:
        """Whether an estimated safe probability passes the threshold ``l``."""
        return safe_probability > self.safe_probability_threshold
