"""Decision-dataset generation by Monte-Carlo distillation (Section 3.2.1).

A decision dataset ``Pi = {(s, d, a*)}`` pairs policy inputs with the
*deterministic* optimal action distilled from the stochastic optimiser: for
every input the random-shooting optimiser is run several times (the Monte-Carlo
method of the paper) and the most frequent best first action ``a*`` is kept.

Inputs are drawn from the noise-augmented historical distribution
(:class:`repro.core.sampling.AugmentedHistoricalSampler`), which is the paper's
importance-sampling answer to the dimensionality of the input space.  Since the
sampled inputs are not tied to a specific timestamp, the optimiser plans under
a persistence forecast (the sampled disturbance held constant over the planning
horizon) — the same simplification BMS-data-driven extraction has to make.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.sampling import AugmentedHistoricalSampler
from repro.data import ActionBatch, ObservationBatch
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs

#: Index of the occupant-count feature inside the policy-input vector.
_OCCUPANT_COUNT_FEATURE = 5


@dataclass
class DecisionDataset:
    """The decision dataset Pi: policy inputs and distilled action labels."""

    inputs: np.ndarray
    action_labels: np.ndarray
    action_pairs: List[Tuple[int, int]]
    generation_seconds_per_entry: float = 0.0
    monte_carlo_runs: int = 1

    def __post_init__(self) -> None:
        self.inputs = np.atleast_2d(np.asarray(self.inputs, dtype=float))
        self.action_labels = np.asarray(self.action_labels, dtype=int)
        if len(self.inputs) != len(self.action_labels):
            raise ValueError("inputs and action_labels must have the same length")
        if len(self.action_pairs) == 0:
            raise ValueError("action_pairs must not be empty")
        if len(self.action_labels) and (
            self.action_labels.min() < 0 or self.action_labels.max() >= len(self.action_pairs)
        ):
            raise ValueError("action labels must index into action_pairs")

    def __len__(self) -> int:
        return len(self.action_labels)

    @property
    def input_dim(self) -> int:
        return self.inputs.shape[1] if len(self.inputs) else 0

    def setpoints(self) -> np.ndarray:
        """The (heating, cooling) pairs corresponding to each label, shape (n, 2)."""
        pairs = np.asarray(self.action_pairs, dtype=int)
        return pairs[self.action_labels]

    # ------------------------------------------------------- columnar views
    def observation_batch(self) -> ObservationBatch:
        """The inputs as a columnar :class:`~repro.data.ObservationBatch` (no copy)."""
        return ObservationBatch.from_rows(self.inputs)

    def action_batch(self) -> ActionBatch:
        """The labels as an :class:`~repro.data.ActionBatch` with resolved setpoints."""
        return ActionBatch(self.action_labels).with_setpoints(
            np.asarray(self.action_pairs, dtype=float)
        )

    def subset(self, count: int, seed: RNGLike = None) -> "DecisionDataset":
        """A uniformly subsampled dataset of at most ``count`` entries.

        Used by the data-efficiency experiment (Fig. 6/7), which sweeps the
        number of decision data points used to fit the tree.
        """
        if count >= len(self):
            return DecisionDataset(
                self.inputs.copy(),
                self.action_labels.copy(),
                list(self.action_pairs),
                self.generation_seconds_per_entry,
                self.monte_carlo_runs,
            )
        rng = ensure_rng(seed)
        idx = np.sort(rng.choice(len(self), size=count, replace=False))
        return DecisionDataset(
            self.inputs[idx],
            self.action_labels[idx],
            list(self.action_pairs),
            self.generation_seconds_per_entry,
            self.monte_carlo_runs,
        )

    def merge(self, other: "DecisionDataset") -> "DecisionDataset":
        """Concatenate two decision datasets sharing the same action table."""
        if self.action_pairs != other.action_pairs:
            raise ValueError("Cannot merge decision datasets with different action tables")
        return DecisionDataset(
            np.vstack([self.inputs, other.inputs]),
            np.concatenate([self.action_labels, other.action_labels]),
            list(self.action_pairs),
            max(self.generation_seconds_per_entry, other.generation_seconds_per_entry),
            max(self.monte_carlo_runs, other.monte_carlo_runs),
        )

    def label_distribution(self) -> Counter:
        """How often each action label occurs (diagnostics)."""
        return Counter(self.action_labels.tolist())


class DecisionDatasetGenerator:
    """Distils the stochastic optimiser into deterministic decisions."""

    def __init__(
        self,
        optimizer,
        sampler: AugmentedHistoricalSampler,
        action_pairs: Sequence[Tuple[int, int]],
        monte_carlo_runs: int = 5,
        planning_horizon: int = 20,
        occupancy_threshold: float = 0.5,
    ):
        if monte_carlo_runs <= 0:
            raise ValueError("monte_carlo_runs must be positive")
        if planning_horizon <= 0:
            raise ValueError("planning_horizon must be positive")
        self.optimizer = optimizer
        self.sampler = sampler
        self.action_pairs = [tuple(int(v) for v in pair) for pair in action_pairs]
        self.monte_carlo_runs = monte_carlo_runs
        self.planning_horizon = planning_horizon
        self.occupancy_threshold = occupancy_threshold

    # ------------------------------------------------------------------ single
    def distill_decision(self, policy_input: np.ndarray, rng: RNGLike = None) -> int:
        """The most frequent best action over repeated optimiser runs for one input."""
        policy_input = np.asarray(policy_input, dtype=float).ravel()
        state = float(policy_input[0])
        disturbance = policy_input[1:]
        occupied = bool(disturbance[_OCCUPANT_COUNT_FEATURE - 1] > self.occupancy_threshold)
        forecast = np.repeat(disturbance.reshape(1, -1), self.planning_horizon, axis=0)
        occupied_forecast = [occupied] * self.planning_horizon

        run_rngs = spawn_rngs(ensure_rng(rng), self.monte_carlo_runs)
        votes = Counter()
        for run_rng in run_rngs:
            result = self.optimizer.plan(state, forecast, occupied_forecast, rng=run_rng)
            votes[int(result.best_action_index)] += 1
        # Deterministic tie-break: highest vote count, then smallest action index.
        return sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]

    # ------------------------------------------------------------------- batch
    def distill_decisions(
        self, inputs: Union[np.ndarray, ObservationBatch], rng: RNGLike = None
    ) -> np.ndarray:
        """Distil every input at once through the optimiser's batched planner.

        All ``num_inputs × monte_carlo_runs`` planning problems are flattened
        into one :meth:`~repro.agents.random_shooting.RandomShootingOptimizer.plan_batch`
        call and the Monte-Carlo votes are counted with one ``bincount``.  The
        per-problem generators are spawned from ``rng`` in exactly the order
        the serial loop consumes them, so labels are identical seed-for-seed
        to repeated :meth:`distill_decision` calls.

        ``inputs`` may be a plain ``(n, 6)`` array or a columnar
        :class:`~repro.data.ObservationBatch`; either way the whole path down
        to the dynamics model is array ops on the columnar buffer.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        num_inputs = len(inputs)
        runs = self.monte_carlo_runs
        base_rng = ensure_rng(rng)
        run_rngs: List = []
        for _ in range(num_inputs):
            run_rngs.extend(spawn_rngs(base_rng, runs))

        states = np.repeat(inputs[:, 0], runs)
        disturbances = np.repeat(inputs[:, 1:], runs, axis=0)
        occupied = disturbances[:, _OCCUPANT_COUNT_FEATURE - 1] > self.occupancy_threshold
        n_problems = num_inputs * runs
        # Persistence forecast: the sampled disturbance held over the horizon,
        # as a zero-copy broadcast view.
        forecasts = np.broadcast_to(
            disturbances[:, np.newaxis, :],
            (n_problems, self.planning_horizon, disturbances.shape[1]),
        )
        occupied_forecasts = np.broadcast_to(
            occupied[:, np.newaxis], (n_problems, self.planning_horizon)
        )

        plan = self.optimizer.plan_batch(
            states, forecasts, occupied_forecasts, rngs=run_rngs
        )
        best_first = np.asarray(plan.best_action_indices, dtype=np.int64).reshape(
            num_inputs, runs
        )
        # Vectorised vote counting; argmax takes the first maximum, which is
        # the serial tie-break (highest count, then smallest action index).
        num_actions = len(self.action_pairs)
        offsets = np.arange(num_inputs)[:, np.newaxis] * num_actions
        counts = np.bincount(
            (best_first + offsets).ravel(), minlength=num_inputs * num_actions
        ).reshape(num_inputs, num_actions)
        return np.argmax(counts, axis=1)

    def generate(
        self,
        num_entries: int,
        seed: RNGLike = None,
        inputs: Optional[np.ndarray] = None,
        method: str = "batched",
        chunk_inputs: Optional[int] = None,
    ) -> DecisionDataset:
        """Generate a decision dataset of ``num_entries`` distilled decisions.

        ``inputs`` can be supplied directly (e.g. a grid for ablations); by
        default they are drawn from the augmented historical distribution.

        ``method`` selects the execution path: ``"batched"`` (default) runs
        all Monte-Carlo RS problems through the vectorised planner,
        ``"serial"`` keeps the original one-input-at-a-time reference loop.
        Both paths consume the generator identically and produce identical
        labels for identical seeds.  ``chunk_inputs`` bounds how many inputs
        the batched path flattens at once; the default keeps roughly 2k
        candidate sequences in flight, which fits the flattened model batches
        in cache (much larger chunks are memory-bandwidth-bound and slower).
        """
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if method not in ("batched", "serial"):
            raise ValueError(f"Unknown method {method!r}; use 'batched' or 'serial'")
        rng = ensure_rng(seed)
        if inputs is None:
            inputs = self.sampler.sample(num_entries, rng)
        else:
            inputs = np.atleast_2d(np.asarray(inputs, dtype=float))[:num_entries]

        use_batched = method == "batched" and hasattr(self.optimizer, "plan_batch")
        labels = np.empty(len(inputs), dtype=int)
        start = time.perf_counter()
        if use_batched:
            if chunk_inputs is None:
                rows_per_input = self.monte_carlo_runs * getattr(
                    self.optimizer, "num_samples", 1000
                )
                chunk_inputs = max(1, 2048 // max(rows_per_input, 1))
            for lo in range(0, len(inputs), chunk_inputs):
                hi = min(lo + chunk_inputs, len(inputs))
                labels[lo:hi] = self.distill_decisions(inputs[lo:hi], rng=rng)
        else:
            for i, row in enumerate(inputs):
                labels[i] = self.distill_decision(row, rng=rng)
        elapsed = time.perf_counter() - start

        return DecisionDataset(
            inputs=inputs,
            action_labels=labels,
            action_pairs=self.action_pairs,
            generation_seconds_per_entry=elapsed / max(len(inputs), 1),
            monte_carlo_runs=self.monte_carlo_runs,
        )
