"""Declarative experiment scenarios: climate × building × season.

A :class:`ScenarioSpec` is an immutable description of one evaluation setting
— which city's weather, which building variant, which season (and hence
comfort range and simulation window).  Specs are cheap to enumerate, hashable
and name-addressable (``"tucson/summer/office"``), which is what lets the
:class:`~repro.experiments.runner.ExperimentRunner`, the CLI and any future
sharding/batching layer treat "a scenario" as data instead of hand-wired
setup code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.buildings.building import Building, make_five_zone_building
from repro.buildings.occupancy import office_schedule
from repro.env.disturbances import DISTURBANCES
from repro.env.hvac_env import HVACEnvironment
from repro.utils.config import (
    SEASONS,
    ExperimentConfig,
    RewardConfig,
    SeasonConfig,
    SimulationConfig,
)
from repro.weather.climates import available_climates, get_climate
from repro.weather.tmy import generate_weather

#: Season definitions live in :mod:`repro.utils.config`; re-exported here
#: because the scenario grid is where most callers meet them.
SeasonSpec = SeasonConfig


@dataclass(frozen=True)
class BuildingSpec:
    """A named variant of the five-zone reference building."""

    name: str
    peak_occupants: int = 24
    initial_zone_temperature: float = 20.0

    def build(self) -> Building:
        return make_five_zone_building()


BUILDINGS: Dict[str, BuildingSpec] = {
    "office": BuildingSpec("office", peak_occupants=24),
    "dense_office": BuildingSpec("dense_office", peak_occupants=48),
    "light_office": BuildingSpec("light_office", peak_occupants=12),
}

#: Separator used in scenario names ("tucson/summer/office").
NAME_SEPARATOR = "/"


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the climate × season × building (× disturbance) grid.

    ``disturbance`` names one of the :data:`~repro.env.disturbances.DISTURBANCES`
    fault profiles; the default ``"clean"`` runs the unperturbed environment
    (bit-identical to a spec from before the disturbance layer existed — the
    equivalence tests enforce this).
    """

    city: str
    season: str = "winter"
    building: str = "office"
    days: int = 7
    minutes_per_step: int = 15
    disturbance: str = "clean"

    def __post_init__(self) -> None:
        get_climate(self.city)  # validates the city early
        if self.season not in SEASONS:
            raise ValueError(
                f"Unknown season {self.season!r}. Available: {', '.join(sorted(SEASONS))}"
            )
        if self.building not in BUILDINGS:
            raise ValueError(
                f"Unknown building {self.building!r}. Available: {', '.join(sorted(BUILDINGS))}"
            )
        if self.disturbance not in DISTURBANCES:
            raise ValueError(
                f"Unknown disturbance {self.disturbance!r}. "
                f"Available: {', '.join(sorted(DISTURBANCES))}"
            )
        if self.days <= 0:
            raise ValueError("days must be positive")

    # ------------------------------------------------------------------ names
    @property
    def name(self) -> str:
        parts = (self.city, self.season, self.building)
        if self.disturbance != "clean":
            parts = parts + (self.disturbance,)
        return NAME_SEPARATOR.join(parts)

    @classmethod
    def from_name(cls, name: str, days: int = 7, minutes_per_step: int = 15) -> "ScenarioSpec":
        """Parse ``"city[/season[/building[/disturbance]]]"`` into a spec."""
        parts = [p for p in name.strip().split(NAME_SEPARATOR) if p]
        if not 1 <= len(parts) <= 4:
            raise ValueError(
                f"Scenario name {name!r} must look like 'city', 'city/season', "
                "'city/season/building' or 'city/season/building/disturbance'"
            )
        city = get_climate(parts[0]).name  # resolves aliases like hot_humid
        season = parts[1] if len(parts) > 1 else "winter"
        building = parts[2] if len(parts) > 2 else "office"
        disturbance = parts[3] if len(parts) > 3 else "clean"
        return cls(
            city=city,
            season=season,
            building=building,
            days=days,
            minutes_per_step=minutes_per_step,
            disturbance=disturbance,
        )

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        return replace(self, **overrides)

    # ------------------------------------------------------------- components
    @property
    def season_spec(self) -> SeasonSpec:
        return SEASONS[self.season]

    @property
    def building_spec(self) -> BuildingSpec:
        return BUILDINGS[self.building]

    def simulation_config(self) -> SimulationConfig:
        season = self.season_spec
        return SimulationConfig(
            days=self.days,
            minutes_per_step=self.minutes_per_step,
            start_month=season.start_month,
            start_day_of_year=season.start_day_of_year,
        )

    def experiment_config(self, seed: int = 0) -> ExperimentConfig:
        return ExperimentConfig(
            city=get_climate(self.city).name,
            simulation=self.simulation_config(),
            reward=RewardConfig(comfort=self.season_spec.comfort),
            seed=seed,
        )

    # ------------------------------------------------------------ environment
    def build_environment(self, seed: int = 0) -> HVACEnvironment:
        """Materialise the scenario into a ready-to-run environment."""
        config = self.experiment_config(seed=seed)
        simulation = config.simulation
        weather = generate_weather(
            self.city, seed=seed, days=self.days, simulation=simulation
        )
        occupancy = office_schedule(self.building_spec.peak_occupants).generate_series(
            simulation, seed=None if seed is None else seed + 1
        )
        return HVACEnvironment(
            building=self.building_spec.build(),
            weather=weather,
            occupancy=occupancy,
            config=config,
            initial_zone_temperature=self.building_spec.initial_zone_temperature,
            disturbance=self.disturbance,
        )


def scenario_grid(
    cities: Optional[Sequence[str]] = None,
    seasons: Optional[Sequence[str]] = None,
    buildings: Optional[Sequence[str]] = None,
    days: int = 7,
    minutes_per_step: int = 15,
    disturbances: Optional[Sequence[str]] = None,
) -> List[ScenarioSpec]:
    """The full (or filtered) climate × season × building (× fault) grid.

    ``disturbances`` defaults to the clean environment only, so the default
    grid (and every pre-existing caller) is unchanged.
    """
    cities = list(cities) if cities is not None else available_climates()
    seasons = list(seasons) if seasons is not None else sorted(SEASONS)
    buildings = list(buildings) if buildings is not None else sorted(BUILDINGS)
    disturbances = list(disturbances) if disturbances is not None else ["clean"]
    return [
        ScenarioSpec(
            city=get_climate(city).name,
            season=season,
            building=building,
            days=days,
            minutes_per_step=minutes_per_step,
            disturbance=disturbance,
        )
        for city in cities
        for season in seasons
        for building in buildings
        for disturbance in disturbances
    ]


def get_scenario(name: str, days: int = 7, minutes_per_step: int = 15) -> ScenarioSpec:
    """Look up or parse a scenario by name."""
    return ScenarioSpec.from_name(name, days=days, minutes_per_step=minutes_per_step)


def available_scenarios() -> List[str]:
    """Names of every cell in the default grid."""
    return [spec.name for spec in scenario_grid()]
