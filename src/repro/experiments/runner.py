"""The registry-driven experiment runner.

:class:`ExperimentRunner` is the single front door for "evaluate controller X
in scenario Y": it materialises environments from declarative
:class:`~repro.experiments.scenarios.ScenarioSpec` cells, builds any
registered agent by name (or accepts a pre-built agent), rolls out
multi-episode batches under per-episode seeds and aggregates reward, comfort
and energy into structured results.  Everything downstream — the CLI, result
tables, future batching/sharding layers — consumes the
:class:`ExperimentResult` it returns.

Execution backends
------------------
The runner executes its episode batch through a pluggable backend:

* ``"serial"`` — one episode at a time (the reference path),
* ``"batched"`` — all episodes of a chunk stepped together through
  :class:`~repro.env.vector_env.BatchedHVACEnvironment` (vectorised plant),
* ``"process"`` — one process per episode via :mod:`concurrent.futures`
  (requires a registry agent name, so episodes are self-contained jobs).

Per-episode seeding is identical across backends, and the batched plant is
bit-identical to the serial one, so every backend produces the same
:class:`EpisodeResult` metrics (wall-clock fields aside).  For the batched
backend ``wall_seconds`` is the batch wall time divided by the batch size, so
``steps_per_second`` reads as aggregate throughput.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.registry import canonical_name, make_agent
from repro.env.hvac_env import HVACEnvironment
from repro.env.vector_env import BatchedHVACEnvironment
from repro.experiments.scenarios import ScenarioSpec, get_scenario
from repro.utils.serialization import to_jsonable

#: Execution backends understood by :class:`ExperimentRunner`.
BACKENDS = ("serial", "batched", "process")


@dataclass
class EpisodeResult:
    """Aggregated metrics of one rollout."""

    scenario: str
    agent: str
    episode: int
    seed: int
    steps: int
    total_reward: float
    total_energy_kwh: float
    occupied_steps: int
    comfort_violation_steps: int
    total_comfort_violation_degree_steps: float
    mean_zone_temperature: float
    wall_seconds: float

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.steps if self.steps else 0.0

    @property
    def comfort_violation_rate(self) -> float:
        """Fraction of occupied steps outside the comfort range."""
        if self.occupied_steps == 0:
            return 0.0
        return self.comfort_violation_steps / self.occupied_steps

    @property
    def steps_per_second(self) -> float:
        return self.steps / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    def to_dict(self) -> Dict:
        data = {
            name: getattr(self, name)
            for name in (
                "scenario",
                "agent",
                "episode",
                "seed",
                "steps",
                "total_reward",
                "mean_reward",
                "total_energy_kwh",
                "occupied_steps",
                "comfort_violation_steps",
                "comfort_violation_rate",
                "total_comfort_violation_degree_steps",
                "mean_zone_temperature",
                "wall_seconds",
                "steps_per_second",
            )
        }
        return to_jsonable(data)


@dataclass
class ExperimentResult:
    """All episodes of one (scenario, agent) experiment plus aggregates."""

    scenario: str
    agent: str
    episodes: List[EpisodeResult] = field(default_factory=list)

    @property
    def num_episodes(self) -> int:
        return len(self.episodes)

    @property
    def total_steps(self) -> int:
        return sum(e.steps for e in self.episodes)

    def _mean(self, values: List[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    def _std(self, values: List[float]) -> float:
        return float(np.std(values)) if values else 0.0

    @property
    def mean_total_reward(self) -> float:
        return self._mean([e.total_reward for e in self.episodes])

    @property
    def std_total_reward(self) -> float:
        return self._std([e.total_reward for e in self.episodes])

    @property
    def mean_energy_kwh(self) -> float:
        return self._mean([e.total_energy_kwh for e in self.episodes])

    @property
    def mean_comfort_violation_rate(self) -> float:
        return self._mean([e.comfort_violation_rate for e in self.episodes])

    @property
    def mean_steps_per_second(self) -> float:
        return self._mean([e.steps_per_second for e in self.episodes])

    def to_dict(self) -> Dict:
        return to_jsonable(
            {
                "scenario": self.scenario,
                "agent": self.agent,
                "num_episodes": self.num_episodes,
                "total_steps": self.total_steps,
                "mean_total_reward": self.mean_total_reward,
                "std_total_reward": self.std_total_reward,
                "mean_energy_kwh": self.mean_energy_kwh,
                "mean_comfort_violation_rate": self.mean_comfort_violation_rate,
                "mean_steps_per_second": self.mean_steps_per_second,
                "episodes": [e.to_dict() for e in self.episodes],
            }
        )

    def summary_row(self) -> List:
        """One row of the Table-3-style comparison table."""
        return [
            self.scenario,
            self.agent,
            self.num_episodes,
            self.mean_total_reward,
            self.std_total_reward,
            self.mean_energy_kwh,
            self.mean_comfort_violation_rate,
            self.mean_steps_per_second,
        ]

    #: Header matching :meth:`summary_row`.
    SUMMARY_HEADER = [
        "scenario",
        "agent",
        "episodes",
        "reward (mean)",
        "reward (std)",
        "energy kWh",
        "comfort viol.",
        "steps/s",
    ]


def run_episode(
    agent: BaseAgent,
    environment: HVACEnvironment,
    max_steps: Optional[int] = None,
    scenario_name: str = "-",
    agent_name: Optional[str] = None,
    episode_index: int = 0,
    seed: int = 0,
) -> EpisodeResult:
    """Roll one agent through one environment episode and aggregate metrics."""
    agent.reset()
    observation, _info = environment.reset()
    total = environment.num_steps if max_steps is None else min(max_steps, environment.num_steps)

    total_reward = 0.0
    total_energy = 0.0
    occupied_steps = 0
    violation_steps = 0
    violation_degrees = 0.0
    zone_temperatures = 0.0
    steps_done = 0

    start = time.perf_counter()
    for step in range(total):
        action = agent.select_action(observation, environment, step)
        result = environment.step(action)
        info = result.info
        total_reward += result.reward
        total_energy += info["hvac_electric_energy_kwh"]
        zone_temperatures += info["zone_temperature"]
        if info["occupied"]:
            occupied_steps += 1
            if info["comfort_violated"]:
                violation_steps += 1
            violation_degrees += info["comfort_violation"]
        observation = result.observation
        steps_done += 1
        if result.truncated or result.terminated:
            break
    wall = time.perf_counter() - start

    return EpisodeResult(
        scenario=scenario_name,
        agent=agent_name or agent.name,
        episode=episode_index,
        seed=seed,
        steps=steps_done,
        total_reward=total_reward,
        total_energy_kwh=total_energy,
        occupied_steps=occupied_steps,
        comfort_violation_steps=violation_steps,
        total_comfort_violation_degree_steps=violation_degrees,
        mean_zone_temperature=zone_temperatures / steps_done if steps_done else 0.0,
        wall_seconds=wall,
    )


def _run_episode_job(
    scenario: ScenarioSpec,
    agent_name: str,
    agent_config: Optional[Dict],
    seed: int,
    index: int,
    max_steps: Optional[int],
) -> EpisodeResult:
    """One self-contained episode: built, run and aggregated in a worker process.

    Module-level so it pickles for :class:`concurrent.futures.ProcessPoolExecutor`.
    """
    environment = scenario.build_environment(seed=seed)
    agent = make_agent(agent_name, environment=environment, seed=seed, **(agent_config or {}))
    return run_episode(
        agent,
        environment,
        max_steps=max_steps,
        scenario_name=scenario.name,
        agent_name=agent_name,
        episode_index=index,
        seed=seed,
    )


class ExperimentRunner:
    """Builds environments from scenario specs and evaluates agents on them.

    Parameters
    ----------
    scenario:
        A :class:`ScenarioSpec` or a scenario name (``"tucson/summer"``).
    episodes:
        Number of independent episodes per :meth:`run` call.
    base_seed:
        Root seed; per-episode seeds are derived deterministically from it, so
        two runners with the same base seed produce identical results.
    max_steps:
        Optional cap on steps per episode (useful for smoke tests).
    backend:
        ``"serial"`` (default), ``"batched"`` or ``"process"`` — see the
        module docstring.  All backends produce identical metrics for
        identical seeds.
    batch_size:
        Episodes stepped together per chunk in the batched backend (default:
        the whole episode batch).
    workers:
        Worker processes for the process backend (default: the CPU count).
    """

    def __init__(
        self,
        scenario: Union[str, ScenarioSpec],
        episodes: int = 1,
        base_seed: int = 0,
        max_steps: Optional[int] = None,
        backend: str = "serial",
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
    ):
        if episodes <= 0:
            raise ValueError("episodes must be positive")
        if max_steps is not None and max_steps <= 0:
            raise ValueError("max_steps must be positive when given")
        if backend not in BACKENDS:
            raise ValueError(
                f"Unknown backend {backend!r}. Available: {', '.join(BACKENDS)}"
            )
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive when given")
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive when given")
        self.scenario = get_scenario(scenario) if isinstance(scenario, str) else scenario
        self.episodes = episodes
        self.base_seed = int(base_seed)
        self.max_steps = max_steps
        self.backend = backend
        self.batch_size = batch_size
        self.workers = workers

    def episode_seeds(self) -> List[int]:
        """Deterministic, well-separated per-episode seeds."""
        sequence = np.random.SeedSequence(self.base_seed)
        return [int(s) for s in sequence.generate_state(self.episodes)]

    def build_environment(self, seed: int) -> HVACEnvironment:
        return self.scenario.build_environment(seed=seed)

    def _resolve_agent(
        self,
        agent: Union[str, BaseAgent],
        environment: HVACEnvironment,
        seed: int,
        agent_config: Optional[Dict],
    ) -> Tuple[BaseAgent, str]:
        if isinstance(agent, str):
            name = canonical_name(agent)
            built = make_agent(name, environment=environment, seed=seed, **(agent_config or {}))
            return built, name
        if agent_config:
            raise ValueError("agent_config is only valid when the agent is given by name")
        return agent, agent.name

    def run(
        self,
        agent: Union[str, BaseAgent],
        agent_config: Optional[Dict] = None,
    ) -> ExperimentResult:
        """Evaluate one agent over the configured episode batch.

        When ``agent`` is a registry name, a fresh agent is constructed per
        episode with that episode's seed — which makes stochastic controllers
        (and on-the-fly model training) fully reproducible.  A pre-built
        agent instance is reused across episodes (its ``reset()`` is called
        between episodes); the batched and process backends require a registry
        name, which keeps every episode an independent, reproducible unit.
        """
        if self.backend == "batched":
            episodes = self._run_batched(agent, agent_config)
        elif self.backend == "process":
            episodes = self._run_process(agent, agent_config)
        else:
            episodes = self._run_serial(agent, agent_config)
        return ExperimentResult(
            scenario=self.scenario.name,
            agent=episodes[0].agent,
            episodes=episodes,
        )

    # --------------------------------------------------------------- backends
    def _run_serial(
        self, agent: Union[str, BaseAgent], agent_config: Optional[Dict]
    ) -> List[EpisodeResult]:
        episodes: List[EpisodeResult] = []
        for index, seed in enumerate(self.episode_seeds()):
            environment = self.build_environment(seed)
            episode_agent, name = self._resolve_agent(agent, environment, seed, agent_config)
            episodes.append(
                run_episode(
                    episode_agent,
                    environment,
                    max_steps=self.max_steps,
                    scenario_name=self.scenario.name,
                    agent_name=name,
                    episode_index=index,
                    seed=seed,
                )
            )
        return episodes

    def _require_agent_name(self, agent: Union[str, BaseAgent]) -> str:
        if not isinstance(agent, str):
            raise ValueError(
                f"The {self.backend!r} backend requires a registry agent name "
                "(a fresh agent is built per episode); pass backend='serial' "
                "to reuse a pre-built agent instance"
            )
        return canonical_name(agent)

    def _run_batched(
        self, agent: Union[str, BaseAgent], agent_config: Optional[Dict]
    ) -> List[EpisodeResult]:
        name = self._require_agent_name(agent)
        seeds = self.episode_seeds()
        batch_size = self.batch_size or len(seeds)
        episodes: List[EpisodeResult] = []
        for offset in range(0, len(seeds), batch_size):
            chunk = seeds[offset : offset + batch_size]
            environments = [self.build_environment(seed) for seed in chunk]
            agents = [
                make_agent(name, environment=env, seed=seed, **(agent_config or {}))
                for env, seed in zip(environments, chunk)
            ]
            episodes.extend(
                self._run_episode_chunk(agents, environments, chunk, offset, name)
            )
        return episodes

    def _run_episode_chunk(
        self,
        agents: Sequence[BaseAgent],
        environments: Sequence[HVACEnvironment],
        seeds: Sequence[int],
        index_offset: int,
        agent_name: str,
    ) -> List[EpisodeResult]:
        """Step one chunk of episodes together through the batched plant.

        Per-episode metric accumulation mirrors :func:`run_episode` term by
        term (same additions, same order), so each row of the result is
        bit-identical to running that episode alone.  Actions are collected
        through :meth:`~repro.agents.base.BaseAgent.select_actions_batch`, so
        agents with a vectorised fast path (``rule_based`` schedule plans,
        ``dt`` compiled forests) decide for the whole chunk in array ops
        instead of one python call per episode.

        The loop is columnar end to end: the environment emits
        :class:`~repro.data.ObservationBatch`/:class:`~repro.data.InfoBatch`,
        agents return an :class:`~repro.data.ActionBatch`, and that batch is
        fed straight back into the environment — no per-step object or dict
        materialisation anywhere.
        """
        agent_cls = type(agents[0])
        if not all(type(agent) is agent_cls for agent in agents):
            agent_cls = BaseAgent  # mixed chunk: per-episode reference path
        for episode_agent in agents:
            episode_agent.reset()
        batched = BatchedHVACEnvironment(environments)
        observations, _info = batched.reset()
        total = (
            batched.num_steps
            if self.max_steps is None
            else min(self.max_steps, batched.num_steps)
        )
        batch = batched.batch_size
        total_reward = np.zeros(batch)
        total_energy = np.zeros(batch)
        occupied_steps = np.zeros(batch, dtype=int)
        violation_steps = np.zeros(batch, dtype=int)
        violation_degrees = np.zeros(batch)
        zone_temperatures = np.zeros(batch)
        steps_done = 0

        start = time.perf_counter()
        for step in range(total):
            actions = agent_cls.select_actions_batch(
                agents, observations, environments, step
            )
            result = batched.step(actions)
            info = result.info
            total_reward += result.rewards
            total_energy += info.hvac_electric_energy_kwh
            zone_temperatures += info.zone_temperature
            occupied = info.occupied.astype(bool)
            occupied_steps += occupied
            violation_steps += occupied & info.comfort_violated.astype(bool)
            violation_degrees += np.where(occupied, info.comfort_violation, 0.0)
            observations = result.observations
            steps_done += 1
            if result.truncated or result.terminated:
                break
        wall = time.perf_counter() - start

        # Batch wall time is shared: per-episode steps_per_second then reads
        # as the aggregate throughput of the batch.
        per_episode_wall = wall / batch
        return [
            EpisodeResult(
                scenario=self.scenario.name,
                agent=agent_name,
                episode=index_offset + i,
                seed=int(seeds[i]),
                steps=steps_done,
                total_reward=float(total_reward[i]),
                total_energy_kwh=float(total_energy[i]),
                occupied_steps=int(occupied_steps[i]),
                comfort_violation_steps=int(violation_steps[i]),
                total_comfort_violation_degree_steps=float(violation_degrees[i]),
                mean_zone_temperature=float(zone_temperatures[i] / steps_done)
                if steps_done
                else 0.0,
                wall_seconds=per_episode_wall,
            )
            for i in range(batch)
        ]

    def _run_process(
        self, agent: Union[str, BaseAgent], agent_config: Optional[Dict]
    ) -> List[EpisodeResult]:
        name = self._require_agent_name(agent)
        seeds = self.episode_seeds()
        max_workers = self.workers or os.cpu_count() or 1
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    _run_episode_job,
                    self.scenario,
                    name,
                    agent_config,
                    seed,
                    index,
                    self.max_steps,
                )
                for index, seed in enumerate(seeds)
            ]
            return [future.result() for future in futures]

    def run_many(
        self,
        agents: List[Union[str, BaseAgent]],
    ) -> List[ExperimentResult]:
        """Evaluate several agents on the same scenario/episode batch."""
        return [self.run(agent) for agent in agents]
