"""Command-line front door: ``python -m repro`` (or the ``repro`` script).

Subcommands::

    repro run       evaluate a registered agent on a scenario
    repro extract   run the extract-verify-deploy pipeline, print Table-2 stats
    repro agents    list registered agents and aliases
    repro scenarios list the scenario grid (climate × season × building)
    repro climates  list climate profiles and descriptor aliases
    repro policies  list/prune/verify the policy store
    repro serve     drive the compiled policy server with a request stream
    repro fleet     run the closed-loop simulated fleet (canary/shadow/drift)
    repro bench     time rollouts, distillation or serving, write a baseline JSON

Examples::

    python -m repro run --agent rule_based --climate pittsburgh --steps 96
    python -m repro run --agent dt --climate hot_humid --season summer
    python -m repro extract --climate tucson --preset tiny --save policy.json
    python -m repro extract --preset tiny --dtype float32
    python -m repro serve --requests 100000 --batch-size 512 --columnar
    python -m repro serve --requests 500000 --batch-size 8192 --shards 4
    python -m repro bench --target serve-columnar --rows 100000
    python -m repro bench --target serve-sharded --rows 200000 --shards 4
    python -m repro bench --target serve-faults --rows 40000 --shards 4
    python -m repro serve --shards 4 --retries 3 --degraded fallback
    python -m repro fleet --buildings 1024 --ticks 48 --shards 2 --canary 0.25
    python -m repro fleet --buildings 256 --canary 0.25 --corrupt-candidate
    python -m repro bench --target fleet --buildings 512 --ticks 48 --shards 2
    python -m repro policies --verify
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.reprolint import add_lint_arguments, run_lint_command
from repro.utils.serialization import save_json, to_jsonable
from repro.utils.tables import format_table


class CLIError(Exception):
    """A user-input problem (bad name, invalid value) — reported without a traceback."""


def _resolve(build, *args, **kwargs):
    """Run a lookup/validation step, converting its errors to CLIError."""
    try:
        return build(*args, **kwargs)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise CLIError(message) from exc


def _parse_agent_args(pairs: List[str]) -> Dict:
    """Parse repeated ``--agent-arg key=value`` options (values via JSON when possible)."""
    config: Dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--agent-arg expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            config[key] = json.loads(raw)
        except json.JSONDecodeError:
            config[key] = raw
    return config


# ------------------------------------------------------------------ commands
def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import ExperimentResult, ExperimentRunner
    from repro.experiments.scenarios import ScenarioSpec

    from repro.agents.registry import canonical_name

    scenario = _resolve(
        ScenarioSpec.from_name,
        "/".join(
            p
            for p in (args.climate, args.season, args.building, args.disturbance)
            if p
        ),
        days=args.days,
    )
    agent = _resolve(canonical_name, args.agent)
    runner = _resolve(
        ExperimentRunner,
        scenario,
        episodes=args.episodes,
        base_seed=args.seed,
        max_steps=args.steps,
        backend=args.backend,
        batch_size=args.batch_size,
        workers=args.workers,
    )
    result = runner.run(agent, agent_config=_parse_agent_args(args.agent_arg))
    print(format_table(ExperimentResult.SUMMARY_HEADER, [result.summary_row()]))
    if args.output:
        save_json(result.to_dict(), args.output)
        print(f"Wrote {args.output}")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.weather.climates import get_climate

    city = _resolve(get_climate, args.climate).name
    overrides: Dict = {"city": city, "seed": args.seed, "season": args.season}
    if args.decision_data is not None:
        overrides["num_decision_data"] = args.decision_data
    if args.dtype is not None:
        overrides["dtype"] = args.dtype
    if args.preset == "tiny":
        config = _resolve(PipelineConfig.tiny, **overrides)
    else:
        config = _resolve(PipelineConfig, **overrides)
    result = VerifiedPolicyPipeline(config, store=args.store).run(refresh=args.refresh)
    if result.store_key:
        verb = "Loaded" if result.cache_hit else "Stored"
        print(f"{verb} policy {result.store_key}")

    summary = result.summary_dict()
    rows = [[key, summary[key]] for key in sorted(summary) if key != "stage_seconds"]
    print(format_table(["metric", "value"], rows))
    if args.print_tree:
        print(result.describe(max_depth=args.max_print_depth))
    if args.save:
        result.save_policy(args.save)
        print(f"Wrote {args.save}")
    return 0


def cmd_agents(_args: argparse.Namespace) -> int:
    from repro.agents.registry import agent_aliases, agent_summaries

    aliases_by_name: Dict[str, List[str]] = {}
    for alias, target in agent_aliases().items():
        aliases_by_name.setdefault(target, []).append(alias)
    rows = [
        [name, ", ".join(sorted(aliases_by_name.get(name, []))) or "-", summary]
        for name, summary in agent_summaries().items()
    ]
    print(format_table(["agent", "aliases", "description"], rows))
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.env.disturbances import DISTURBANCES
    from repro.experiments.scenarios import scenario_grid

    if args.disturbances:
        rows = [
            [name, ", ".join(sorted(spec.active_components())) or "-"]
            for name, spec in sorted(DISTURBANCES.items())
        ]
        print(format_table(["disturbance", "active fault components"], rows))
        return 0
    grid = _resolve(
        scenario_grid,
        cities=[args.climate] if args.climate else None,
        seasons=[args.season] if args.season else None,
    )
    rows = [[s.name, s.city, s.season, s.building, s.days] for s in grid]
    print(format_table(["scenario", "city", "season", "building", "days"], rows))
    return 0


def cmd_climates(_args: argparse.Namespace) -> int:
    from repro.weather.climates import available_climate_aliases, available_climates, get_climate

    rows = []
    for name in available_climates():
        profile = get_climate(name)
        rows.append(
            [
                name,
                profile.ashrae_zone,
                profile.january_mean_c,
                profile.monthly_mean_c(7),
            ]
        )
    print(format_table(["city", "ASHRAE", "Jan mean °C", "Jul mean °C"], rows))
    alias_rows = [[alias, city] for alias, city in sorted(available_climate_aliases().items())]
    print(format_table(["alias", "city"], alias_rows))
    return 0


def _open_store(path):
    from repro.store import PolicyStore

    return PolicyStore(path) if path else PolicyStore()


def cmd_policies(args: argparse.Namespace) -> int:
    from repro.weather.climates import get_climate

    store = _open_store(args.store)
    # Store paths use canonical city names; accept descriptor aliases like
    # every other subcommand.
    city = _resolve(get_climate, args.climate).name if args.climate else None
    if args.prune_keep is not None:
        removed = _resolve(
            store.prune, keep=args.prune_keep, city=city, season=args.season
        )
        print(f"Pruned {len(removed)} artifact(s) from {store.root}")
    if args.pack is not None:
        # Pack before verify so a --pack --verify run checks the fresh arena.
        target = None if args.pack is True else args.pack
        arena_path = _resolve(store.pack, path=target, city=city, season=args.season)
        print(f"Packed arena {arena_path} ({arena_path.stat().st_size} bytes)")
    if args.verify:
        report = store.verify()
        bad = [name for name, ok in report.items() if not ok]
        print(f"Integrity: {len(report) - len(bad)}/{len(report)} artifacts OK")
        for name in bad:
            print(f"  CORRUPT: {name}")
    from repro.store import StoreEntry

    entries = store.entries(city=city, season=args.season)
    if not entries:
        print(f"No stored policies under {store.root}")
        return 0
    print(format_table(StoreEntry.ROW_HEADER, [entry.as_row() for entry in entries]))
    return 0


#: Plausible sampling ranges for the Table-1 observation vector, used to
#: synthesise a serving request stream (zone temp, outdoor temp, humidity,
#: wind, solar, occupants).
_OBSERVATION_RANGES = [(10.0, 35.0), (-20.0, 40.0), (0.0, 100.0), (0.0, 15.0), (0.0, 1000.0), (0.0, 60.0)]


def _synthetic_observations(rng, rows: int, dim: int):
    import numpy as np

    if dim == len(_OBSERVATION_RANGES):
        low, high = (np.array(r) for r in zip(*_OBSERVATION_RANGES))
    else:
        low, high = -10.0, 40.0
    return rng.uniform(low, high, size=(rows, dim))


def _ensure_store_policy(store, args) -> None:
    """Extract (and persist) a tiny verified policy when the store is empty."""
    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.weather.climates import get_climate

    city = _resolve(get_climate, args.climate).name
    overrides: Dict = {"city": city, "seed": args.seed, "season": args.season}
    if args.decision_data is not None:
        overrides["num_decision_data"] = args.decision_data
    config = _resolve(PipelineConfig.tiny, **overrides)
    print(f"Store {store.root} has no matching policy; extracting a tiny one...")
    result = VerifiedPolicyPipeline(config, store=store).run()
    print(f"Stored policy {result.store_key}")


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.serving import (
        PolicyRequest,
        PolicyRequestBatch,
        PolicyServer,
        ShardedPolicyServer,
    )

    if args.requests <= 0:
        raise CLIError("--requests must be positive")
    if args.batch_size <= 0:
        raise CLIError("--batch-size must be positive")
    if args.shards < 1:
        raise CLIError("--shards must be at least 1")
    store = _open_store(args.store)
    if not store.entries():
        _ensure_store_policy(store, args)
    # --arena maps straight onto resolve_arena(): absent -> auto-detect,
    # bare flag -> require, PATH -> open that file.
    arena = True if args.arena is True else (args.arena if args.arena else None)
    sharded = args.shards > 1
    if sharded:
        # The sharded fleet speaks columnar natively; the per-request object
        # stream makes no sense across a process boundary.
        server = _resolve(
            ShardedPolicyServer,
            store=store,
            num_shards=args.shards,
            cache_size=args.cache_size,
            timeout=args.timeout,
            retries=args.retries,
            degraded=args.degraded,
            arena=arena,
        )
    else:
        server = _resolve(PolicyServer, store=store, cache_size=args.cache_size, arena=arena)
    if server.arena_error:
        print(f"arena skipped: {server.arena_error}")
    policy_ids = [entry.key.name for entry in store.entries()]
    if sharded:
        dim = PolicyServer(store=store, cache_size=1, arena=False).resolve(policy_ids[0]).n_features
    else:
        dim = server.resolve(policy_ids[0]).n_features

    rng = np.random.default_rng(args.seed)
    observations = _synthetic_observations(rng, args.requests, dim)
    # Interleave buildings round-robin so every batch mixes policies — the
    # per-policy grouping inside the server is what keeps this vectorised.
    assigned = np.array([policy_ids[i % len(policy_ids)] for i in range(args.requests)])

    served = 0
    start = time.perf_counter()
    try:
        if args.columnar or sharded:
            # Arrays in, arrays out: no per-request python objects anywhere.
            while served < args.requests:
                stop = min(served + args.batch_size, args.requests)
                server.serve_columnar(
                    PolicyRequestBatch(
                        policy_ids=assigned[served:stop],
                        observations=observations[served:stop],
                    )
                )
                served = stop
        else:
            while served < args.requests:
                batch = [
                    PolicyRequest(policy_id=assigned[i], observation=observations[i])
                    for i in range(served, min(served + args.batch_size, args.requests))
                ]
                server.serve(batch)
                served += len(batch)
        wall = time.perf_counter() - start
        stats = server.stats() if sharded else server.stats.to_dict()
    finally:
        # A serving error must not strand the worker fleet, its rings, or an
        # arena mapping the server opened itself.
        server.close()
    summary = {
        "requests": served,
        "batch_size": args.batch_size,
        "columnar": bool(args.columnar or sharded),
        "shards": args.shards,
        "policies": len(policy_ids),
        "wall_seconds": wall,
        "requests_per_second": served / wall if wall > 0 else float("inf"),
        "server_stats": stats,
    }
    print(
        format_table(
            ["requests", "policies", "batch", "columnar", "shards", "wall s", "req/s"],
            [[served, len(policy_ids), args.batch_size,
              str(bool(args.columnar or sharded)), args.shards,
              round(wall, 4), round(summary["requests_per_second"], 1)]],
        )
    )
    supervisor = stats.get("supervisor") if sharded else None
    if supervisor:
        # Fleet health: one row per shard from the supervisor's describe().
        print(
            format_table(
                ["shard", "pid", "alive", "gen", "restarts", "heartbeat age s"],
                [
                    [
                        shard,
                        shard_state["pid"],
                        str(shard_state["alive"]),
                        shard_state["generation"],
                        shard_state["restarts"],
                        round(shard_state["last_heartbeat_age_seconds"], 2),
                    ]
                    for shard, shard_state in sorted(supervisor["shards"].items())
                ],
            )
        )
        fleet_counters = stats.get("fleet", {})
        print(
            f"fleet: restarts={supervisor['restarts']} "
            f"retries={fleet_counters.get('retries', 0)} "
            f"fallback_rows={fleet_counters.get('fallback_rows', 0)} "
            f"lost_requests={fleet_counters.get('lost_requests', 0)}"
        )
    if args.stats_json:
        # Machine-readable fleet/supervisor counters: CI and the fleet loop
        # assert on restarts / lost_requests without scraping tables.
        save_json(to_jsonable(stats), args.stats_json)
        print(f"Wrote {args.stats_json}")
    if args.output:
        save_json(to_jsonable(summary), args.output)
        print(f"Wrote {args.output}")
    return 0


def _ensure_scenario_policy(store, scenario_name: str, seed: int, decision_data=None) -> str:
    """Resolve (or tiny-extract) a store policy for one scenario; returns its name."""
    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.experiments.scenarios import ScenarioSpec

    spec = _resolve(ScenarioSpec.from_name, scenario_name)
    entries = store.entries(city=spec.city, season=spec.season)
    if entries:
        return entries[0].key.name
    overrides: Dict = {"city": spec.city, "seed": seed, "season": spec.season}
    if decision_data is not None:
        overrides["num_decision_data"] = decision_data
    config = _resolve(PipelineConfig.tiny, **overrides)
    print(
        f"Store {store.root} has no {spec.city}/{spec.season} policy; "
        "extracting a tiny one..."
    )
    result = VerifiedPolicyPipeline(config, store=store).run()
    print(f"Stored policy {result.store_key}")
    return result.store_key


def _corrupted_clone(policy):
    """Clone a tree policy with every leaf forced to its most aggressive action.

    The deliberately-broken candidate of the rollout tests: structurally a
    valid policy (so it registers and serves normally) whose decisions
    maximally disagree with any sane teacher — the drift detector must catch
    it during the canary.
    """
    from repro.core.tree_policy import TreePolicy

    clone = TreePolicy.from_dict(policy.to_dict())
    extreme = max(clone.action_pairs, key=lambda pair: (pair[0], -pair[1]))
    for leaf in clone.leaves():
        clone.set_leaf_action(leaf, *extreme)
    return clone


def _build_mpc_teacher(
    climate: str, season: str, seed: int, dynamics_model=None, pipeline_config=None
):
    """Wrap the RS optimizer as a drift teacher, pipeline hyper-parameters.

    When the caller holds the pipeline's own fitted ``dynamics_model`` (a
    fresh extraction), the teacher is *exactly* the oracle the incumbent was
    distilled from — teacher-vs-incumbent disagreement then sits near
    ``1 - fidelity``, which is what makes the baseline-relative drift alarm
    discriminating.  Without one (store cache hit), a model is trained from
    scratch with the same tiny-pipeline hyper-parameters.
    """
    from repro.agents.random_shooting import RandomShootingOptimizer
    from repro.agents.rule_based import RuleBasedAgent
    from repro.core.pipeline import PipelineConfig
    from repro.env.dataset import collect_historical_data
    from repro.env.hvac_env import make_environment
    from repro.fleet import MPCTeacher
    from repro.nn.dynamics import ThermalDynamicsModel
    from repro.weather.climates import get_climate

    city = _resolve(get_climate, climate).name
    config = pipeline_config or _resolve(
        PipelineConfig.tiny, city=city, seed=seed, season=season
    )
    environment = make_environment(
        city=city, days=config.historical_days, seed=seed, season=season
    )
    if dynamics_model is None:
        data = collect_historical_data(
            environment, RuleBasedAgent.from_config(environment), seed=seed + 1
        )
        dynamics_model = ThermalDynamicsModel(
            hidden_sizes=config.hidden_sizes, seed=seed + 2
        )
        dynamics_model.fit(data, epochs=config.training_epochs, seed=seed + 3)
    optimizer = RandomShootingOptimizer(
        dynamics_model=dynamics_model,
        action_space=environment.action_space,
        reward_config=environment.config.reward,
        action_config=environment.config.actions,
        num_samples=config.optimizer_samples,
        horizon=config.planning_horizon,
        discount=config.discount,
        seed=seed + 4,
    )
    return MPCTeacher(
        optimizer,
        environment.action_space.pairs,
        monte_carlo_runs=config.monte_carlo_runs,
        planning_horizon=config.planning_horizon,
        seed=seed + 5,
    )


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        DriftDetector,
        FleetGroup,
        FleetLoop,
        RolloutManager,
        ShadowEvaluator,
        TreePolicyTeacher,
    )
    from repro.serving import Fault, ShardedPolicyServer, shard_for_policy

    if args.buildings <= 0:
        raise CLIError("--buildings must be positive")
    if args.ticks <= 0:
        raise CLIError("--ticks must be positive")
    if args.shards < 1:
        raise CLIError("--shards must be at least 1")
    if not 0.0 <= args.canary <= 1.0:
        raise CLIError("--canary must be a fraction in [0, 1]")
    if args.inject_kill is not None and args.shards < 2:
        raise CLIError("--inject-kill needs --shards >= 2")
    scenario_names = [name.strip() for name in args.scenarios.split(",") if name.strip()]
    if not scenario_names:
        raise CLIError("--scenarios must name at least one scenario")

    store = _open_store(args.store)
    incumbents = [
        _ensure_scenario_policy(store, name, args.seed, args.decision_data)
        for name in scenario_names
    ]
    per_group = [
        args.buildings // len(scenario_names)
        + (1 if index < args.buildings % len(scenario_names) else 0)
        for index in range(len(scenario_names))
    ]
    groups = [
        _resolve(
            FleetGroup.from_scenario,
            name,
            policy_id=incumbent,
            num_buildings=count,
            base_seed=args.seed + 1000 * index,
            distinct=args.distinct,
            days=args.days,
        )
        for index, (name, incumbent, count) in enumerate(
            zip(scenario_names, incumbents, per_group)
        )
        if count > 0
    ]

    rollout = shadow = drift = None
    candidate_policy = None
    candidate_id = None
    if args.canary > 0:
        stored = store.find(incumbents[0])
        if stored is None:
            raise CLIError(f"Incumbent {incumbents[0]} vanished from the store")
        incumbent_policy = stored.policy
        if args.corrupt_candidate:
            candidate_policy = _corrupted_clone(incumbent_policy)
            candidate_id = "candidate-corrupted"
        else:
            from repro.core.tree_policy import TreePolicy

            candidate_policy = TreePolicy.from_dict(incumbent_policy.to_dict())
            candidate_id = "candidate-healthy"
        rollout = RolloutManager(
            incumbents[0],
            candidate_id,
            canary_fraction=args.canary,
            min_canary_ticks=args.min_canary_ticks,
        )
        reward = groups[0].env.environments[0].config.reward
        actions_config = groups[0].env.environments[0].config.actions
        shadow = ShadowEvaluator(
            reward.comfort.lower,
            reward.comfort.upper,
            *actions_config.off_setpoints(),
            window=args.window,
        )
        if args.drift_teacher == "mpc":
            from repro.experiments.scenarios import ScenarioSpec

            lead = _resolve(ScenarioSpec.from_name, scenario_names[0])
            teacher = _build_mpc_teacher(lead.city, lead.season, args.seed + 100)
        else:
            teacher = TreePolicyTeacher(incumbent_policy)
        drift = DriftDetector(
            teacher,
            sample_size=args.drift_sample,
            window=args.window,
            threshold=args.drift_threshold,
            min_ticks=max(2, args.window // 2),
            baseline_policy_id=incumbents[0],
            seed=args.seed + 7,
        )

    server = _resolve(
        ShardedPolicyServer,
        store=store,
        num_shards=args.shards,
        cache_size=args.cache_size,
        timeout=args.timeout,
        retries=args.retries,
        degraded=args.degraded,
    )
    try:
        loop = FleetLoop(
            server,
            groups,
            rollout=rollout,
            shadow=shadow,
            drift=drift,
            fallback=not args.no_fallback,
        )
        if rollout is not None:
            server.register(candidate_id, candidate_policy)
            rollout.begin_canary(0)
        for tick in range(args.ticks):
            if args.inject_kill is not None and tick == args.inject_kill:
                target = candidate_id if candidate_id is not None else incumbents[0]
                server.inject_fault(
                    Fault(kind="kill", shard=shard_for_policy(target, args.shards))
                )
            loop.tick()
        stats = server.stats()
    finally:
        server.close()

    report = loop.report()
    report["server_stats"] = stats
    telemetry = report["telemetry"]
    latency = report["tick_latency_seconds"]
    print(
        format_table(
            ["buildings", "ticks", "ticks/s", "p50 ms", "p99 ms", "fallback", "lost", "state"],
            [[
                report["buildings"],
                report["ticks"],
                round(report["ticks_per_second"], 2),
                round(latency["p50"] * 1e3, 2),
                round(latency["p99"] * 1e3, 2),
                telemetry["fallback_ticks"],
                telemetry["lost_ticks"],
                rollout.state if rollout is not None else "-",
            ]],
        )
    )
    if rollout is not None:
        for event in report["rollout"]["events"]:
            print(f"tick {event['tick']}: {event['previous']} -> {event['state']} ({event['reason']})")
    if args.stats_json:
        save_json(to_jsonable(stats), args.stats_json)
        print(f"Wrote {args.stats_json}")
    if args.output:
        save_json(to_jsonable(report), args.output)
        print(f"Wrote {args.output}")
    return 0


def _bench_rollout(args: argparse.Namespace) -> Dict:
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.scenarios import ScenarioSpec

    from repro.agents.registry import canonical_name

    scenario = _resolve(
        ScenarioSpec.from_name,
        "/".join(p for p in (args.climate, args.season) if p),
        days=args.days,
    )
    agent = _resolve(canonical_name, args.agent)
    runner = _resolve(
        ExperimentRunner,
        scenario,
        episodes=args.episodes,
        base_seed=args.seed,
        backend=args.backend,
        batch_size=args.batch_size,
        workers=args.workers,
    )
    result = runner.run(agent)
    return {
        "benchmark": "rollout",
        "scenario": scenario.name,
        "agent": result.agent,
        "days": args.days,
        "episodes": args.episodes,
        "backend": args.backend,
        "batch_size": args.batch_size,
        "steps_per_episode": result.total_steps // max(result.num_episodes, 1),
        "mean_steps_per_second": result.mean_steps_per_second,
        # Per-episode timings are redundant for the batched backend (the
        # batch shares one wall clock, so every episode reports the same
        # aggregate throughput).
        **(
            {"per_episode_steps_per_second": [e.steps_per_second for e in result.episodes]}
            if args.backend != "batched"
            else {}
        ),
    }


def _bench_distill(args: argparse.Namespace) -> Dict:
    """Time serial vs. batched vs. float32-batched Monte-Carlo distillation.

    The float32 row measures the dtype-policy fast path
    (``set_inference_dtype("float32")``) against the float64 batched
    reference on the same inputs and reports the label-agreement rate —
    the distilled labels are a vote over many stochastic plans, so tiny
    per-prediction rounding differences rarely flip a label.
    """
    import numpy as np

    from repro.agents.random_shooting import RandomShootingOptimizer
    from repro.agents.rule_based import RuleBasedAgent
    from repro.core.decision_dataset import DecisionDatasetGenerator
    from repro.core.sampling import AugmentedHistoricalSampler
    from repro.env.dataset import collect_historical_data
    from repro.env.hvac_env import make_environment
    from repro.nn.dynamics import ThermalDynamicsModel

    environment = make_environment(city=args.climate, days=2, seed=args.seed, season=args.season)
    data = collect_historical_data(
        environment, RuleBasedAgent.from_config(environment), seed=args.seed + 1
    )
    # Paper-shaped (64, 64) model: distillation cost is dominated by its
    # matmuls, which is exactly what the float32 row is meant to expose.
    model = ThermalDynamicsModel(hidden_sizes=(64, 64), seed=args.seed + 2)
    model.fit(data, epochs=15, seed=args.seed + 3)
    optimizer = RandomShootingOptimizer(
        dynamics_model=model,
        action_space=environment.action_space,
        reward_config=environment.config.reward,
        action_config=environment.config.actions,
        num_samples=args.samples,
        horizon=args.horizon,
        seed=args.seed + 4,
    )
    generator = DecisionDatasetGenerator(
        optimizer=optimizer,
        sampler=AugmentedHistoricalSampler.from_dataset(data),
        action_pairs=environment.action_space.pairs,
        monte_carlo_runs=args.mc_runs,
        planning_horizon=args.horizon,
    )
    serial = generator.generate(args.entries, seed=args.seed, method="serial")
    batched = generator.generate(args.entries, seed=args.seed, method="batched")
    model.set_inference_dtype("float32")
    float32 = generator.generate(args.entries, seed=args.seed, method="batched")
    model.set_inference_dtype("float64")
    return {
        "benchmark": "distill",
        "entries": args.entries,
        "monte_carlo_runs": args.mc_runs,
        "optimizer_samples": args.samples,
        "planning_horizon": args.horizon,
        "serial_seconds_per_entry": serial.generation_seconds_per_entry,
        "batched_seconds_per_entry": batched.generation_seconds_per_entry,
        "speedup": serial.generation_seconds_per_entry
        / max(batched.generation_seconds_per_entry, 1e-12),
        "labels_identical": bool(np.array_equal(serial.action_labels, batched.action_labels)),
        "float32_seconds_per_entry": float32.generation_seconds_per_entry,
        "float32_speedup": batched.generation_seconds_per_entry
        / max(float32.generation_seconds_per_entry, 1e-12),
        "float32_label_agreement": float(
            np.mean(float32.action_labels == batched.action_labels)
        ),
    }


def _bench_serve(args: argparse.Namespace) -> Dict:
    """Compiled-serving benchmark: predict_batch vs per-row python + store cache hit.

    Runs a tiny extract-verify pipeline into a scratch store (timing the cold
    run), re-resolves the same configuration (timing the pure cache hit),
    then measures recursive per-row traversal against the compiled
    ``predict_batch`` on an identical input batch and checks the actions are
    exactly equal.
    """
    import tempfile
    import time

    import numpy as np

    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.serving import PolicyRequest, PolicyServer
    from repro.store import PolicyStore
    from repro.weather.climates import get_climate

    city = _resolve(get_climate, args.climate).name
    config = _resolve(
        PipelineConfig.tiny, city=city, seed=args.seed, season=args.season
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as scratch:
        store = PolicyStore(scratch)
        start = time.perf_counter()
        cold = VerifiedPolicyPipeline(config, store=store).run()
        extract_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = VerifiedPolicyPipeline(config, store=store).run()
        store_hit_seconds = time.perf_counter() - start

        policy = warm.policy
        compiled = policy.compiled()
        rng = np.random.default_rng(args.seed)
        inputs = _synthetic_observations(rng, args.rows, policy.input_dim)

        start = time.perf_counter()
        recursive = policy.predict_action_indices(inputs)
        recursive_seconds = time.perf_counter() - start
        start = time.perf_counter()
        batched = compiled.predict_batch(inputs)
        compiled_seconds = time.perf_counter() - start

        # End-to-end front door: request objects + grouping + response objects.
        server = PolicyServer(store=store, cache_size=4)
        policy_id = store.entries()[0].key.name
        requests = [
            PolicyRequest(policy_id=policy_id, observation=row) for row in inputs
        ]
        start = time.perf_counter()
        for offset in range(0, len(requests), 512):
            server.serve(requests[offset : offset + 512])
        server_seconds = time.perf_counter() - start

    return {
        "benchmark": "serve",
        "rows": args.rows,
        "tree_nodes": policy.node_count,
        "tree_leaves": policy.leaf_count,
        "tree_depth": policy.depth,
        "actions_identical": bool(np.array_equal(recursive, batched)),
        "recursive_rows_per_second": args.rows / max(recursive_seconds, 1e-12),
        "compiled_rows_per_second": args.rows / max(compiled_seconds, 1e-12),
        "speedup": recursive_seconds / max(compiled_seconds, 1e-12),
        "server_requests_per_second": args.rows / max(server_seconds, 1e-12),
        "extract_seconds": extract_seconds,
        "store_hit_seconds": store_hit_seconds,
        "cache_hit": bool(warm.cache_hit),
        "cache_speedup": extract_seconds / max(store_hit_seconds, 1e-12),
    }


def _bench_serve_columnar(args: argparse.Namespace) -> Dict:
    """Columnar vs legacy front-door throughput on a mixed-building stream.

    Extracts two tiny policies (different seeds) into a scratch store so
    every chunk genuinely interleaves buildings, then pushes the same
    request stream through the legacy object API (``serve``) and the
    columnar API (``serve_columnar``) and checks the actions match
    exactly.  This isolates the object-conversion tax the columnar data
    plane removes: the tree kernel underneath is identical.
    """
    import tempfile
    import time

    import numpy as np

    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.serving import PolicyRequest, PolicyRequestBatch, PolicyServer
    from repro.store import PolicyStore
    from repro.weather.climates import get_climate

    city = _resolve(get_climate, args.climate).name
    chunk = args.batch_size or 512
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as scratch:
        store = PolicyStore(scratch)
        for seed in (args.seed, args.seed + 1):
            config = _resolve(
                PipelineConfig.tiny, city=city, seed=seed, season=args.season
            )
            VerifiedPolicyPipeline(config, store=store).run()
        server = PolicyServer(store=store, cache_size=4)
        policy_ids = [entry.key.name for entry in store.entries()]
        dim = server.resolve(policy_ids[0]).n_features

        rng = np.random.default_rng(args.seed)
        observations = _synthetic_observations(rng, args.rows, dim)
        assigned = np.array([policy_ids[i % len(policy_ids)] for i in range(args.rows)])

        requests = [
            PolicyRequest(policy_id=assigned[i], observation=observations[i])
            for i in range(args.rows)
        ]
        start = time.perf_counter()
        legacy_actions = np.empty(args.rows, dtype=np.int64)
        for lo in range(0, args.rows, chunk):
            responses = server.serve(requests[lo : lo + chunk])
            legacy_actions[lo : lo + len(responses)] = [
                r.action_index for r in responses
            ]
        legacy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        columnar_actions = np.empty(args.rows, dtype=np.int64)
        for lo in range(0, args.rows, chunk):
            hi = min(lo + chunk, args.rows)
            response = server.serve_columnar(
                PolicyRequestBatch(
                    policy_ids=assigned[lo:hi], observations=observations[lo:hi]
                )
            )
            columnar_actions[lo:hi] = response.action_indices
        columnar_seconds = time.perf_counter() - start

    return {
        "benchmark": "serve-columnar",
        "rows": args.rows,
        "batch_size": chunk,
        "policies": len(policy_ids),
        "actions_identical": bool(np.array_equal(legacy_actions, columnar_actions)),
        "legacy_requests_per_second": args.rows / max(legacy_seconds, 1e-12),
        "columnar_requests_per_second": args.rows / max(columnar_seconds, 1e-12),
        "speedup": legacy_seconds / max(columnar_seconds, 1e-12),
    }


def _bench_serve_sharded(args: argparse.Namespace) -> Dict:
    """Sharded vs single-process columnar throughput on mixed-building traffic.

    Extracts four tiny policies (distinct seeds) into a scratch store so the
    round-robin request stream genuinely mixes buildings across shards, warms
    both servers (policy compilation out of the timed region), then pushes
    the identical stream through ``PolicyServer.serve_columnar`` and a
    ``ShardedPolicyServer`` fleet and checks the actions are exactly equal.
    The speedup is a multi-core scaling measurement: on a single-core box the
    sharded path can only add IPC overhead, so the result records
    ``cpu_count`` and CI gates its scaling floor on it.
    """
    import os
    import tempfile
    import time

    import numpy as np

    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.serving import PolicyRequestBatch, PolicyServer, ShardedPolicyServer
    from repro.store import PolicyStore
    from repro.weather.climates import get_climate

    if args.shards < 1:
        raise CLIError("--shards must be at least 1")
    city = _resolve(get_climate, args.climate).name
    chunk = args.batch_size or 8192
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as scratch:
        store = PolicyStore(scratch)
        for seed in range(args.seed, args.seed + 4):
            config = _resolve(
                PipelineConfig.tiny, city=city, seed=seed, season=args.season
            )
            VerifiedPolicyPipeline(config, store=store).run()
        policy_ids = [entry.key.name for entry in store.entries()]
        single = PolicyServer(store=store, cache_size=8)
        dim = single.resolve(policy_ids[0]).n_features

        rng = np.random.default_rng(args.seed)
        observations = _synthetic_observations(rng, args.rows, dim)
        assigned = np.array([policy_ids[i % len(policy_ids)] for i in range(args.rows)])

        def stream(server, out):
            for lo in range(0, args.rows, chunk):
                hi = min(lo + chunk, args.rows)
                response = server.serve_columnar(
                    PolicyRequestBatch(
                        policy_ids=assigned[lo:hi], observations=observations[lo:hi]
                    )
                )
                out[lo:hi] = response.action_indices

        warmup = PolicyRequestBatch(
            policy_ids=assigned[:chunk], observations=observations[:chunk]
        )
        single_actions = np.empty(args.rows, dtype=np.int64)
        single.serve_columnar(warmup)  # compile every policy before timing
        start = time.perf_counter()
        stream(single, single_actions)
        single_seconds = time.perf_counter() - start

        sharded_actions = np.empty(args.rows, dtype=np.int64)
        with ShardedPolicyServer(store=store, num_shards=args.shards, cache_size=8) as fleet:
            fleet.serve_columnar(warmup)
            start = time.perf_counter()
            stream(fleet, sharded_actions)
            sharded_seconds = time.perf_counter() - start

    return {
        "benchmark": "serve-sharded",
        "rows": args.rows,
        "batch_size": chunk,
        "shards": args.shards,
        "cpu_count": os.cpu_count(),
        "policies": len(policy_ids),
        "actions_identical": bool(np.array_equal(single_actions, sharded_actions)),
        "single_process_requests_per_second": args.rows / max(single_seconds, 1e-12),
        "sharded_requests_per_second": args.rows / max(sharded_seconds, 1e-12),
        "speedup": single_seconds / max(sharded_seconds, 1e-12),
    }


def _bench_serve_faults(args: argparse.Namespace) -> Dict:
    """Recovery under injected faults: kill one shard, hang another, mid-stream.

    Streams mixed-building batches through a supervised fleet and, partway
    through, injects a ``kill`` fault into one traffic-bearing shard and a
    ``hang`` fault into another (see :mod:`repro.serving.faults`).  The fleet
    must heal both without a single caller-visible error: the bench records
    the latency of the faulted batches (the recovery time — restart + replay
    + re-dispatch), the median healthy-batch latency for contrast, restart
    and retry counters, and the two floor facts CI gates on: zero lost
    requests and actions bit-identical to the single-process server.
    Recovery time scales with core count (the restarted worker re-opens its
    store under contention), so ``cpu_count`` is recorded and CI applies its
    latency floor only on multi-core runners.
    """
    import os
    import tempfile
    import time

    import numpy as np

    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.serving import (
        Fault,
        PolicyRequestBatch,
        PolicyServer,
        ShardedPolicyServer,
        shard_for_policy,
    )
    from repro.store import PolicyStore
    from repro.weather.climates import get_climate

    if args.shards < 2:
        raise CLIError("--target serve-faults needs --shards >= 2")
    city = _resolve(get_climate, args.climate).name
    chunk = args.batch_size or 4096
    timeout = args.timeout if args.timeout is not None else 1.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as scratch:
        store = PolicyStore(scratch)
        for seed in range(args.seed, args.seed + 4):
            config = _resolve(
                PipelineConfig.tiny, city=city, seed=seed, season=args.season
            )
            VerifiedPolicyPipeline(config, store=store).run()
        policy_ids = [entry.key.name for entry in store.entries()]
        single = PolicyServer(store=store, cache_size=8)
        dim = single.resolve(policy_ids[0]).n_features

        rng = np.random.default_rng(args.seed)
        observations = _synthetic_observations(rng, args.rows, dim)
        assigned = np.array([policy_ids[i % len(policy_ids)] for i in range(args.rows)])

        single_actions = np.empty(args.rows, dtype=np.int64)
        for lo in range(0, args.rows, chunk):
            hi = min(lo + chunk, args.rows)
            response = single.serve_columnar(
                PolicyRequestBatch(
                    policy_ids=assigned[lo:hi], observations=observations[lo:hi]
                )
            )
            single_actions[lo:hi] = response.action_indices

        # Fault only shards that actually carry traffic (policy routing may
        # leave some shards idle), or the injected fault would never fire.
        active = sorted({shard_for_policy(pid, args.shards) for pid in policy_ids})
        kill_shard = active[0]
        hang_shard = active[1 % len(active)]
        offsets = list(range(0, args.rows, chunk))
        kill_batch = len(offsets) // 3
        hang_batch = (2 * len(offsets)) // 3

        sharded_actions = np.empty(args.rows, dtype=np.int64)
        batch_seconds = []
        with ShardedPolicyServer(
            store=store,
            num_shards=args.shards,
            cache_size=8,
            timeout=timeout,
            retries=args.retries,
            degraded=args.degraded,
            heartbeat_interval=None,
        ) as fleet:
            fleet.serve_columnar(
                PolicyRequestBatch(
                    policy_ids=assigned[:chunk], observations=observations[:chunk]
                )
            )
            for index, lo in enumerate(offsets):
                hi = min(lo + chunk, args.rows)
                if index == kill_batch:
                    fleet.inject_fault(Fault(kind="kill", shard=kill_shard))
                if index == hang_batch:
                    fleet.inject_fault(
                        Fault(kind="hang", shard=hang_shard, seconds=30.0)
                    )
                start = time.perf_counter()
                response = fleet.serve_columnar(
                    PolicyRequestBatch(
                        policy_ids=assigned[lo:hi],
                        observations=observations[lo:hi],
                    )
                )
                batch_seconds.append(time.perf_counter() - start)
                sharded_actions[lo:hi] = response.action_indices
            stats = fleet.stats()

    fleet_counters = stats["fleet"]
    return {
        "benchmark": "serve-faults",
        "rows": args.rows,
        "batch_size": chunk,
        "shards": args.shards,
        "cpu_count": os.cpu_count(),
        "policies": len(policy_ids),
        "timeout_seconds": timeout,
        "retries": args.retries,
        "degraded": args.degraded,
        "faults": {
            "kill": {"shard": kill_shard, "batch": kill_batch},
            "hang": {"shard": hang_shard, "batch": hang_batch},
        },
        "errors_raised": 0,  # reaching here means no serve call raised
        "requests_lost": fleet_counters["lost_requests"],
        "fleet_requests_total": fleet_counters["requests"],  # includes warmup
        "actions_identical": bool(np.array_equal(single_actions, sharded_actions)),
        "restarts": stats["supervisor"]["restarts"],
        "retries_used": fleet_counters["retries"],
        "fallback_rows": fleet_counters["fallback_rows"],
        "kill_recovery_seconds": batch_seconds[kill_batch],
        "hang_recovery_seconds": batch_seconds[hang_batch],
        "median_batch_seconds": float(np.median(batch_seconds)),
    }


def _synthetic_store_policies(store, count: int, seed: int) -> List[str]:
    """Fill ``store`` with ``count`` small random tree policies; returns names.

    Trees are built node-by-node (no CART fit — the bench measures the store,
    not extraction) with thresholds drawn from the Table-1 observation ranges
    so requests actually route through both branches.  All policies share the
    canonical feature list, matching a real fleet where every building speaks
    the same observation schema.
    """
    import numpy as np

    from repro.core.tree_policy import TreePolicy
    from repro.data import OBSERVATION_FEATURES
    from repro.dtree.cart import DecisionTreeClassifier
    from repro.dtree.node import TreeNode
    from repro.store import PolicyKey

    rng = np.random.default_rng(seed)
    n_features = len(_OBSERVATION_RANGES)
    action_pairs = [(15 + i, 22 + i) for i in range(8)]
    names: List[str] = []
    for index in range(count):
        next_id = iter(range(1 << 20))

        def grow(depth: int) -> TreeNode:
            if depth == 0 or rng.random() < 0.2:
                return TreeNode(
                    node_id=next(next_id),
                    prediction=int(rng.integers(len(action_pairs))),
                )
            feature = int(rng.integers(n_features))
            low, high = _OBSERVATION_RANGES[feature]
            node = TreeNode(
                node_id=next(next_id),
                feature_index=feature,
                threshold=float(rng.uniform(low, high)),
                prediction=0,
            )
            node.left = grow(depth - 1)
            node.right = grow(depth - 1)
            return node

        depth = int(rng.integers(3, 6))
        tree = DecisionTreeClassifier(max_depth=depth)
        tree.n_features = n_features
        tree.root = grow(depth)
        tree.classes_ = np.arange(len(action_pairs))
        policy = TreePolicy(
            tree, action_pairs=action_pairs, feature_names=list(OBSERVATION_FEATURES)
        )
        key = PolicyKey(
            city="fleet",
            season="summer",
            building="office",
            seed=index,
            config_hash=f"{index:012x}",
        )
        names.append(store.put_policy(key, policy).key.name)
    return names


def _process_memory_kb(pid) -> Tuple[Optional[int], Optional[str]]:
    """Resident memory of one process in KiB: (value, metric).

    Prefers proportional-set-size (``smaps_rollup`` — shared mmap pages are
    divided among their mappers, so summing workers never double-counts the
    arena), falls back to ``VmRSS``, and returns ``(None, None)`` off-Linux
    so callers can gate memory floors on metric availability.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("Pss:"):
                    return int(line.split()[1]), "pss"
    except OSError:
        pass
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]), "rss"
    except OSError:
        pass
    return None, None


def _store_cold_memory_probe(
    store_root: str,
    warmup_ids,
    fleet_ids,
    observations,
    cache_size: int,
    conn,
) -> None:
    """Child-process half of the store-cold memory measurement.

    Runs in a fresh process (same lifecycle as a shard worker, so its
    allocator has no free lists left over from the benchmark's earlier
    phases): build an arena-backed server, serve the warm-up batch, read the
    resident baseline, warm the full fleet, read again, report through
    ``conn``.
    """
    import gc
    import os

    import numpy as np

    from repro.serving import PolicyRequestBatch, PolicyServer
    from repro.store import PolicyStore

    server = PolicyServer(
        store=PolicyStore(store_root), cache_size=cache_size, arena=True
    )
    server.serve_columnar(
        PolicyRequestBatch(policy_ids=np.asarray(warmup_ids), observations=observations)
    )
    gc.collect()
    before, metric = _process_memory_kb(os.getpid())
    server.serve_columnar(
        PolicyRequestBatch(policy_ids=np.asarray(fleet_ids), observations=observations)
    )
    after, _ = _process_memory_kb(os.getpid())
    server.close()
    conn.send((before, after, metric))
    conn.close()


def _bench_store_cold(args: argparse.Namespace) -> Dict:
    """Cold-load cost of the packed arena vs the per-file JSON store.

    Synthesises ``--policies`` small tree policies into a scratch store,
    packs them into one arena, and measures what the paper's fleet-restart
    story actually costs: time from a cold process to the first full-fleet
    action batch (every policy answers once — the JSON path parses and
    compiles each artifact, the arena path mmaps one file and hands out
    zero-copy views), per-policy cold TTFA on fresh servers, steady-state
    warm throughput (the arena must not be slower once everything is hot),
    resident-memory growth of warming every policy in one fresh process vs
    ``--shards`` worker processes (the mmap pages are shared, so the fleet's
    footprint must not scale with the shard count; both sides baseline after
    a same-size warm-up batch so fixed transport/allocator costs cancel),
    and supervised kill-recovery (the respawned worker reopens the mapping:
    zero recompiles, zero lost requests).
    """
    import os
    import tempfile
    import time

    import numpy as np

    from repro.serving import PolicyRequestBatch, PolicyServer, ShardedPolicyServer
    from repro.store import PolicyStore

    if args.policies < 2:
        raise CLIError("--policies must be at least 2")
    if args.shards < 2:
        raise CLIError("--target store-cold needs --shards >= 2")
    sample = min(16, args.policies)
    with tempfile.TemporaryDirectory(prefix="repro-bench-arena-") as scratch:
        store = PolicyStore(scratch)
        start = time.perf_counter()
        policy_ids = _synthetic_store_policies(store, args.policies, args.seed)
        generate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        arena_path = store.pack()
        pack_seconds = time.perf_counter() - start
        arena_bytes = arena_path.stat().st_size

        rng = np.random.default_rng(args.seed)
        dim = len(_OBSERVATION_RANGES)
        # The first fleet tick after a restart: every policy answers once.
        assigned = np.array(policy_ids)
        observations = _synthetic_observations(rng, args.policies, dim)
        fleet_batch = PolicyRequestBatch(policy_ids=assigned, observations=observations)

        def fleet_cold(arena_flag):
            """Cold process -> first full-fleet batch; returns the warm server too."""
            start = time.perf_counter()
            server = PolicyServer(
                store=store, cache_size=args.policies + 1, arena=arena_flag
            )
            actions = server.serve_columnar(fleet_batch).action_indices
            return time.perf_counter() - start, actions, server

        json_ttfa, json_actions, json_server = fleet_cold(False)
        start = time.perf_counter()
        json_server.serve_columnar(fleet_batch)
        json_warm_seconds = time.perf_counter() - start
        json_server.close()

        arena_ttfa, arena_actions, arena_server = fleet_cold(True)
        start = time.perf_counter()
        arena_server.serve_columnar(fleet_batch)
        arena_warm_seconds = time.perf_counter() - start
        arena_compiles = arena_server.stats.compile_count
        arena_hits_single = arena_server.stats.arena_hits
        arena_server.close()

        # Per-policy cold TTFA: a fresh server answers one building's first
        # request (construction included — that is what "cold" costs).
        probe_ids = [policy_ids[i] for i in
                     np.linspace(0, args.policies - 1, sample).astype(int)]
        per_policy = {}
        for mode, arena_flag in (("json", False), ("arena", True)):
            seconds = []
            for policy_id in probe_ids:
                row = PolicyRequestBatch(
                    policy_ids=np.array([policy_id]), observations=observations[:1]
                )
                start = time.perf_counter()
                server = PolicyServer(store=store, cache_size=2, arena=arena_flag)
                server.serve_columnar(row)
                seconds.append(time.perf_counter() - start)
                server.close()
            per_policy[mode] = float(np.median(seconds))

        # Resident growth of warming the whole fleet, at one fresh process vs
        # a supervised worker fleet mapping the same arena file.  Both sides
        # read their baseline in a fresh process (same lifecycle as a shard
        # worker) *after* a full-size warm-up batch routed over a handful of
        # covering policies: that parks construction, arena metadata, ring
        # residency and first-serve allocator growth — fixed costs that exist
        # for the JSON fleet too — in the baseline, so the deltas measure
        # what warming the remaining ~``--policies`` handles costs, which is
        # the store's (shared-pages) contribution.
        import multiprocessing

        from repro.serving import shard_for_policy

        cover: Dict[int, str] = {}
        for policy_id in policy_ids:
            cover.setdefault(shard_for_policy(policy_id, args.shards), policy_id)
            if len(cover) == args.shards:
                break

        def warmup_ids(assign) -> List[str]:
            return [assign(pid) for pid in policy_ids]

        memory_metric: Optional[str] = None
        memory_delta_1: Optional[int] = None
        mp = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        parent_end, child_end = mp.Pipe(duplex=False)
        probe = mp.Process(
            target=_store_cold_memory_probe,
            args=(
                scratch,
                warmup_ids(lambda pid: policy_ids[0]),
                list(policy_ids),
                observations,
                args.policies + 1,
                child_end,
            ),
        )
        probe.start()
        child_end.close()
        if parent_end.poll(300):
            before, after, memory_metric = parent_end.recv()
            if before is not None and after is not None:
                memory_delta_1 = after - before
        parent_end.close()
        probe.join()

        memory_delta_n: Optional[int] = None
        with ShardedPolicyServer(
            store=store, num_shards=args.shards, cache_size=8, arena=True
        ) as fleet:
            # Same-size warm-up, one covering policy per shard: every worker
            # serves its full row share once before the baseline read.
            fleet.serve_columnar(
                PolicyRequestBatch(
                    policy_ids=np.array(
                        warmup_ids(
                            lambda pid: cover.get(
                                shard_for_policy(pid, args.shards), pid
                            )
                        )
                    ),
                    observations=observations,
                )
            )
            pids = [
                fleet.supervisor.state(index).process.pid
                for index in range(args.shards)
            ]
            baseline = [_process_memory_kb(pid)[0] for pid in pids]
            fleet.serve_columnar(fleet_batch)
            warmed = [_process_memory_kb(pid)[0] for pid in pids]
            if all(b is not None for b in baseline) and all(w is not None for w in warmed):
                memory_delta_n = sum(w - b for b, w in zip(baseline, warmed))
            sharded_actions = fleet.serve_columnar(fleet_batch).action_indices

            # Supervised recovery: the respawned worker reopens the mapping —
            # no JSON parse, no recompile, no lost requests.
            fleet.supervisor.state(0).process.kill()
            recovered = fleet.serve_columnar(fleet_batch).action_indices
            stats = fleet.stats()

    growth = (
        memory_delta_n / memory_delta_1
        if memory_delta_1 and memory_delta_n is not None
        else None
    )
    return {
        "benchmark": "store-cold",
        "policies": args.policies,
        "shards": args.shards,
        "cpu_count": os.cpu_count(),
        "arena_bytes": arena_bytes,
        "generate_seconds": generate_seconds,
        "pack_seconds": pack_seconds,
        "cold_ttfa_json_seconds": json_ttfa,
        "cold_ttfa_arena_seconds": arena_ttfa,
        "cold_ttfa_speedup": json_ttfa / max(arena_ttfa, 1e-12),
        "per_policy_cold_json_seconds": per_policy["json"],
        "per_policy_cold_arena_seconds": per_policy["arena"],
        "warm_fleet_json_seconds": json_warm_seconds,
        "warm_fleet_arena_seconds": arena_warm_seconds,
        "actions_identical": bool(
            np.array_equal(json_actions, arena_actions)
            and np.array_equal(json_actions, sharded_actions)
            and np.array_equal(json_actions, recovered)
        ),
        "arena_compile_count": arena_compiles,
        "arena_hits": arena_hits_single,
        "memory_metric": memory_metric,
        "memory_delta_1_shard_kb": memory_delta_1,
        "memory_delta_n_shards_kb": memory_delta_n,
        "memory_growth_ratio": growth,
        "restart": {
            "compile_count": stats["compile_count"],
            "arena_hits": stats["arena_hits"],
            "lost_requests": stats["fleet"]["lost_requests"],
            "restarts": stats["supervisor"]["restarts"],
        },
    }


def _bench_fleet(args: argparse.Namespace) -> Dict:
    """Closed-loop fleet benchmark: tick throughput plus the rollout floors.

    Runs the full fleet loop twice against a scratch store, auditing drift
    against the incumbent artifact (the deterministic reference-tree oracle;
    the online-MPC teacher is the ``repro fleet --drift-teacher mpc`` path):

    * **healthy phase** — a bit-identical clone of the incumbent is canaried;
      on multi-shard runs its shard is killed mid-canary.  The candidate must
      *promote* with zero lost ticks — this phase also provides the
      throughput/latency numbers (tick p50/p99, ticks/s).
    * **corrupted phase** — a clone with every leaf forced to its most
      aggressive action is canaried.  The drift detector must alarm and
      *roll back* before the canary window closes; the alarm latency (ticks
      from canary start to first alarm) is recorded.

    CI floors gate on: zero lost ticks in both phases, ``promoted`` in the
    healthy phase and ``rolled_back`` + ``drift_alarm_fired`` in the
    corrupted one.
    """
    import os
    import tempfile

    from repro.core.tree_policy import TreePolicy
    from repro.fleet import (
        DriftDetector,
        FleetGroup,
        FleetLoop,
        RolloutManager,
        ShadowEvaluator,
    )
    from repro.serving import Fault, ShardedPolicyServer, shard_for_policy
    from repro.store import PolicyStore

    if args.buildings <= 0:
        raise CLIError("--buildings must be positive")
    if args.ticks <= 0:
        raise CLIError("--ticks must be positive")
    if args.shards < 1:
        raise CLIError("--shards must be at least 1")
    scenario = f"{args.climate}/{args.season}"
    min_canary_ticks = max(4, args.ticks // 4)
    kill_tick = args.ticks // 8 if args.shards >= 2 else None
    timeout = args.timeout if args.timeout is not None else 10.0

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as scratch:
        from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
        from repro.weather.climates import get_climate

        store = PolicyStore(scratch)
        city = _resolve(get_climate, args.climate).name
        overrides: Dict = {"city": city, "seed": args.seed, "season": args.season}
        if args.decision_data is not None:
            overrides["num_decision_data"] = args.decision_data
        pipeline_config = _resolve(PipelineConfig.tiny, **overrides)
        result = VerifiedPolicyPipeline(pipeline_config, store=store).run()
        incumbent = result.store_key
        incumbent_policy = result.policy
        # The drift oracle is the verified incumbent artifact itself: at
        # CI/bench scale the tiny MPC teacher's labels are noise-dominated on
        # near-tie (unoccupied) states, so its baseline-relative excess cannot
        # discriminate; the reference tree makes the corrupted-candidate alarm
        # a deterministic floor.  `repro fleet --drift-teacher mpc` runs the
        # faithful online-MPC audit.
        from repro.fleet import TreePolicyTeacher

        teacher = TreePolicyTeacher(incumbent_policy)

        def run_phase(candidate_policy, candidate_id: str, inject_kill) -> Dict:
            group = _resolve(
                FleetGroup.from_scenario,
                scenario,
                policy_id=incumbent,
                num_buildings=args.buildings,
                base_seed=args.seed,
                days=1,
            )
            env_config = group.env.environments[0].config
            rollout = RolloutManager(
                incumbent,
                candidate_id,
                canary_fraction=0.25,
                min_canary_ticks=min_canary_ticks,
            )
            shadow = ShadowEvaluator(
                env_config.reward.comfort.lower,
                env_config.reward.comfort.upper,
                *env_config.actions.off_setpoints(),
                window=16,
            )
            # The alarm needs headroom to fire *inside* the canary window:
            # min_ticks must undercut min_canary_ticks or the shadow gate
            # always wins the race.
            drift = DriftDetector(
                teacher,
                sample_size=24,
                window=16,
                threshold=0.3,
                min_ticks=max(2, min(8, min_canary_ticks - 1)),
                baseline_policy_id=incumbent,
                seed=args.seed + 7,
            )
            server = ShardedPolicyServer(
                store=store,
                num_shards=args.shards,
                cache_size=8,
                timeout=timeout,
                retries=args.retries,
                degraded=args.degraded,
            )
            try:
                loop = FleetLoop(
                    server, [group], rollout=rollout, shadow=shadow, drift=drift
                )
                server.register(candidate_id, candidate_policy)
                rollout.begin_canary(0)
                for tick in range(args.ticks):
                    if inject_kill is not None and tick == inject_kill:
                        server.inject_fault(
                            Fault(
                                kind="kill",
                                shard=shard_for_policy(candidate_id, args.shards),
                            )
                        )
                    loop.tick()
                stats = server.stats()
            finally:
                server.close()
            report = loop.report()
            first_alarm = drift.first_alarm_tick(candidate_id)
            report["drift_alarm_fired"] = first_alarm is not None
            report["drift_alarm_latency_ticks"] = (
                first_alarm + 1 if first_alarm is not None else None
            )
            report["restarts"] = stats.get("supervisor", {}).get("restarts", 0)
            return report

        healthy = run_phase(
            TreePolicy.from_dict(incumbent_policy.to_dict()),
            "candidate-healthy",
            kill_tick,
        )
        corrupted = run_phase(
            _corrupted_clone(incumbent_policy), "candidate-corrupted", None
        )

    tick_latency = healthy["tick_latency_seconds"]
    serve_latency = healthy["serve_latency_seconds"]
    return {
        "benchmark": "fleet",
        "buildings": args.buildings,
        "ticks": args.ticks,
        "shards": args.shards,
        "cpu_count": os.cpu_count(),
        "canary_fraction": 0.25,
        "min_canary_ticks": min_canary_ticks,
        "kill_tick": kill_tick,
        "ticks_per_second": healthy["ticks_per_second"],
        "building_ticks_per_second": healthy["building_ticks_per_second"],
        "tick_latency_p50_ms": tick_latency["p50"] * 1e3,
        "tick_latency_p99_ms": tick_latency["p99"] * 1e3,
        "serve_latency_p50_ms": serve_latency["p50"] * 1e3,
        "serve_latency_p99_ms": serve_latency["p99"] * 1e3,
        "promoted": healthy["rollout"]["state"] == "promoted",
        "rolled_back": corrupted["rollout"]["state"] == "rolled_back",
        "drift_alarm_fired": corrupted["drift_alarm_fired"],
        "drift_alarm_latency_ticks": corrupted["drift_alarm_latency_ticks"],
        "lost_ticks": healthy["telemetry"]["lost_ticks"]
        + corrupted["telemetry"]["lost_ticks"],
        "fallback_ticks": healthy["telemetry"]["fallback_ticks"]
        + corrupted["telemetry"]["fallback_ticks"],
        "restarts": healthy["restarts"] + corrupted["restarts"],
    }


#: Agents rowed in the robustness table by default: the MPC teacher, the
#: distilled tree and every classical baseline.
_ROBUSTNESS_AGENTS = ("mbrl", "dt", "rule_based", "hysteresis", "pid", "ema")

#: Fault classes columned in the robustness table by default (a subset of
#: :data:`repro.env.disturbances.DISTURBANCES` that keeps the quick bench
#: quick; ``--faults`` overrides).
_ROBUSTNESS_FAULTS = (
    "clean",
    "sensor_noise",
    "sensor_dropout",
    "stuck_damper",
    "weak_hvac",
    "short_cycle",
    "occupancy_surprise",
    "demand_response",
    "heat_wave",
)


def _bench_robustness(args: argparse.Namespace) -> Dict:
    """Comfort-violation/energy table of every agent under each fault class.

    Runs the full agent × disturbance grid on one scenario with per-episode
    seeds from the shared seed ladder, so the table is deterministic for a
    given (scenario, seed, days, episodes) tuple — the committed
    ``BENCH_robustness.json`` and the golden regression test both rely on
    that.  The model-based agents run deliberately tiny configurations (the
    point is the *relative* degradation under faults, not absolute teacher
    quality).
    """
    from repro.agents.registry import canonical_name
    from repro.env.disturbances import get_disturbance
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.scenarios import ScenarioSpec

    agents = [
        _resolve(canonical_name, name.strip())
        for name in (args.robust_agents.split(",") if args.robust_agents else _ROBUSTNESS_AGENTS)
        if name.strip()
    ]
    faults = [
        name.strip()
        for name in (args.faults.split(",") if args.faults else _ROBUSTNESS_FAULTS)
        if name.strip()
    ]
    for fault in faults:
        _resolve(get_disturbance, fault)  # validates early, before any run

    # Tiny model-based configurations: fast enough for CI's quick bench while
    # still exercising the full plan/act loop under every fault.
    agent_configs: Dict[str, Dict] = {
        "mbrl": {
            "hidden_sizes": (16, 16),
            "training_epochs": 4,
            "training_days": 1,
            "num_samples": 64,
            "horizon": 5,
        },
        "dt": {"pipeline": {}},
    }

    rows: List[Dict] = []
    for fault in faults:
        scenario = ScenarioSpec.from_name(
            "/".join((args.climate, args.season, "office", fault)), days=args.days
        )
        runner = ExperimentRunner(
            scenario,
            episodes=args.episodes,
            base_seed=args.seed,
            backend=args.backend,
            batch_size=args.batch_size,
            workers=args.workers,
        )
        for agent in agents:
            result = runner.run(agent, agent_config=agent_configs.get(agent, {}))
            rows.append(
                {
                    "agent": agent,
                    "fault": fault,
                    "mean_total_reward": result.mean_total_reward,
                    "mean_energy_kwh": result.mean_energy_kwh,
                    "mean_comfort_violation_rate": result.mean_comfort_violation_rate,
                }
            )

    by_cell = {(row["agent"], row["fault"]): row for row in rows}
    gaps = {
        fault: by_cell[("dt", fault)]["mean_comfort_violation_rate"]
        - by_cell[("mbrl", fault)]["mean_comfort_violation_rate"]
        for fault in faults
        if ("dt", fault) in by_cell and ("mbrl", fault) in by_cell
    }
    return {
        "benchmark": "robustness",
        "scenario": "/".join((args.climate, args.season, "office")),
        "days": args.days,
        "episodes": args.episodes,
        "seed": args.seed,
        "backend": args.backend,
        "agents": agents,
        "faults": faults,
        "rows": rows,
        "dt_vs_teacher_comfort_gap": gaps,
    }


_BENCH_TARGETS = {
    "rollout": _bench_rollout,
    "distill": _bench_distill,
    "serve": _bench_serve,
    "serve-columnar": _bench_serve_columnar,
    "serve-sharded": _bench_serve_sharded,
    "serve-faults": _bench_serve_faults,
    "store-cold": _bench_store_cold,
    "fleet": _bench_fleet,
    "robustness": _bench_robustness,
}


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint`` — run reprolint with the shared argument schema."""
    return run_lint_command(args)


def cmd_bench(args: argparse.Namespace) -> int:
    payload = to_jsonable(_BENCH_TARGETS[args.target](args))
    print(json.dumps(payload, indent=2))
    if args.output:
        save_json(payload, args.output)
        print(f"Wrote {args.output}")
    return 0


# -------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verified decision-tree HVAC policies: unified experiment CLI.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a registered agent on a scenario")
    run.add_argument("--agent", default="rule_based", help="registered agent name or alias")
    run.add_argument("--climate", default="pittsburgh", help="city name or climate alias")
    run.add_argument("--season", default="winter", choices=["winter", "summer"])
    run.add_argument("--building", default="office", help="building variant")
    run.add_argument(
        "--disturbance",
        default=None,
        help="fault profile applied to every episode (see `repro scenarios --disturbances`)",
    )
    run.add_argument("--days", type=int, default=7, help="episode length in days")
    run.add_argument("--steps", type=int, default=None, help="cap on steps per episode")
    run.add_argument("--episodes", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--backend",
        default="serial",
        choices=["serial", "batched", "process"],
        help="episode execution backend (identical results, different speed)",
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="episodes stepped together per chunk (batched backend)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (process backend; default: CPU count)",
    )
    run.add_argument(
        "--agent-arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra agent constructor option (repeatable; values parsed as JSON)",
    )
    run.add_argument("--output", default=None, help="write the full result JSON here")
    run.set_defaults(func=cmd_run)

    extract = sub.add_parser("extract", help="run the extract-verify-deploy pipeline")
    extract.add_argument("--climate", default="pittsburgh")
    extract.add_argument("--season", default="winter", choices=["winter", "summer"])
    extract.add_argument("--seed", type=int, default=0)
    extract.add_argument("--preset", default="paper", choices=["paper", "tiny"])
    extract.add_argument("--decision-data", type=int, default=None)
    extract.add_argument(
        "--dtype",
        default=None,
        choices=["float64", "float32"],
        help="dynamics-model inference dtype (float32: the BLAS fast path)",
    )
    extract.add_argument("--print-tree", action="store_true")
    extract.add_argument("--max-print-depth", type=int, default=4)
    extract.add_argument("--save", default=None, help="write the verified policy JSON here")
    extract.add_argument(
        "--store",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="persist to (and resolve from) the policy store; optional custom root",
    )
    extract.add_argument(
        "--refresh",
        action="store_true",
        help="force re-extraction even when the store already has this configuration",
    )
    extract.set_defaults(func=cmd_extract)

    agents = sub.add_parser("agents", help="list registered agents")
    agents.set_defaults(func=cmd_agents)

    scenarios = sub.add_parser("scenarios", help="list the scenario grid")
    scenarios.add_argument("--climate", default=None)
    scenarios.add_argument("--season", default=None, choices=["winter", "summer"])
    scenarios.add_argument(
        "--disturbances",
        action="store_true",
        help="list the named disturbance profiles instead of the scenario grid",
    )
    scenarios.set_defaults(func=cmd_scenarios)

    climates = sub.add_parser("climates", help="list climate profiles and aliases")
    climates.set_defaults(func=cmd_climates)

    policies = sub.add_parser("policies", help="list/prune/verify the policy store")
    policies.add_argument("--store", default=None, metavar="PATH", help="store root (default: $REPRO_POLICY_STORE or ~/.cache/repro/policy-store)")
    policies.add_argument("--climate", default=None, help="filter by city")
    policies.add_argument("--season", default=None, choices=["winter", "summer"])
    policies.add_argument(
        "--prune-keep",
        type=int,
        default=None,
        metavar="N",
        help="delete all but the N newest matching artifacts",
    )
    policies.add_argument("--verify", action="store_true", help="integrity-check every artifact")
    policies.add_argument(
        "--pack",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help=(
            "pack the matching policies into one mmap'able arena "
            "(default target: <store>/policies.arena)"
        ),
    )
    policies.set_defaults(func=cmd_policies)

    serve = sub.add_parser(
        "serve", help="drive the compiled policy server with a synthetic request stream"
    )
    serve.add_argument("--store", default=None, metavar="PATH", help="policy store root")
    serve.add_argument("--requests", type=int, default=10000, help="total requests to serve")
    serve.add_argument("--batch-size", type=int, default=256, help="requests per server batch")
    serve.add_argument(
        "--columnar",
        action="store_true",
        help="drive the columnar front door (PolicyRequestBatch; arrays in, arrays out)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "worker processes for the sharded server (>1 spawns a "
            "ShardedPolicyServer over the shared-memory transport; implies columnar)"
        ),
    )
    serve.add_argument("--cache-size", type=int, default=8, help="compiled-policy LRU size (per shard)")
    serve.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="seconds to wait on a shard per attempt before restarting it",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-dispatch attempts for a failed shard slice (after restart)",
    )
    serve.add_argument(
        "--degraded",
        default="fail",
        choices=["fail", "fallback"],
        help=(
            "when the retry budget is exhausted: 'fail' raises, 'fallback' "
            "serves the slice with a parent-side in-process server"
        ),
    )
    serve.add_argument("--climate", default="pittsburgh", help="city for auto-extraction")
    serve.add_argument("--season", default="winter", choices=["winter", "summer"])
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--decision-data", type=int, default=None, help="decision-dataset size for auto-extraction"
    )
    serve.add_argument(
        "--arena",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help=(
            "serve from the packed mmap arena: bare flag requires "
            "<store>/policies.arena, PATH opens that file (default: "
            "auto-detect when present)"
        ),
    )
    serve.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the raw server counters (fleet/supervisor) as JSON here",
    )
    serve.add_argument("--output", default=None, help="write the throughput summary JSON here")
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="run the closed-loop simulated fleet (canary/shadow/drift rollouts)",
        description="Drive a fleet of simulated buildings through the serving "
        "stack tick by tick: observations out, actions back, telemetry "
        "accumulated — with optional canary rollout of a candidate policy "
        "gated on shadow evaluation and teacher-drift detection.",
    )
    fleet.add_argument("--buildings", type=int, default=256, help="total simulated buildings")
    fleet.add_argument("--ticks", type=int, default=48, help="control ticks to run")
    fleet.add_argument(
        "--scenarios",
        default="pittsburgh/winter",
        help="comma-separated scenario names (city/season); buildings are split across them",
    )
    fleet.add_argument("--days", type=int, default=None, help="episode length per building")
    fleet.add_argument(
        "--distinct",
        type=int,
        default=16,
        help="distinct disturbance traces per group (tiled across the buildings)",
    )
    fleet.add_argument(
        "--shards", type=int, default=1, help="serving worker processes (1 = in-process)"
    )
    fleet.add_argument("--cache-size", type=int, default=8, help="compiled-policy LRU size (per shard)")
    fleet.add_argument("--timeout", type=float, default=10.0, help="per-attempt shard timeout seconds")
    fleet.add_argument("--retries", type=int, default=2, help="re-dispatch attempts per failed slice")
    fleet.add_argument(
        "--degraded",
        default="fail",
        choices=["fail", "fallback"],
        help="server behaviour when the retry budget is exhausted",
    )
    fleet.add_argument(
        "--canary",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="canary a candidate policy on this fraction of buildings (0 disables)",
    )
    fleet.add_argument(
        "--corrupt-candidate",
        action="store_true",
        help="canary a deliberately broken candidate (exercises drift alarm + rollback)",
    )
    fleet.add_argument(
        "--min-canary-ticks",
        type=int,
        default=16,
        help="healthy canary ticks required before promotion",
    )
    fleet.add_argument(
        "--drift-teacher",
        default="tree",
        choices=["tree", "mpc"],
        help="drift oracle: the incumbent tree (cheap) or the MPC optimizer (faithful)",
    )
    fleet.add_argument(
        "--drift-sample", type=int, default=32, help="fleet rows audited per tick"
    )
    fleet.add_argument(
        "--drift-threshold",
        type=float,
        default=0.25,
        help="excess teacher-disagreement (over the incumbent) that trips the alarm",
    )
    fleet.add_argument(
        "--window", type=int, default=16, help="shadow/drift sliding window in ticks"
    )
    fleet.add_argument(
        "--inject-kill",
        type=int,
        default=None,
        metavar="TICK",
        help="kill the candidate's shard at this tick (needs --shards >= 2)",
    )
    fleet.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the hysteresis degraded mode (failed ticks become lost ticks)",
    )
    fleet.add_argument("--store", default=None, metavar="PATH", help="policy store root")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--decision-data", type=int, default=None, help="decision-dataset size for auto-extraction"
    )
    fleet.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the raw server counters (fleet/supervisor) as JSON here",
    )
    fleet.add_argument("--output", default=None, help="write the full fleet report JSON here")
    fleet.set_defaults(func=cmd_fleet)

    bench = sub.add_parser(
        "bench",
        help="time rollouts, MC distillation or policy serving, write a benchmark JSON",
    )
    bench.add_argument(
        "--target",
        default="rollout",
        choices=[
            "rollout",
            "distill",
            "serve",
            "serve-columnar",
            "serve-sharded",
            "serve-faults",
            "store-cold",
            "fleet",
            "robustness",
        ],
        help=(
            "what to benchmark: rollouts, decision-dataset distillation, policy "
            "serving, the columnar vs legacy serving front door, the "
            "multi-process sharded server vs single-process columnar, "
            "fleet recovery under injected kill/hang faults, the packed "
            "arena vs per-file JSON cold load, the "
            "closed-loop fleet (throughput + canary/rollback floors), or the "
            "agent × fault robustness table (comfort/energy per disturbance)"
        ),
    )
    bench.add_argument("--agent", default="rule_based")
    bench.add_argument("--climate", default="pittsburgh")
    bench.add_argument("--season", default="winter", choices=["winter", "summer"])
    bench.add_argument("--days", type=int, default=1)
    bench.add_argument("--episodes", type=int, default=3)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--backend", default="serial", choices=["serial", "batched", "process"]
    )
    bench.add_argument("--batch-size", type=int, default=None)
    bench.add_argument("--workers", type=int, default=None)
    bench.add_argument(
        "--entries", type=int, default=96, help="decision-dataset entries (distill target)"
    )
    bench.add_argument(
        "--samples", type=int, default=64, help="RS candidate sequences (distill target)"
    )
    bench.add_argument(
        "--mc-runs", type=int, default=3, help="Monte-Carlo runs per entry (distill target)"
    )
    bench.add_argument(
        "--horizon", type=int, default=5, help="planning horizon (distill target)"
    )
    bench.add_argument(
        "--rows", type=int, default=20000, help="request batch rows (serve target)"
    )
    bench.add_argument(
        "--policies",
        type=int,
        default=10000,
        help="synthetic stored policies (store-cold target)",
    )
    bench.add_argument(
        "--buildings", type=int, default=512, help="simulated buildings (fleet target)"
    )
    bench.add_argument(
        "--ticks", type=int, default=48, help="control ticks per phase (fleet target)"
    )
    bench.add_argument(
        "--decision-data",
        type=int,
        default=None,
        help="decision-dataset size for auto-extraction (fleet target)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=4,
        help="worker processes (serve-sharded / serve-faults targets)",
    )
    bench.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-attempt shard timeout in seconds (serve-faults; default 1.0)",
    )
    bench.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-dispatch attempts for a failed slice (serve-faults target)",
    )
    bench.add_argument(
        "--degraded",
        default="fail",
        choices=["fail", "fallback"],
        help="exhausted-budget policy under faults (serve-faults target)",
    )
    bench.add_argument(
        "--faults",
        default=None,
        metavar="A,B,...",
        help="comma-separated fault profiles (robustness target; default: the standard set)",
    )
    bench.add_argument(
        "--robust-agents",
        default=None,
        metavar="A,B,...",
        help="comma-separated agent names (robustness target; default: teacher, dt and classical baselines)",
    )
    bench.add_argument("--output", default=None)
    bench.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo's AST-based invariant linter",
        description="Static analysis of the repro tree against its own "
        "invariants: dtype policy, zero-copy transport, schema contracts, "
        "resource ownership and RNG discipline.  Exits non-zero on any "
        "finding not acknowledged by the committed baseline.",
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        # User-input problems (bad agent/climate/scenario names, invalid
        # values) carry a helpful listing; show it without the traceback.
        # Genuine internal failures still propagate with a full traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
