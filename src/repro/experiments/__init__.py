"""The unified experiment subsystem.

Three layers turn the library into a runnable system:

* :mod:`repro.experiments.scenarios` — declarative climate × building × season
  scenario grid (:class:`ScenarioSpec`),
* :mod:`repro.experiments.runner` — the registry-driven
  :class:`ExperimentRunner` rolling any registered agent over multi-episode
  batches with per-episode seeds,
* :mod:`repro.experiments.cli` — the ``python -m repro`` command line.
"""

from repro.experiments.scenarios import (
    BUILDINGS,
    SEASONS,
    BuildingSpec,
    ScenarioSpec,
    SeasonSpec,
    available_scenarios,
    get_scenario,
    scenario_grid,
)
from repro.experiments.runner import (
    EpisodeResult,
    ExperimentResult,
    ExperimentRunner,
    run_episode,
)

__all__ = [
    "BUILDINGS",
    "SEASONS",
    "BuildingSpec",
    "ScenarioSpec",
    "SeasonSpec",
    "available_scenarios",
    "get_scenario",
    "scenario_grid",
    "EpisodeResult",
    "ExperimentResult",
    "ExperimentRunner",
    "run_episode",
]
