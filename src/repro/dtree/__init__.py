"""From-scratch CART decision trees (scikit-learn substitute).

The paper fits a classification decision tree (CART, unbounded depth, default
split threshold) that maps the concatenated ``(s, d)`` input vector to a
setpoint decision.  Beyond ``fit``/``predict``, the verification algorithm
(Algorithm 1 of the paper) needs to enumerate every leaf, recover the unique
root-to-leaf decision path and intersect the axis-aligned "boxes" implied by
the comparisons along that path; :mod:`repro.dtree.paths` provides exactly
that, and :mod:`repro.dtree.export` renders trees as human-readable rules.
"""

from repro.dtree.node import TreeNode
from repro.dtree.splitter import SplitCandidate, best_split, gini_impurity, entropy_impurity, mse_impurity
from repro.dtree.cart import DecisionTreeClassifier, DecisionTreeRegressor
from repro.dtree.paths import Box, LeafRegion, enumerate_leaf_regions, path_to_leaf
from repro.dtree.export import tree_to_text, tree_to_dict, tree_from_dict

__all__ = [
    "TreeNode",
    "SplitCandidate",
    "best_split",
    "gini_impurity",
    "entropy_impurity",
    "mse_impurity",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Box",
    "LeafRegion",
    "enumerate_leaf_regions",
    "path_to_leaf",
    "tree_to_text",
    "tree_to_dict",
    "tree_from_dict",
]
