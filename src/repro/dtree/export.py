"""Human-readable and JSON export of decision trees.

Interpretability is one of the paper's headline properties: a facilities
manager should be able to read the policy.  ``tree_to_text`` renders the tree
as nested IF/ELSE rules with physical feature names; ``tree_to_dict`` /
``tree_from_dict`` round-trip trees through plain dictionaries for JSON
persistence.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.dtree.cart import DecisionTreeClassifier, DecisionTreeRegressor, _BaseDecisionTree
from repro.dtree.node import TreeNode

#: Version of the ``tree_to_dict`` on-disk format.  Bump whenever the node or
#: tree dictionary layout changes; ``tree_from_dict`` refuses any other
#: version so persisted artifacts fail loudly instead of mis-deserializing.
TREE_SCHEMA_VERSION = 1


def check_schema_version(data: Dict[str, Any], expected: int, kind: str) -> None:
    """Validate the ``schema_version`` of a serialised payload.

    Payloads written before versioning was introduced carry no field and are
    grandfathered in as version 1; any explicit mismatch is an error.
    """
    version = data.get("schema_version", 1)
    if version != expected:
        raise ValueError(
            f"Unsupported {kind} schema_version {version!r}; this build reads "
            f"version {expected}. The artifact was written by an incompatible "
            "release — re-extract the policy instead of loading it."
        )


def tree_to_text(
    tree: _BaseDecisionTree,
    feature_names: Optional[Sequence[str]] = None,
    value_formatter=None,
    max_depth: Optional[int] = None,
) -> str:
    """Render a fitted tree as indented IF/ELSE rules."""
    if tree.root is None:
        raise RuntimeError("Cannot export an unfitted tree")
    names = feature_names or tree.feature_names
    formatter = value_formatter or (lambda v: repr(v))
    lines = []

    def _feature_name(index: int) -> str:
        if names is not None and index < len(names):
            return names[index]
        return f"x[{index}]"

    def _walk(node: TreeNode, indent: int) -> None:
        prefix = "  " * indent
        if node.is_leaf or (max_depth is not None and node.depth >= max_depth):
            marker = " [corrected]" if node.corrected else ""
            lines.append(f"{prefix}return {formatter(node.prediction)}{marker}")
            return
        lines.append(f"{prefix}if {_feature_name(node.feature_index)} <= {node.threshold:.3f}:")
        _walk(node.left, indent + 1)
        lines.append(f"{prefix}else:")
        _walk(node.right, indent + 1)

    _walk(tree.root, 0)
    return "\n".join(lines)


def _node_to_dict(node: TreeNode) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "node_id": node.node_id,
        "num_samples": node.num_samples,
        "impurity": node.impurity,
        "depth": node.depth,
        "corrected": node.corrected,
    }
    if node.is_leaf:
        data["kind"] = "leaf"
        data["prediction"] = node.prediction
        data["class_counts"] = {str(k): int(v) for k, v in node.class_counts.items()}
    else:
        data["kind"] = "decision"
        data["feature_index"] = node.feature_index
        data["threshold"] = node.threshold
        data["prediction"] = node.prediction
        data["left"] = _node_to_dict(node.left)
        data["right"] = _node_to_dict(node.right)
    return data


def _node_from_dict(data: Dict[str, Any]) -> TreeNode:
    node = TreeNode(
        node_id=int(data["node_id"]),
        num_samples=int(data.get("num_samples", 0)),
        impurity=float(data.get("impurity", 0.0)),
        depth=int(data.get("depth", 0)),
        prediction=data.get("prediction"),
    )
    node.corrected = bool(data.get("corrected", False))
    if data["kind"] == "decision":
        node.feature_index = int(data["feature_index"])
        node.threshold = float(data["threshold"])
        node.left = _node_from_dict(data["left"])
        node.right = _node_from_dict(data["right"])
    else:
        node.class_counts = {k: int(v) for k, v in data.get("class_counts", {}).items()}
    return node


def tree_to_dict(tree: _BaseDecisionTree) -> Dict[str, Any]:
    """Serialise a fitted tree to a JSON-friendly dictionary."""
    if tree.root is None:
        raise RuntimeError("Cannot export an unfitted tree")
    return {
        "schema_version": TREE_SCHEMA_VERSION,
        "tree_type": type(tree).__name__,
        "criterion": tree.criterion,
        "max_depth": tree.max_depth,
        "min_samples_split": tree.min_samples_split,
        "min_samples_leaf": tree.min_samples_leaf,
        "n_features": tree.n_features,
        "feature_names": tree.feature_names,
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(data: Dict[str, Any]) -> _BaseDecisionTree:
    """Rebuild a tree previously serialised with :func:`tree_to_dict`."""
    check_schema_version(data, TREE_SCHEMA_VERSION, "tree")
    tree_type = data.get("tree_type", "DecisionTreeClassifier")
    common = dict(
        max_depth=data.get("max_depth"),
        min_samples_split=int(data.get("min_samples_split", 2)),
        min_samples_leaf=int(data.get("min_samples_leaf", 1)),
        feature_names=data.get("feature_names"),
    )
    if tree_type == "DecisionTreeRegressor":
        tree: _BaseDecisionTree = DecisionTreeRegressor(**common)
    else:
        tree = DecisionTreeClassifier(criterion=data.get("criterion", "gini"), **common)
    tree.n_features = data.get("n_features")
    tree.root = _node_from_dict(data["root"])
    tree.root.validate()
    return tree
