"""Decision-tree node structure.

A tree is a binary directed acyclic graph of :class:`TreeNode` objects.  A
decision (internal) node holds a feature index and threshold and routes inputs
with ``x[feature] <= threshold`` to the left child, others to the right child.
A leaf node holds a prediction (a class label for classification trees, a float
for regression trees).  Leaf predictions are mutable on purpose: the paper's
formal verification *corrects* failing leaves by editing their setpoint in
place.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

import numpy as np


class TreeNode:
    """A node of a binary decision tree."""

    __slots__ = (
        "node_id",
        "feature_index",
        "threshold",
        "left",
        "right",
        "prediction",
        "class_counts",
        "num_samples",
        "impurity",
        "depth",
        "corrected",
    )

    def __init__(
        self,
        node_id: int = 0,
        feature_index: Optional[int] = None,
        threshold: Optional[float] = None,
        left: Optional["TreeNode"] = None,
        right: Optional["TreeNode"] = None,
        prediction: Any = None,
        class_counts: Optional[Dict[Any, int]] = None,
        num_samples: int = 0,
        impurity: float = 0.0,
        depth: int = 0,
    ):
        self.node_id = node_id
        self.feature_index = feature_index
        self.threshold = threshold
        self.left = left
        self.right = right
        self.prediction = prediction
        self.class_counts = class_counts or {}
        self.num_samples = num_samples
        self.impurity = impurity
        self.depth = depth
        #: Set to True when the verifier edits this leaf's prediction.
        self.corrected = False

    # ------------------------------------------------------------------ kinds
    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def validate(self) -> None:
        """Check structural invariants of the subtree rooted at this node."""
        if self.is_leaf:
            if self.prediction is None:
                raise ValueError(f"Leaf node {self.node_id} has no prediction")
            return
        if self.left is None or self.right is None:
            raise ValueError(f"Decision node {self.node_id} must have two children")
        if self.feature_index is None or self.threshold is None:
            raise ValueError(f"Decision node {self.node_id} must have a feature and threshold")
        self.left.validate()
        self.right.validate()

    # -------------------------------------------------------------- traversal
    def route(self, x: np.ndarray) -> "TreeNode":
        """Return the child an input vector is routed to (decision nodes only)."""
        if self.is_leaf:
            raise RuntimeError("Cannot route from a leaf node")
        return self.left if x[self.feature_index] <= self.threshold else self.right

    def find_leaf(self, x: np.ndarray) -> "TreeNode":
        """Follow the decision path for ``x`` down to a leaf."""
        node = self
        while not node.is_leaf:
            node = node.route(np.asarray(x))
        return node

    def iter_nodes(self) -> Iterator["TreeNode"]:
        """Iterate over all nodes in the subtree (pre-order)."""
        stack: List[TreeNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    def iter_leaves(self) -> Iterator["TreeNode"]:
        """Iterate over all leaf nodes in the subtree."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node

    # ------------------------------------------------------------------ stats
    def count_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def count_leaves(self) -> int:
        return sum(1 for _ in self.iter_leaves())

    def max_depth(self) -> int:
        if self.is_leaf:
            return self.depth
        return max(self.left.max_depth(), self.right.max_depth())

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"TreeNode(leaf id={self.node_id}, prediction={self.prediction!r})"
        return (
            f"TreeNode(id={self.node_id}, feature={self.feature_index}, "
            f"threshold={self.threshold:.4g})"
        )
