"""Split-point search for CART.

For every candidate feature the splitter sorts the samples, scans the midpoints
between consecutive distinct values and scores the induced partition with an
impurity criterion (Gini or entropy for classification, variance/MSE for
regression).  The best candidate over all features is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def gini_impurity(labels: np.ndarray) -> float:
    """Gini impurity of a label array."""
    if len(labels) == 0:
        return 0.0
    _values, counts = np.unique(labels, return_counts=True)
    proportions = counts / counts.sum()
    return float(1.0 - np.sum(proportions**2))


def entropy_impurity(labels: np.ndarray) -> float:
    """Shannon entropy of a label array (bits)."""
    if len(labels) == 0:
        return 0.0
    _values, counts = np.unique(labels, return_counts=True)
    proportions = counts / counts.sum()
    return float(-np.sum(proportions * np.log2(proportions)))


def mse_impurity(values: np.ndarray) -> float:
    """Variance of a target array (the MSE around its mean)."""
    if len(values) == 0:
        return 0.0
    return float(np.var(values))


_CRITERIA = {
    "gini": gini_impurity,
    "entropy": entropy_impurity,
    "mse": mse_impurity,
}


@dataclass(frozen=True)
class SplitCandidate:
    """A candidate split and its quality."""

    feature_index: int
    threshold: float
    impurity_decrease: float
    left_count: int
    right_count: int


def best_split(
    features: np.ndarray,
    targets: np.ndarray,
    criterion: str = "gini",
    min_samples_leaf: int = 1,
    feature_indices: Optional[np.ndarray] = None,
) -> Optional[SplitCandidate]:
    """Find the impurity-minimising axis-aligned split.

    Parameters
    ----------
    features:
        ``(n, d)`` feature matrix.
    targets:
        Length-``n`` labels (classification) or values (regression).
    criterion:
        ``"gini"``, ``"entropy"`` or ``"mse"``.
    min_samples_leaf:
        Minimum number of samples each side of the split must retain.
    feature_indices:
        Optional subset of feature columns to consider.

    Returns
    -------
    The best :class:`SplitCandidate`, or ``None`` if no valid split exists
    (all targets identical, all feature values identical, or too few samples).
    """
    if criterion not in _CRITERIA:
        raise ValueError(f"Unknown criterion {criterion!r}; available: {sorted(_CRITERIA)}")
    impurity_fn = _CRITERIA[criterion]

    features = np.atleast_2d(np.asarray(features, dtype=float))
    targets = np.asarray(targets)
    n, d = features.shape
    if len(targets) != n:
        raise ValueError("features and targets must have the same number of rows")
    if n < 2 * min_samples_leaf:
        return None
    parent_impurity = impurity_fn(targets)
    if parent_impurity <= 1e-12:
        return None

    columns = np.arange(d) if feature_indices is None else np.asarray(feature_indices)
    best: Optional[SplitCandidate] = None

    for feature in columns:
        order = np.argsort(features[:, feature], kind="mergesort")
        sorted_values = features[order, feature]
        sorted_targets = targets[order]
        # Candidate thresholds are midpoints between consecutive distinct values.
        distinct_change = np.nonzero(np.diff(sorted_values) > 1e-12)[0]
        for idx in distinct_change:
            left_count = idx + 1
            right_count = n - left_count
            if left_count < min_samples_leaf or right_count < min_samples_leaf:
                continue
            threshold = 0.5 * (sorted_values[idx] + sorted_values[idx + 1])
            left_impurity = impurity_fn(sorted_targets[:left_count])
            right_impurity = impurity_fn(sorted_targets[left_count:])
            weighted = (left_count * left_impurity + right_count * right_impurity) / n
            decrease = parent_impurity - weighted
            if decrease <= 1e-12:
                continue
            if best is None or decrease > best.impurity_decrease:
                best = SplitCandidate(
                    feature_index=int(feature),
                    threshold=float(threshold),
                    impurity_decrease=float(decrease),
                    left_count=int(left_count),
                    right_count=int(right_count),
                )
    return best
