"""CART decision-tree learners (classification and regression).

The classifier is the policy representation of the paper: it is grown with the
Gini criterion, unbounded depth by default, and the standard CART stopping
rules (pure node, too few samples, no impurity-decreasing split).  Determinism
matters — refitting on the same decision dataset must yield the same tree — so
ties are broken by feature order and the split search is fully deterministic.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.dtree.node import TreeNode
from repro.dtree.splitter import best_split, entropy_impurity, gini_impurity, mse_impurity


class _BaseDecisionTree:
    """Shared fit/predict machinery of the classification and regression trees."""

    def __init__(
        self,
        criterion: str,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        feature_names: Optional[Sequence[str]] = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1 when given")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.feature_names = list(feature_names) if feature_names is not None else None
        self.root: Optional[TreeNode] = None
        self.n_features: Optional[int] = None
        self._next_node_id = 0

    # --------------------------------------------------------------- plumbing
    def _impurity(self, targets: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_prediction(self, targets: np.ndarray) -> Any:
        raise NotImplementedError

    def _leaf_counts(self, targets: np.ndarray) -> dict:
        return {}

    def _new_node_id(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    # -------------------------------------------------------------------- fit
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "_BaseDecisionTree":
        """Grow the tree on a feature matrix and a target vector."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if len(features) != len(targets):
            raise ValueError("features and targets must have the same number of rows")
        if len(features) == 0:
            raise ValueError("Cannot fit a tree on an empty dataset")
        self.n_features = features.shape[1]
        if self.feature_names is not None and len(self.feature_names) != self.n_features:
            raise ValueError("feature_names length must match the number of features")
        self._next_node_id = 0
        self.root = self._grow(features, targets, depth=0)
        self.root.validate()
        return self

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(
            node_id=self._new_node_id(),
            num_samples=len(targets),
            impurity=self._impurity(targets),
            depth=depth,
            prediction=self._leaf_prediction(targets),
            class_counts=self._leaf_counts(targets),
        )
        stop = (
            len(targets) < self.min_samples_split
            or node.impurity <= 1e-12
            or (self.max_depth is not None and depth >= self.max_depth)
        )
        if stop:
            return node
        split = best_split(
            features,
            targets,
            criterion=self.criterion,
            min_samples_leaf=self.min_samples_leaf,
        )
        if split is None or split.impurity_decrease < self.min_impurity_decrease:
            return node
        mask = features[:, split.feature_index] <= split.threshold
        node.feature_index = split.feature_index
        node.threshold = split.threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        # Internal nodes keep their majority prediction for diagnostics, but
        # prediction always happens at leaves.
        return node

    # ---------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if self.root is None:
            raise RuntimeError("This tree has not been fitted yet")

    def predict_one(self, x: np.ndarray) -> Any:
        """Predict for a single input vector."""
        self._check_fitted()
        x = np.asarray(x, dtype=float).ravel()
        if len(x) != self.n_features:
            raise ValueError(f"Expected {self.n_features} features, got {len(x)}")
        return self.root.find_leaf(x).prediction

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict for a batch of input vectors."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return np.array([self.predict_one(row) for row in features])

    def decision_leaf(self, x: np.ndarray) -> TreeNode:
        """Return the leaf node an input is routed to (for decision queries)."""
        self._check_fitted()
        return self.root.find_leaf(np.asarray(x, dtype=float).ravel())

    # ------------------------------------------------------------------ stats
    @property
    def node_count(self) -> int:
        self._check_fitted()
        return self.root.count_nodes()

    @property
    def leaf_count(self) -> int:
        self._check_fitted()
        return self.root.count_leaves()

    @property
    def depth(self) -> int:
        self._check_fitted()
        return self.root.max_depth()

    def leaves(self) -> List[TreeNode]:
        self._check_fitted()
        return list(self.root.iter_leaves())


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classification tree (Gini by default), the paper's policy class."""

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        feature_names: Optional[Sequence[str]] = None,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError("Classification criterion must be 'gini' or 'entropy'")
        super().__init__(
            criterion=criterion,
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            min_impurity_decrease=min_impurity_decrease,
            feature_names=feature_names,
        )
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeClassifier":
        targets = np.asarray(targets)
        self.classes_ = np.unique(targets)
        super().fit(features, targets)
        return self

    def _impurity(self, targets: np.ndarray) -> float:
        return gini_impurity(targets) if self.criterion == "gini" else entropy_impurity(targets)

    def _leaf_prediction(self, targets: np.ndarray) -> Any:
        counts = Counter(targets.tolist())
        # Deterministic tie-break: highest count, then smallest label.
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]

    def _leaf_counts(self, targets: np.ndarray) -> dict:
        return dict(Counter(targets.tolist()))

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Classification accuracy."""
        predictions = self.predict(features)
        targets = np.asarray(targets)
        return float(np.mean(predictions == targets))


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regression tree (variance reduction), used for ablations."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        feature_names: Optional[Sequence[str]] = None,
    ):
        super().__init__(
            criterion="mse",
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            min_impurity_decrease=min_impurity_decrease,
            feature_names=feature_names,
        )

    def _impurity(self, targets: np.ndarray) -> float:
        return mse_impurity(targets.astype(float))

    def _leaf_prediction(self, targets: np.ndarray) -> float:
        return float(np.mean(targets.astype(float)))

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination (R^2)."""
        targets = np.asarray(targets, dtype=float)
        predictions = self.predict(features).astype(float)
        ss_res = float(np.sum((targets - predictions) ** 2))
        ss_tot = float(np.sum((targets - targets.mean()) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot
