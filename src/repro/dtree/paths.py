"""Decision-path and input-box extraction.

Algorithm 1 of the paper relies on the fact that every leaf of the decision
tree handles a unique axis-aligned box of the input space: the intersection of
all the half-spaces implied by the comparisons along the unique root-to-leaf
path.  This module computes those boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dtree.node import TreeNode


@dataclass
class Box:
    """An axis-aligned box ``{x : lower <= x <= upper}`` over the input space.

    Open dimensions use ``-inf``/``+inf``.  The left branch of a decision node
    (``x[f] <= t``) tightens the upper bound; the right branch (``x[f] > t``)
    tightens the lower bound.
    """

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if self.lower.shape != self.upper.shape:
            raise ValueError("lower and upper must have the same shape")

    @staticmethod
    def unbounded(dim: int) -> "Box":
        """The full input space R^dim."""
        return Box(np.full(dim, -np.inf), np.full(dim, np.inf))

    @property
    def dim(self) -> int:
        return int(self.lower.size)

    def copy(self) -> "Box":
        return Box(self.lower.copy(), self.upper.copy())

    def is_empty(self) -> bool:
        """Whether the box contains no points (some lower bound exceeds its upper)."""
        return bool(np.any(self.lower > self.upper))

    def contains(self, x: Sequence[float]) -> bool:
        x = np.asarray(x, dtype=float)
        return bool(np.all(x >= self.lower - 1e-12) and np.all(x <= self.upper + 1e-12))

    def intersect_upper(self, feature: int, threshold: float) -> "Box":
        """Intersect with the half-space ``x[feature] <= threshold``."""
        out = self.copy()
        out.upper[feature] = min(out.upper[feature], threshold)
        return out

    def intersect_lower(self, feature: int, threshold: float) -> "Box":
        """Intersect with the half-space ``x[feature] > threshold``."""
        out = self.copy()
        out.lower[feature] = max(out.lower[feature], threshold)
        return out

    def interval(self, feature: int) -> Tuple[float, float]:
        """The (lower, upper) interval of one input dimension."""
        return float(self.lower[feature]), float(self.upper[feature])

    def intersects_interval(self, feature: int, low: float, high: float) -> bool:
        """Whether the box overlaps ``{x : low <= x[feature] <= high}``."""
        box_low, box_high = self.interval(feature)
        return box_low <= high and low <= box_high

    def subset_of_interval(self, feature: int, low: float, high: float) -> bool:
        """Whether the box projection on ``feature`` is entirely inside [low, high]."""
        box_low, box_high = self.interval(feature)
        return box_low >= low and box_high <= high


@dataclass
class PathStep:
    """One decision along a root-to-leaf path."""

    node: TreeNode
    went_left: bool

    @property
    def feature_index(self) -> int:
        return int(self.node.feature_index)

    @property
    def threshold(self) -> float:
        return float(self.node.threshold)

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        name = (
            feature_names[self.feature_index]
            if feature_names is not None
            else f"x[{self.feature_index}]"
        )
        op = "<=" if self.went_left else ">"
        return f"{name} {op} {self.threshold:.3f}"


@dataclass
class LeafRegion:
    """A leaf node together with its decision path and input box."""

    leaf: TreeNode
    path: List[PathStep] = field(default_factory=list)
    box: Box = None

    @property
    def prediction(self):
        return self.leaf.prediction

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        conditions = " AND ".join(step.describe(feature_names) for step in self.path) or "TRUE"
        return f"IF {conditions} THEN {self.prediction!r}"


def path_to_leaf(root: TreeNode, leaf: TreeNode) -> List[PathStep]:
    """The unique path of decisions from ``root`` to ``leaf``.

    Raises ``ValueError`` if ``leaf`` is not in the subtree of ``root``.
    """

    def _search(node: TreeNode, steps: List[PathStep]) -> Optional[List[PathStep]]:
        if node is leaf:
            return steps
        if node.is_leaf:
            return None
        found = _search(node.left, steps + [PathStep(node, went_left=True)])
        if found is not None:
            return found
        return _search(node.right, steps + [PathStep(node, went_left=False)])

    result = _search(root, [])
    if result is None:
        raise ValueError(f"Leaf {leaf.node_id} is not reachable from node {root.node_id}")
    return result


def enumerate_leaf_regions(root: TreeNode, input_dim: int) -> List[LeafRegion]:
    """Compute the decision path and input box of every leaf under ``root``.

    This is the core data structure behind Algorithm 1 of the paper: the boxes
    partition the input space, and each leaf deterministically handles exactly
    the inputs inside its box.
    """
    regions: List[LeafRegion] = []

    def _walk(node: TreeNode, box: Box, path: List[PathStep]) -> None:
        if node.is_leaf:
            regions.append(LeafRegion(leaf=node, path=list(path), box=box))
            return
        left_box = box.intersect_upper(node.feature_index, node.threshold)
        right_box = box.intersect_lower(node.feature_index, node.threshold)
        _walk(node.left, left_box, path + [PathStep(node, went_left=True)])
        _walk(node.right, right_box, path + [PathStep(node, went_left=False)])

    _walk(root, Box.unbounded(input_dim), [])
    return regions
