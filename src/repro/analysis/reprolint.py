"""The reprolint command line: argument schema, run, report, gate.

Exposes two reusable pieces — :func:`add_lint_arguments` (the argument
schema) and :func:`run_lint_command` (parse-args-in, exit-code-out) — so the
``repro lint`` subcommand and the standalone ``python -m repro.analysis``
entry share one implementation.  Exit code 0 means the gate passed (no
non-baselined errors, no parse errors); 1 means it failed; 2 means the
invocation itself was bad (unknown rule id, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import run_lint
from repro.analysis.findings import Baseline
from repro.analysis.reporters import render_human, render_json

#: File name of the committed baseline, looked up next to ``pyproject.toml``.
BASELINE_FILENAME = ".reprolint-baseline.json"


def default_root() -> Path:
    """The default lint root: the installed ``repro`` package directory."""
    return Path(__file__).resolve().parents[1]


def default_baseline_path(root: Path) -> Path:
    """The committed baseline next to the nearest ``pyproject.toml``.

    Walks up from the lint root; if no project marker is found the baseline
    is assumed to sit directly above the package (``root``'s grandparent for
    a ``src`` layout would be wrong, so fall back to ``root``'s parent).
    """
    for candidate in (root, *root.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate / BASELINE_FILENAME
    return root.parent / BASELINE_FILENAME


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the reprolint argument schema on ``parser``."""
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory tree to lint (default: the repro package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: {BASELINE_FILENAME} next to pyproject.toml)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is treated as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format on stdout (default: human)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the JSON report to this path (CI artifact)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="human format: list baselined findings too, not just new ones",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed arguments; returns the exit code."""
    root = (args.root or default_root()).resolve()
    if not root.exists():
        print(f"reprolint: lint root {root} does not exist", file=sys.stderr)
        return 2

    baseline_path = args.baseline or default_baseline_path(root)
    only = tuple(part.strip() for part in args.select.split(",") if part.strip())

    try:
        baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"reprolint: cannot read baseline: {exc}", file=sys.stderr)
        return 2

    try:
        result = run_lint(root, baseline=baseline, only=only)
    except ValueError as exc:  # unknown rule id from --select
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"reprolint: wrote baseline with {len(result.findings)} "
            f"finding(s) to {baseline_path}"
        )
        return 0

    json_report = render_json(result)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json_report, encoding="utf-8")
    if args.format == "json":
        sys.stdout.write(json_report)
    else:
        sys.stdout.write(render_human(result, show_baselined=args.show_baselined))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
