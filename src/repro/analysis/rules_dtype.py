"""REP001 — the float dtype policy (no implicit float64 allocations).

The columnar data plane runs an explicit dtype policy: ``float64`` is the
bit-exact reference, ``float32`` is the opt-in fast path, and the choice is
made *once* (``resolve_float_dtype``) and threaded through.  A dtype-less
``np.zeros(n)`` in a hot path silently pins float64, defeats the float32
fast path, and — worse — can silently *upcast* a float32 pipeline back to
float64 mid-stream.  Inside the modules under the policy, every numpy
constructor must declare its dtype (or carry a justified suppression).
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext, call_name, has_keyword
from repro.analysis.registry import LintRule, register_rule

#: Constructor -> index of its positional ``dtype`` parameter.  A call with
#: that many positional arguments has declared a dtype positionally.
_CONSTRUCTORS = {
    "zeros": 2,
    "empty": 2,
    "ones": 2,
    "full": 3,
    "asarray": 2,
    "array": 2,
}

#: Module aliases the rule recognises in dotted callee names.
_NUMPY_ALIASES = ("np", "numpy")


@register_rule
class DtypePolicyRule(LintRule):
    """Flag dtype-less numpy constructors in modules under the dtype policy."""

    rule_id = "REP001"
    title = "dtype-policy: numpy constructors must declare an explicit dtype"
    severity = "error"
    scope = ("data/", "serving/", "nn/inference.py", "agents/")

    def check_file(self, ctx: FileContext) -> None:
        """Flag every in-scope ``np.zeros/empty/ones/full/asarray/array`` call
        that neither passes ``dtype=`` nor supplies it positionally."""
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or "." not in name:
                continue
            alias, _, func = name.rpartition(".")
            if alias not in _NUMPY_ALIASES or func not in _CONSTRUCTORS:
                continue
            if has_keyword(node, "dtype"):
                continue
            if len(node.args) >= _CONSTRUCTORS[func]:
                continue
            ctx.report(
                self.rule_id,
                node,
                self.severity,
                f"dtype-less np.{func}() defaults to float64 and bypasses the "
                "float dtype policy",
                suggestion=(
                    "pass an explicit dtype= (route float columns through "
                    "resolve_float_dtype), or suppress with a justification "
                    "if the implicit dtype is the point"
                ),
            )
