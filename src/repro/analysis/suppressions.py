"""Per-line ``# reprolint: disable=RULE`` suppression comments.

A violation that is deliberate — a legacy adapter that must materialise a
list, an intentionally dtype-preserving ``np.asarray`` — is silenced *at the
line*, with the justification sitting right next to it in a comment, instead
of disappearing into a baseline file nobody reads.  Forms::

    x = value.tolist()  # reprolint: disable=REP002 -- legacy adapter contract
    y = np.asarray(v)   # reprolint: disable=REP001,REP003
    z = risky()         # reprolint: disable=all

    # reprolint: disable=REP001 -- a standalone directive (optionally the
    # first line of a longer justification block) covers the next code line.
    w = np.asarray(v)

Suppressions are matched against every physical line a flagged AST node
spans, so a trailing comment on the first line of a multi-line call works
the way an author expects; a directive on its own comment line carries
forward past the rest of its comment block to the first code line below.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

#: Matches the suppression directive inside a comment.  Everything after the
#: rule list (e.g. an ``-- explanation``) is ignored, encouraging inline
#: justifications.
_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule ids (``{"all"}`` for all).

    Tokenizes rather than regex-scanning raw lines so directives inside
    string literals are never mistaken for suppressions.  A directive in a
    *standalone* comment (nothing but the comment on its line) is carried
    forward to the first following code line, skipping the rest of its
    comment block and blank lines.  Unreadable source (the caller reports
    syntax errors separately) yields no suppressions.
    """
    suppressions: Dict[int, Set[str]] = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if not match:
                continue
            rules = {
                part.strip().upper() if part.strip().lower() != "all" else "all"
                for part in match.group(1).split(",")
                if part.strip()
            }
            line = token.start[0]
            suppressions.setdefault(line, set()).update(rules)
            if token.line.lstrip().startswith("#"):
                # Standalone directive: also covers the next code line.
                target = line + 1
                while target <= len(lines):
                    text = lines[target - 1].strip()
                    if text and not text.startswith("#"):
                        break
                    target += 1
                suppressions.setdefault(target, set()).update(rules)
    except tokenize.TokenError:
        pass
    return suppressions


def is_suppressed(
    suppressions: Dict[int, Set[str]], rule: str, first_line: int, last_line: int
) -> bool:
    """Whether ``rule`` is disabled on any line the flagged node spans."""
    for line in range(first_line, max(last_line, first_line) + 1):
        rules = suppressions.get(line)
        if rules and ("all" in rules or rule.upper() in rules):
            return True
    return False
