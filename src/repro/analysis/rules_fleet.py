"""REP007 — the fleet tick path stays columnar.

The fleet loop's contract is one serving round trip and one environment step
per *group* per tick, whatever the building count — scalar python work per
building would turn a thousand-building tick into a thousand interpreter
iterations and silently erase the columnar data plane the serving stack was
built around.  Inside ``repro/fleet/`` this rule bans:

* iteration (``for``/comprehensions/generators) over per-building columns —
  iterables whose terminal name is a building-indexed column
  (``building_ids``, ``buildings``, ``observations``, ``environments``,
  ``rewards``, ``setpoint_pairs``), including through ``enumerate``/``zip``
  wrappers and ``range(len(column))``;
* ``.tolist()`` / ``.item()`` — materialising python scalars/lists from the
  telemetry arrays;
* list-of-dict telemetry — accumulators must stay struct-of-arrays
  (``report()``/``snapshot()``/``to_dict()`` summary methods are exempt:
  they run once per report over scalar aggregates, not per tick per
  building).

Iteration over *groups*, policy versions, or fallback agent banks is fine —
those collections are O(scenarios), not O(buildings).  One-shot setup work
over a column (e.g. hashing ids into the canary mask) carries an inline
justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.context import FileContext, call_name
from repro.analysis.registry import LintRule, register_rule

#: Terminal names of per-building (B,)-shaped columns.  Deliberately absent:
#: ``groups``/``bank``/``agents`` (O(scenarios) collections the loop owns)
#: and ``policy_ids`` (iterated only via ``np.unique`` version grouping).
_COLUMN_NAMES = {
    "building_ids",
    "buildings",
    "observations",
    "environments",
    "rewards",
    "setpoint_pairs",
}

#: Attribute calls that materialise python objects from arrays.
_SCALARISING_METHODS = {
    "tolist": "materialises a python list from a column",
    "item": "materialises a python scalar from a column",
}

#: Wrapper callables whose arguments are themselves iterated.
_ITER_WRAPPERS = {"enumerate", "zip", "reversed", "sorted", "iter", "list", "tuple"}

#: Summary methods allowed to build dicts (once per report, not per tick).
_SUMMARY_METHODS = {"report", "snapshot", "to_dict", "describe"}


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute/subscript chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _column_in_iterable(node: ast.AST) -> Optional[str]:
    """The banned column name an iterable expression walks over, if any.

    Resolves direct names (``building_ids``), attribute chains
    (``self.building_ids``), ``enumerate``/``zip`` wrappers, and the
    ``range(len(column))`` index-loop idiom.
    """
    name = _terminal_name(node)
    if name in _COLUMN_NAMES:
        return name
    if isinstance(node, ast.Call):
        callee = call_name(node)
        tail = callee.split(".")[-1] if callee else None
        if tail in _ITER_WRAPPERS:
            for arg in node.args:
                found = _column_in_iterable(arg)
                if found is not None:
                    return found
        elif tail == "range":
            for arg in node.args:
                if (
                    isinstance(arg, ast.Call)
                    and call_name(arg) == "len"
                    and arg.args
                ):
                    found = _column_in_iterable(arg.args[0])
                    if found is not None:
                        return found
    return None


def _iter_targets(node: ast.AST) -> Iterable[ast.AST]:
    """Every iterable expression a node loops over (loops + comprehensions)."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter


@register_rule
class FleetColumnarRule(LintRule):
    """Keep ``repro/fleet/`` free of per-building python loops and scalars."""

    rule_id = "REP007"
    title = "fleet: no per-building python loops or dict-of-scalars telemetry"
    severity = "error"
    scope = ("fleet/",)

    def check_file(self, ctx: FileContext) -> None:
        """Flag per-building iteration, scalarising calls, and dict telemetry."""
        if ctx.tree is None:
            return
        summary_spans = [
            (func.lineno, max(func.lineno, getattr(func, "end_lineno", func.lineno)))
            for func in ctx.functions()
            if func.name in _SUMMARY_METHODS
        ]
        for node in ast.walk(ctx.tree):
            for iterable in _iter_targets(node):
                column = _column_in_iterable(iterable)
                if column is not None:
                    ctx.report(
                        self.rule_id,
                        node,
                        self.severity,
                        f"python iteration over per-building column {column!r} "
                        "on the fleet path",
                        suggestion="replace the loop with array ops (np.where, "
                        "fancy indexing, one scatter per group); one-shot setup "
                        "work may carry a justified suppression",
                    )
            if isinstance(node, ast.Call):
                self._check_call(ctx, node)
            elif isinstance(node, ast.ListComp) and isinstance(node.elt, ast.Dict):
                line = node.lineno
                if any(lo <= line <= hi for lo, hi in summary_spans):
                    continue  # once-per-report summary, not per-tick telemetry
                ctx.report(
                    self.rule_id,
                    node,
                    self.severity,
                    "list-of-dict materialisation in the fleet subsystem",
                    suggestion="keep telemetry struct-of-arrays; build dicts only "
                    "in snapshot()/report() summaries over scalar aggregates",
                )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> None:
        """Flag one call if it materialises python objects from a column."""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCALARISING_METHODS
        ):
            ctx.report(
                self.rule_id,
                node,
                self.severity,
                f".{node.func.attr}() {_SCALARISING_METHODS[node.func.attr]} "
                "in the fleet subsystem",
                suggestion="keep per-building data in arrays end to end; "
                "reduce to scalars only via float(np.sum(...))-style aggregates",
            )
