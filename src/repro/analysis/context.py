"""Parsed-source contexts the lint rules run against.

:class:`FileContext` wraps one parsed module: source, AST, suppression map
and a :meth:`~FileContext.report` helper that applies line suppressions at
the moment a rule fires.  :class:`ProjectContext` wraps the whole lint run —
every file plus the *schema model*: a cross-module index of
``ColumnarBatch``-style classes (their declared ``ColumnSpec`` columns,
dataclass fields, methods, properties and self-assigned attributes) that the
schema-contract rule (REP003) checks producers and consumers against.

Both are plain data + AST helpers; rules own all policy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.suppressions import is_suppressed, parse_suppressions


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted name of an expression (``np.random.seed``), or ``None``.

    Resolves ``Name`` and nested ``Attribute`` chains only — calls on call
    results or subscripts have no static dotted name and return ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted name a call targets (``None`` for dynamic callees)."""
    return dotted_name(call.func)


def has_keyword(call: ast.Call, name: str) -> bool:
    """Whether the call passes ``name=`` explicitly as a keyword."""
    return any(kw.arg == name for kw in call.keywords)


def keyword_value(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The AST value of keyword ``name=`` on a call, or ``None``."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


@dataclass
class BatchClassInfo:
    """The schema model of one ``ColumnarBatch``-style class.

    Everything REP003 needs to validate attribute reads and producer dtypes:
    the declared ``ColumnSpec`` names and kinds, annotated dataclass fields
    (in declaration order, for positional-constructor mapping), methods,
    properties, plain class-level assignments, attributes the class assigns
    on ``self``, and base-class names for API inheritance walks.
    """

    name: str
    path: str
    line: int
    specs: Dict[str, str] = field(default_factory=dict)  # column name -> kind
    fields: List[str] = field(default_factory=list)
    methods: Set[str] = field(default_factory=set)
    properties: Set[str] = field(default_factory=set)
    class_attrs: Set[str] = field(default_factory=set)
    self_attrs: Set[str] = field(default_factory=set)
    bases: List[str] = field(default_factory=list)


class FileContext:
    """One parsed module under lint: source, AST, suppressions, findings."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.syntax_error = exc
        self.suppressions = parse_suppressions(source)
        self.findings: List[Finding] = []
        self.suppressed_count = 0

    def report(
        self,
        rule: str,
        node: ast.AST,
        severity: str,
        message: str,
        suggestion: str = "",
    ) -> None:
        """File a finding at ``node`` unless a line suppression silences it."""
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or first
        if is_suppressed(self.suppressions, rule, first, last):
            self.suppressed_count += 1
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.relpath,
                line=first,
                severity=severity,
                message=message,
                suggestion=suggestion,
            )
        )

    def report_line(
        self,
        rule: str,
        line: int,
        severity: str,
        message: str,
        suggestion: str = "",
    ) -> None:
        """File a finding at a bare line number (class-level findings)."""
        if is_suppressed(self.suppressions, rule, line, line):
            self.suppressed_count += 1
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.relpath,
                line=line,
                severity=severity,
                message=message,
                suggestion=suggestion,
            )
        )

    def functions(self) -> List[ast.FunctionDef]:
        """Every (sync and async) function definition in the module."""
        if self.tree is None:
            return []
        return [
            node
            for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """The class name an annotation refers to (handles string annotations)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.strip().strip("\"'")
        return name.split("[")[0].split(".")[-1] or None
    name = dotted_name(annotation)
    if name is not None:
        return name.split(".")[-1]
    return None


def _collect_batch_class(node: ast.ClassDef, relpath: str) -> Optional[BatchClassInfo]:
    """Build a :class:`BatchClassInfo` if the class declares ``COLUMNS``."""
    columns_value: Optional[ast.expr] = None
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "COLUMNS":
                    columns_value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "COLUMNS":
                columns_value = statement.value
    is_base = node.name == "ColumnarBatch"
    if columns_value is None and not is_base:
        return None

    info = BatchClassInfo(
        name=node.name,
        path=relpath,
        line=node.lineno,
        bases=[b for b in (dotted_name(base) for base in node.bases) if b],
    )
    # COLUMNS itself is part of every batch class's legitimate API.
    info.class_attrs.add("COLUMNS")
    if columns_value is not None and isinstance(columns_value, (ast.Tuple, ast.List)):
        for element in columns_value.elts:
            if not (isinstance(element, ast.Call) and call_name(element) == "ColumnSpec"):
                continue
            name: Optional[str] = None
            if element.args and isinstance(element.args[0], ast.Constant):
                name = str(element.args[0].value)
            kind = "float"
            if len(element.args) > 1 and isinstance(element.args[1], ast.Constant):
                kind = str(element.args[1].value)
            kind_kw = keyword_value(element, "kind")
            if isinstance(kind_kw, ast.Constant):
                kind = str(kind_kw.value)
            name_kw = keyword_value(element, "name")
            if isinstance(name_kw, ast.Constant):
                name = str(name_kw.value)
            if name:
                info.specs[name] = kind

    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            if statement.target.id != "COLUMNS":
                info.fields.append(statement.target.id)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    info.class_attrs.add(target.id)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = {dotted_name(d) for d in statement.decorator_list}
            if "property" in decorators:
                info.properties.add(statement.name)
            else:
                info.methods.add(statement.name)
            for inner in ast.walk(statement):
                if isinstance(inner, ast.Assign):
                    for target in inner.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.self_attrs.add(target.attr)
    return info


class ProjectContext:
    """The whole lint run: every file plus the cross-module schema model."""

    def __init__(self, root: Path, files: Sequence[FileContext]):
        self.root = root
        self.files = list(files)
        self.batch_classes: Dict[str, BatchClassInfo] = {}
        for ctx in self.files:
            if ctx.tree is None:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    info = _collect_batch_class(node, ctx.relpath)
                    if info is not None:
                        self.batch_classes[info.name] = info

    def class_api(self, class_name: str) -> Set[str]:
        """Every attribute name legitimately reachable on a batch class.

        Walks the recorded base-class chain (within the project) so
        subclasses inherit the base machinery (``take``, ``slice``,
        ``_rows``...).
        """
        api: Set[str] = set()
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            info = self.batch_classes.get(name)
            if info is None:
                continue
            api.update(info.specs)
            api.update(info.fields)
            api.update(info.methods)
            api.update(info.properties)
            api.update(info.class_attrs)
            api.update(info.self_attrs)
            stack.extend(info.bases)
        return api

    def annotation_class(self, annotation: Optional[ast.expr]) -> Optional[str]:
        """The batch class an annotation names, or ``None`` if not a batch."""
        name = _annotation_name(annotation)
        if name is not None and name in self.batch_classes:
            return name
        return None
