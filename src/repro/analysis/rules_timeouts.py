"""REP006 — timeout discipline on serving control paths.

The supervision layer's whole contract is "callers see latency, not hangs":
a dead or wedged worker must surface as a bounded timeout the supervisor can
act on, never as an indefinitely blocked parent.  One unguarded blocking
primitive anywhere on the control path silently voids that contract — a
bare ``connection.recv()`` in the worker loop blocks through a parent crash,
a ``process.join()`` without a timeout turns ``close()`` back into the hang
it exists to prevent, and ``connection.wait(conns)`` without a timeout waits
on a dead worker forever.

This rule enforces the discipline statically over the serving layer and the
shm transport (``serving/``, ``data/shm.py``):

* ``*.join()`` with neither arguments nor ``timeout=`` — a bare
  process/thread join.  (``str.join`` always takes an argument, so zero-arg
  joins are unambiguous.)
* ``wait``-style calls without a bound: ``multiprocessing.connection.wait``
  (any receiver spelling, or imported bare) needs ``timeout=`` or a second
  positional; ``<something>.wait()`` (events, conditions, processes) needs
  ``timeout=`` or a first positional.
* ``*.recv()`` where the enclosing function never bounds that receiver with
  a ``<same receiver>.poll(<timeout>)`` — ``Connection.recv`` has no timeout
  parameter, so the only compliant shape is poll-then-recv.

Bare ``sleep``/compute is out of scope: the rule targets primitives that
block on *another process's* progress.  Intentional unbounded blocking (if
ever needed) is a one-line justified suppression away.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.context import FileContext, dotted_name, has_keyword
from repro.analysis.registry import LintRule, register_rule

#: Bare-call names that are ``multiprocessing.connection.wait`` in disguise
#: (the conventional ``from ... import wait as connection_wait`` aliases).
_CONNECTION_WAIT_NAMES = {"wait", "connection_wait"}


def _receiver(call: ast.Call) -> Optional[str]:
    """The dotted receiver of an attribute call (``state.connection``)."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


def _is_connection_wait(name: str) -> bool:
    """Whether a dotted call name is ``multiprocessing.connection.wait``."""
    parts = name.split(".")
    if parts[-1] not in _CONNECTION_WAIT_NAMES:
        return False
    if len(parts) == 1:
        return True  # bare `wait` / `connection_wait` import
    # `connection.wait`, `mp.connection.wait`, `multiprocessing.connection.wait`
    return parts[-2] in ("connection", "mpc")


@register_rule
class TimeoutDisciplineRule(LintRule):
    """Blocking IPC primitives on serving control paths must carry a timeout."""

    rule_id = "REP006"
    title = "timeout-discipline: bounded blocking on serving control paths"
    severity = "error"
    scope = ("serving/", "data/shm.py")

    def check_file(self, ctx: FileContext) -> None:
        """Flag unbounded join/wait/recv calls (see the module docstring)."""
        if ctx.tree is None:
            return
        scopes: List[Tuple[ast.AST, List[ast.Call]]] = [(ctx.tree, [])]
        scopes.extend((fn, []) for fn in ctx.functions())
        for scope_node, calls in scopes:
            for node in ast.walk(scope_node):
                if isinstance(node, ast.Call) and scope_node is self._scope_of(
                    node, scopes
                ):
                    calls.append(node)
        for _, calls in scopes:
            self._check_scope(ctx, calls)

    @staticmethod
    def _scope_of(
        node: ast.AST, scopes: List[Tuple[ast.AST, List[ast.Call]]]
    ) -> ast.AST:
        """The innermost function (or module) a node belongs to."""
        best = scopes[0][0]
        best_span = None
        node_line = getattr(node, "lineno", 0)
        for scope_node, _ in scopes[1:]:
            first = scope_node.lineno
            last = scope_node.end_lineno or first
            if first <= node_line <= last:
                span = last - first
                if best_span is None or span < best_span:
                    best, best_span = scope_node, span
        return best

    def _check_scope(self, ctx: FileContext, calls: List[ast.Call]) -> None:
        """Apply the three checks within one function (or module) scope."""
        # Receivers bounded by a `<receiver>.poll(<timeout>)` in this scope.
        polled = {
            _receiver(call)
            for call in calls
            if isinstance(call.func, ast.Attribute)
            and call.func.attr == "poll"
            and (call.args or has_keyword(call, "timeout"))
        }
        polled.discard(None)
        for call in calls:
            name = dotted_name(call.func)
            if name is None:
                continue
            tail = name.split(".")[-1]
            if tail == "join" and isinstance(call.func, ast.Attribute):
                if not call.args and not call.keywords:
                    ctx.report(
                        self.rule_id,
                        call,
                        self.severity,
                        f"{name}() blocks without a timeout on a serving "
                        "control path",
                        suggestion="pass timeout= and escalate "
                        "(terminate/kill) when it expires",
                    )
            elif _is_connection_wait(name):
                if not has_keyword(call, "timeout") and len(call.args) < 2:
                    ctx.report(
                        self.rule_id,
                        call,
                        self.severity,
                        f"{name}(...) waits on connections without a timeout",
                        suggestion="pass timeout= (remaining deadline budget) "
                        "so a dead worker surfaces as a bounded failure",
                    )
            elif tail == "wait" and isinstance(call.func, ast.Attribute):
                if not has_keyword(call, "timeout") and not call.args:
                    ctx.report(
                        self.rule_id,
                        call,
                        self.severity,
                        f"{name}() blocks without a timeout on a serving "
                        "control path",
                        suggestion="pass a timeout (positional or timeout=) "
                        "and handle expiry explicitly",
                    )
            elif tail == "recv" and isinstance(call.func, ast.Attribute):
                if call.args or call.keywords:
                    continue  # not the zero-arg Connection.recv shape
                if _receiver(call) in polled:
                    continue  # poll-then-recv: the poll carries the bound
                ctx.report(
                    self.rule_id,
                    call,
                    self.severity,
                    f"{name}() blocks indefinitely; Connection.recv has no "
                    "timeout parameter",
                    suggestion="guard with `if not "
                    f"{_receiver(call) or 'connection'}.poll(timeout): ...` "
                    "before recv()",
                )
