"""Analysis: paper studies plus reprolint, the repo's own static analyzer.

Two halves live here.  The *paper* half supports the preliminary
experiments — the Fig. 1 motivation study (how stochastic the MBRL
controller's setpoint decisions are under identical conditions) and the
Fig. 3 noise-level study (Jensen-Shannon distance and information entropy
of the augmented historical-data distribution).

The *tooling* half is **reprolint**: an AST-based invariant linter that
parses the whole ``repro`` tree and enforces repo-specific contracts the
ordinary toolchain can't see — the float dtype policy (REP001), zero-copy
transport discipline (REP002), the columnar schema contract (REP003),
shm/pipe/process resource ownership (REP004) and RNG discipline (REP005).
Run it as ``repro lint`` or ``python -m repro.analysis``; findings beyond
the committed ``.reprolint-baseline.json`` fail CI.
"""

from repro.analysis.distributions import (
    histogram_distribution,
    information_entropy,
    jensen_shannon_distance,
    jensen_shannon_divergence,
    dataset_entropy,
    dataset_jsd,
)
from repro.analysis.engine import LintResult, run_lint
from repro.analysis.findings import Baseline, Finding
from repro.analysis.registry import LintRule, all_rules, make_rules, register_rule
from repro.analysis.reporters import render_human, render_json
from repro.analysis.reprolint import add_lint_arguments, run_lint_command
from repro.analysis.stochasticity import (
    SetpointTrace,
    StochasticityReport,
    collect_setpoint_traces,
    analyze_stochasticity,
)

__all__ = [
    "histogram_distribution",
    "information_entropy",
    "jensen_shannon_distance",
    "jensen_shannon_divergence",
    "dataset_entropy",
    "dataset_jsd",
    "SetpointTrace",
    "StochasticityReport",
    "collect_setpoint_traces",
    "analyze_stochasticity",
    "LintResult",
    "run_lint",
    "Baseline",
    "Finding",
    "LintRule",
    "all_rules",
    "make_rules",
    "register_rule",
    "render_human",
    "render_json",
    "add_lint_arguments",
    "run_lint_command",
]
