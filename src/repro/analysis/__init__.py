"""Analysis utilities: distribution statistics and decision-stochasticity studies.

These support the paper's preliminary experiments — the Fig. 1 motivation study
(how stochastic the MBRL controller's setpoint decisions are under identical
conditions) and the Fig. 3 noise-level study (Jensen-Shannon distance and
information entropy of the augmented historical-data distribution).
"""

from repro.analysis.distributions import (
    histogram_distribution,
    information_entropy,
    jensen_shannon_distance,
    jensen_shannon_divergence,
    dataset_entropy,
    dataset_jsd,
)
from repro.analysis.stochasticity import (
    SetpointTrace,
    StochasticityReport,
    collect_setpoint_traces,
    analyze_stochasticity,
)

__all__ = [
    "histogram_distribution",
    "information_entropy",
    "jensen_shannon_distance",
    "jensen_shannon_divergence",
    "dataset_entropy",
    "dataset_jsd",
    "SetpointTrace",
    "StochasticityReport",
    "collect_setpoint_traces",
    "analyze_stochasticity",
]
