"""REP002 — zero-copy discipline on the transport paths.

The shared-memory transport's whole value is that array payloads cross
process boundaries exactly once, as bytes in a ring segment — never through
a pickle, a ``deepcopy``, a ``tolist()`` materialisation or a list-of-dict
rebuild.  Inside the data plane and the sharded transport, this rule bans
the copy/serialise vocabulary outright, and requires every function that
parks a batch in a ring (``to_shm``/``write_batch``) to run the
``assert_zero_copy`` no-pickle guard before the header leaves the process.
"""

from __future__ import annotations

import ast
from typing import List, Union

from repro.analysis.context import FileContext, call_name
from repro.analysis.registry import LintRule, register_rule

#: Dotted callee names that serialise or copy payloads.
_FORBIDDEN_CALLS = {
    "pickle.dumps": "pickles an array payload",
    "pickle.loads": "unpickles a payload",
    "pickle.dump": "pickles an array payload",
    "pickle.load": "unpickles a payload",
    "copy.deepcopy": "deep-copies a payload",
    "deepcopy": "deep-copies a payload",
    "np.copy": "copies an array",
    "numpy.copy": "copies an array",
}

#: Attribute-call tails that materialise python objects from arrays.
_FORBIDDEN_METHODS = {"tolist": "materialises a python list from an array"}

#: Calls that park a batch in a shared-memory ring (send paths).
_SEND_CALLS = {"to_shm", "write_batch"}

#: The guard every send path must run.
_GUARD = "assert_zero_copy"


def _is_delegation(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> bool:
    """Whether the function body is a bare ``return <send call>`` delegation.

    ``ColumnarBatch.to_shm`` is just ``return buffer.write_batch(self)`` —
    the guard runs inside ``write_batch`` itself, one level down, so a pure
    delegation is exempt from the in-body guard requirement.
    """
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # docstring
    if len(body) != 1 or not isinstance(body[0], ast.Return):
        return False
    value = body[0].value
    if not isinstance(value, ast.Call):
        return False
    name = call_name(value)
    return name is not None and name.split(".")[-1] in _SEND_CALLS


@register_rule
class ZeroCopyRule(LintRule):
    """Ban copy/serialise calls and unguarded sends on the transport paths."""

    rule_id = "REP002"
    title = "zero-copy: no pickle/deepcopy/tolist on transport paths; sends run assert_zero_copy"
    severity = "error"
    scope = ("data/", "serving/sharded.py")

    def check_file(self, ctx: FileContext) -> None:
        """Flag serialising imports/calls, list-of-dict materialisation, and
        send-path functions that never run the no-pickle guard."""
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "pickle":
                        ctx.report(
                            self.rule_id,
                            node,
                            self.severity,
                            "pickle imported on a zero-copy transport path",
                            suggestion="move array payloads through shared memory; "
                            "headers must stay plain scalars",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "pickle":
                    ctx.report(
                        self.rule_id,
                        node,
                        self.severity,
                        "pickle imported on a zero-copy transport path",
                        suggestion="move array payloads through shared memory",
                    )
            elif isinstance(node, ast.Call):
                self._check_call(ctx, node)
            elif isinstance(node, ast.ListComp) and isinstance(node.elt, ast.Dict):
                ctx.report(
                    self.rule_id,
                    node,
                    self.severity,
                    "list-of-dict materialisation on a zero-copy transport path",
                    suggestion="keep rows columnar (struct-of-arrays); build dicts "
                    "only at diagnostic boundaries",
                )
        for func in ctx.functions():
            self._check_send_path(ctx, func)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> None:
        """Flag one call if it serialises or copies a payload."""
        name = call_name(node)
        if name is not None:
            if name in _FORBIDDEN_CALLS:
                ctx.report(
                    self.rule_id,
                    node,
                    self.severity,
                    f"{name}() {_FORBIDDEN_CALLS[name]} on a zero-copy transport path",
                    suggestion="map numpy views onto the shared segment instead of "
                    "copying or serialising",
                )
                return
        if isinstance(node.func, ast.Attribute) and node.func.attr in _FORBIDDEN_METHODS:
            ctx.report(
                self.rule_id,
                node,
                self.severity,
                f".{node.func.attr}() {_FORBIDDEN_METHODS[node.func.attr]} "
                "on a zero-copy transport path",
                suggestion="operate on the array directly; materialise python "
                "objects only at legacy adapter boundaries (and suppress there "
                "with a justification)",
            )

    def _check_send_path(
        self, ctx: FileContext, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        """Require ``assert_zero_copy`` in any function that sends a batch."""
        send_calls: List[ast.Call] = []
        guarded = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            tail = name.split(".")[-1]
            if tail in _SEND_CALLS:
                send_calls.append(node)
            if tail == _GUARD:
                guarded = True
        if send_calls and not guarded and not _is_delegation(func):
            ctx.report(
                self.rule_id,
                send_calls[0],
                self.severity,
                f"send path {func.name}() parks a batch in shared memory but "
                f"never runs {_GUARD}()",
                suggestion="call header.assert_zero_copy() before the header "
                "crosses the process boundary",
            )
