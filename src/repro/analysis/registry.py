"""The lint-rule base class and registry.

Every rule is a :class:`LintRule` subclass registered with
:func:`register_rule`; the engine instantiates the registry and dispatches
per-file (:meth:`LintRule.check_file`) or whole-project
(:meth:`LintRule.check_project`) passes.  Path scoping lives here so each
rule declares *where* an invariant holds (e.g. the dtype policy covers
``data/``, ``serving/``, ``nn/inference.py`` and ``agents/``) in one
obvious place, matching lint-root-relative path prefixes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Type

from repro.analysis.context import FileContext, ProjectContext


class LintRule:
    """Base class for reprolint rules.

    Subclasses set ``rule_id`` (``REPnnn``), ``title``, ``severity`` and an
    optional ``scope`` of lint-root-relative path prefixes (empty = every
    file) / ``exclude`` list, then implement :meth:`check_file` — or override
    :meth:`check_project` for cross-module rules.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = "error"
    #: Path prefixes (relative to the lint root, posix) the rule applies to.
    scope: Tuple[str, ...] = ()
    #: Path prefixes the rule never applies to, even inside ``scope``.
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether the rule's scope covers a lint-root-relative path."""
        if any(relpath.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check_file(self, ctx: FileContext) -> None:
        """Per-file pass; default does nothing (project rules override)."""

    def check_project(self, project: ProjectContext) -> None:
        """Whole-project pass: runs :meth:`check_file` on every in-scope file."""
        for ctx in project.files:
            if ctx.tree is not None and self.applies_to(ctx.relpath):
                self.check_file(ctx)


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry (id-unique)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"Duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[LintRule]]:
    """Every registered rule class, sorted by rule id."""
    # Importing the rule modules registers them; deferred to avoid cycles.
    from repro.analysis import (  # noqa: F401
        rules_arena,
        rules_dtype,
        rules_fleet,
        rules_resources,
        rules_rng,
        rules_schema,
        rules_timeouts,
        rules_zero_copy,
    )

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def make_rules(only: Tuple[str, ...] = ()) -> List[LintRule]:
    """Instantiate the registry, optionally restricted to the given ids."""
    rules = [cls() for cls in all_rules()]
    if only:
        wanted = {rule_id.upper() for rule_id in only}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            known = ", ".join(sorted(r.rule_id for r in rules))
            raise ValueError(f"Unknown rule id(s) {sorted(unknown)}; known: {known}")
        rules = [rule for rule in rules if rule.rule_id in wanted]
    return rules


RuleFactory = Callable[[], LintRule]
