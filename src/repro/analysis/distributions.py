"""Histogram-based distribution statistics.

The paper's Fig. 3 compares the distribution of historical policy inputs before
and after Gaussian-noise augmentation using two statistics:

* **Information entropy** — the Shannon entropy of the binned joint
  distribution; larger entropy means the augmented data covers more of the
  input space (better generalisation of the extracted tree).
* **Jensen-Shannon distance** — the square root of the Jensen-Shannon
  divergence between the original and augmented distributions; it must stay
  below the distance to a *different* city for the augmented data to still
  represent the local climate.

All statistics operate on per-feature binned (discretised) data so they are
well-defined for continuous multivariate samples.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def histogram_distribution(
    data: np.ndarray,
    bins: int = 20,
    bin_edges: Optional[Sequence[np.ndarray]] = None,
) -> Tuple[np.ndarray, list]:
    """Discretise multivariate samples and return the joint probability vector.

    Each feature is binned independently (``bins`` equal-width bins over its
    observed range, or the supplied ``bin_edges``), each sample becomes a tuple
    of bin indices, and the probability of every occupied joint bin is counted.
    The probability vector is returned sparse (only occupied bins), together
    with the bin edges used, so a second dataset can be binned consistently.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    n, d = data.shape
    if n == 0:
        raise ValueError("Cannot compute a distribution over an empty dataset")
    if bin_edges is None:
        bin_edges = []
        for j in range(d):
            low, high = data[:, j].min(), data[:, j].max()
            if high - low < 1e-12:
                high = low + 1.0
            bin_edges.append(np.linspace(low, high, bins + 1))
    indices = np.zeros((n, d), dtype=int)
    for j in range(d):
        edges = bin_edges[j]
        indices[:, j] = np.clip(np.digitize(data[:, j], edges[1:-1]), 0, len(edges) - 2)
    # Count occupied joint bins.
    _unique, counts = np.unique(indices, axis=0, return_counts=True)
    probabilities = counts / counts.sum()
    return probabilities, list(bin_edges)


def information_entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy (bits) of a probability vector."""
    p = np.asarray(probabilities, dtype=float)
    p = p[p > 0]
    if p.size == 0:
        return 0.0
    return float(-np.sum(p * np.log2(p)))


def _joint_counts(
    data: np.ndarray, bin_edges: Sequence[np.ndarray]
) -> dict:
    """Map from joint-bin tuple to count, using shared bin edges."""
    data = np.atleast_2d(np.asarray(data, dtype=float))
    d = data.shape[1]
    indices = np.zeros(data.shape, dtype=int)
    for j in range(d):
        edges = bin_edges[j]
        indices[:, j] = np.clip(np.digitize(data[:, j], edges[1:-1]), 0, len(edges) - 2)
    counts: dict = {}
    for row in map(tuple, indices):
        counts[row] = counts.get(row, 0) + 1
    return counts


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """JS divergence (bits) between two aligned probability vectors."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("p and q must be aligned probability vectors of the same length")
    p = p / p.sum()
    q = q / q.sum()
    m = 0.5 * (p + q)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return 0.5 * _kl(p, m) + 0.5 * _kl(q, m)


def jensen_shannon_distance(p: np.ndarray, q: np.ndarray) -> float:
    """JS distance: the square root of the JS divergence (a metric)."""
    return float(np.sqrt(max(jensen_shannon_divergence(p, q), 0.0)))


def dataset_entropy(data: np.ndarray, bins: int = 20) -> float:
    """Entropy (bits) of the binned joint distribution of a dataset."""
    probabilities, _edges = histogram_distribution(data, bins=bins)
    return information_entropy(probabilities)


def dataset_jsd(data_a: np.ndarray, data_b: np.ndarray, bins: int = 20) -> float:
    """JS distance between the binned distributions of two datasets.

    The bins are fitted on the union of both datasets so the two probability
    vectors are aligned over the same joint-bin space.
    """
    data_a = np.atleast_2d(np.asarray(data_a, dtype=float))
    data_b = np.atleast_2d(np.asarray(data_b, dtype=float))
    if data_a.shape[1] != data_b.shape[1]:
        raise ValueError("Datasets must have the same number of features")
    _probs, edges = histogram_distribution(np.vstack([data_a, data_b]), bins=bins)
    counts_a = _joint_counts(data_a, edges)
    counts_b = _joint_counts(data_b, edges)
    keys = sorted(set(counts_a) | set(counts_b))
    p = np.array([counts_a.get(k, 0) for k in keys], dtype=float)
    q = np.array([counts_b.get(k, 0) for k in keys], dtype=float)
    # Small additive smoothing keeps the divergence finite on disjoint supports.
    p = (p + 1e-9) / (p + 1e-9).sum()
    q = (q + 1e-9) / (q + 1e-9).sum()
    return jensen_shannon_distance(p, q)
