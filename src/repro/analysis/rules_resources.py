"""REP004 — resource ownership of shared memory, pipes and processes.

The shm transport's ownership protocol (owner creates + unlinks, peers
attach + close, workers are joined) is what keeps a SIGKILLed worker from
leaking a 32 MB segment.  This rule requires every creation of a
``SharedMemory`` segment, ``SharedMemoryColumnarBuffer``, ``Pipe`` or
``Process`` to have a visible disposal path in the creating function:

* created inside a ``with`` statement, or
* stored on ``self`` (directly or via a ``self.…`` call such as
  ``self._rings.append(ring)``) in a class that defines ``close``/
  ``__exit__``/``__del__``, or
* ownership escaping via ``return``, or
* an explicit ``close``/``unlink``/``join``/``terminate`` call on the local
  name — ideally inside ``try/finally``, which is what the transport's own
  worker loop does.

A creation with none of these is a leak the moment an exception (or a
SIGTERM) lands between creation and cleanup.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple, Union

from repro.analysis.context import FileContext, call_name, dotted_name
from repro.analysis.registry import LintRule, register_rule

#: Callee-name tails that create an owned OS resource.
_CREATION_TAILS = {"SharedMemory", "Pipe", "Process"}

#: ``SharedMemoryColumnarBuffer.create`` / ``.attach`` style factories:
#: (penultimate segment, final segment) pairs.
_FACTORY_CALLS = {
    ("SharedMemoryColumnarBuffer", "create"),
    ("SharedMemoryColumnarBuffer", "attach"),
}

#: Method calls that dispose of (or hand off) a resource.
_CLEANUP_METHODS = {"close", "unlink", "join", "terminate", "kill", "shutdown"}


def _is_creation(call: ast.Call) -> Optional[str]:
    """The resource kind a call creates, or ``None``."""
    name = call_name(call)
    if name is None:
        return None
    parts = name.split(".")
    if parts[-1] in _CREATION_TAILS:
        return parts[-1]
    if len(parts) >= 2 and (parts[-2], parts[-1]) in _FACTORY_CALLS:
        return parts[-2]
    return None


@register_rule
class ResourceOwnershipRule(LintRule):
    """Require a disposal path for every shm/pipe/process creation."""

    rule_id = "REP004"
    title = "resource-ownership: SharedMemory/Pipe/Process creations need close/unlink/join"
    severity = "error"

    def check_file(self, ctx: FileContext) -> None:
        """Check every function that creates a tracked OS resource."""
        if ctx.tree is None:
            return
        class_methods = self._classes_with_disposal(ctx.tree)
        for func in ctx.functions():
            self._check_function(ctx, func, class_methods)

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _classes_with_disposal(tree: ast.Module) -> Set[str]:
        """Names of classes defining ``close``/``__exit__``/``__del__``."""
        disposers = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                names = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if names & {"close", "__exit__", "__del__"}:
                    disposers.add(node.name)
        return disposers

    def _check_function(
        self,
        ctx: FileContext,
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        disposing_classes: Set[str],
    ) -> None:
        """Flag creations in ``func`` that lack any disposal path."""
        with_nodes: List[ast.AST] = []
        returns: List[ast.Return] = []
        cleanup_names: Set[str] = set()
        self_stored_names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                with_nodes.append(node)
            elif isinstance(node, ast.Return):
                returns.append(node)
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr in _CLEANUP_METHODS
                    and isinstance(fn.value, ast.Name)
                ):
                    cleanup_names.add(fn.value.id)
                # self._rings.append(ring) / self.adopt(ring): storing a local
                # on self delegates disposal to the instance.
                root = dotted_name(fn)
                if root is not None and root.startswith("self."):
                    for arg in ast.walk(node):
                        if isinstance(arg, ast.Name) and isinstance(arg.ctx, ast.Load):
                            self_stored_names.add(arg.id)

        returned_names: Set[str] = set()
        for ret in returns:
            if ret.value is not None:
                for node in ast.walk(ret.value):
                    if isinstance(node, ast.Name):
                        returned_names.add(node.id)

        in_method_of_disposer = self._enclosing_disposer(ctx, func, disposing_classes)

        for statement in ast.walk(func):
            if not isinstance(statement, (ast.Assign, ast.Expr)):
                continue
            value = statement.value
            if not isinstance(value, ast.Call):
                continue
            kind = _is_creation(value)
            if kind is None:
                continue
            if any(self._contains(w, value) for w in with_nodes):
                continue
            if any(self._contains(r, value) for r in returns):
                continue  # ownership escapes to the caller
            if isinstance(statement, ast.Expr):
                self._leak(ctx, value, kind, "its result is discarded")
                continue
            names = self._target_names(statement)
            if names is None:
                # Stored on self (or another attribute): fine when the class
                # has a disposal method.
                if in_method_of_disposer:
                    continue
                self._leak(
                    ctx,
                    value,
                    kind,
                    "it is stored on an object with no close/__exit__/__del__",
                )
                continue
            for name in names:
                if (
                    name in cleanup_names
                    or name in returned_names
                    or (name in self_stored_names and in_method_of_disposer)
                ):
                    continue
                self._leak(
                    ctx,
                    value,
                    kind,
                    f"local {name!r} is never closed/unlinked/joined or handed off",
                )

    def _enclosing_disposer(
        self,
        ctx: FileContext,
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        disposing_classes: Set[str],
    ) -> bool:
        """Whether ``func`` is a method of a class that can dispose."""
        if ctx.tree is None:
            return False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                return node.name in disposing_classes
        return False

    @staticmethod
    def _target_names(statement: ast.Assign) -> Optional[Tuple[str, ...]]:
        """Simple-name assignment targets, or ``None`` for attribute targets."""
        names: List[str] = []
        for target in statement.targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
                    else:
                        return None
            else:
                return None
        return tuple(names)

    @staticmethod
    def _contains(container: ast.AST, node: ast.AST) -> bool:
        """Whether ``node`` appears inside ``container``'s subtree."""
        return any(child is node for child in ast.walk(container))

    def _leak(self, ctx: FileContext, node: ast.Call, kind: str, why: str) -> None:
        """File one resource-leak finding."""
        ctx.report(
            self.rule_id,
            node,
            self.severity,
            f"{kind} created but {why}",
            suggestion="use a context manager, store it on an owner with "
            "close()/__exit__, or pair the creation with close/unlink/join "
            "in a try/finally",
        )
