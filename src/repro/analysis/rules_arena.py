"""REP008 — no materialising copies of arena-resolved arrays on serving paths.

The packed arena's whole point is that a policy's compiled arrays are
read-only views into one shared mmap: every shard that resolves a policy
maps the same physical pages, cold load is O(1), and the fleet's resident
footprint does not scale with the shard count.  A single ``.copy()`` (or a
``.tolist()`` materialisation) on one of those arrays silently re-privatises
the pages — serving keeps working, the benchmark numbers quietly rot.  This
rule bans the copy vocabulary on any receiver that names one of the six
compiled-array sections (``feature`` / ``threshold`` / ``left`` / ``right``
/ ``leaf_action`` / ``action_pairs``) or mentions an arena, across the
serving layer and the arena module itself.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.context import FileContext
from repro.analysis.registry import LintRule, register_rule

#: Attribute-call tails that materialise a private copy of an array.
_FORBIDDEN_METHODS = {
    "copy": "re-privatises shared mmap pages",
    "tolist": "materialises python objects from a shared view",
}

#: Receiver name tails that identify an arena-resolved compiled array.
_ARENA_ARRAYS = {
    "feature",
    "threshold",
    "left",
    "right",
    "leaf_action",
    "action_pairs",
}


def _receiver_name(node: ast.expr) -> Optional[str]:
    """The dotted name of an attribute-call receiver, if it is one.

    ``compiled.feature`` -> ``"compiled.feature"``; subscripts and calls
    (``rows[0].copy()``, ``resolve(pid).copy()``) return ``None`` — the rule
    only fires on receivers it can actually vouch for.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register_rule
class ArenaCopyRule(LintRule):
    """Ban ``.copy()``/``.tolist()`` on arena-resolved arrays in serving code."""

    rule_id = "REP008"
    title = "arena views stay shared: no .copy()/.tolist() on compiled-array receivers"
    severity = "error"
    scope = ("serving/", "store/arena.py")

    def check_file(self, ctx: FileContext) -> None:
        """Flag copy-vocabulary calls whose receiver names an arena array."""
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in _FORBIDDEN_METHODS:
                continue
            receiver = _receiver_name(node.func.value)
            if receiver is None:
                continue
            tail = receiver.split(".")[-1]
            if tail not in _ARENA_ARRAYS and "arena" not in receiver.lower():
                continue
            ctx.report(
                self.rule_id,
                node,
                self.severity,
                f"{receiver}.{method}() {_FORBIDDEN_METHODS[method]} "
                "on an arena-resolved compiled array",
                suggestion="operate on the read-only view in place; if a "
                "mutable scratch array is genuinely needed, allocate it "
                "explicitly with np.array(..., copy=True) outside the "
                "serving path and justify the suppression",
            )
