"""The reprolint engine: collect files, run rules, apply the baseline.

:func:`run_lint` is the single entry point everything else (the ``repro
lint`` CLI, ``python -m repro.analysis``, the tests) calls: it walks the
lint root for python sources, parses each into a
:class:`~repro.analysis.context.FileContext`, assembles the
:class:`~repro.analysis.context.ProjectContext` schema model, dispatches
every registered rule, and folds the committed baseline in — returning a
:class:`LintResult` whose ``new_findings`` are the only thing the CI gate
fails on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.context import FileContext, ProjectContext
from repro.analysis.findings import Baseline, Finding
from repro.analysis.registry import LintRule, make_rules

#: Directory names never descended into when collecting sources.
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache"}


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``findings`` is the full sorted list; ``new_findings`` is what survives
    the baseline (the CI gate fails iff any of these is an ``error``);
    ``parse_errors`` are files the engine could not even parse — always
    fatal, since an unparseable file is invisible to every rule.
    """

    root: Path
    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined_count: int = 0
    suppressed_count: int = 0
    file_count: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def gate_failures(self) -> List[Finding]:
        """The non-baselined ``error``-severity findings that fail the gate."""
        return [f for f in self.new_findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """Whether the run passes the gate (no new errors, no parse errors)."""
        return not self.gate_failures and not self.parse_errors


def collect_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root``, sorted, skipping cache dirs."""
    if root.is_file():
        return [root]
    files = []
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def build_project(root: Path, files: Optional[Sequence[Path]] = None) -> ProjectContext:
    """Parse the tree under ``root`` into a :class:`ProjectContext`."""
    root = root.resolve()
    contexts: List[FileContext] = []
    for path in files if files is not None else collect_files(root):
        path = Path(path).resolve()
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.name
        source = path.read_text(encoding="utf-8")
        contexts.append(FileContext(path, relpath, source))
    return ProjectContext(root, contexts)


def run_lint(
    root: Union[str, Path],
    baseline: Optional[Baseline] = None,
    only: Tuple[str, ...] = (),
    rules: Optional[Sequence[LintRule]] = None,
) -> LintResult:
    """Lint the tree under ``root`` and apply ``baseline`` (None = empty).

    ``only`` restricts to the given rule ids; ``rules`` injects
    pre-instantiated rules (the tests use this to run a single rule against
    a fixture tree without touching the registry).
    """
    root = Path(root).resolve()
    project = build_project(root)
    active = list(rules) if rules is not None else make_rules(only)
    for rule in active:
        rule.check_project(project)

    findings: List[Finding] = []
    suppressed = 0
    parse_errors: List[str] = []
    for ctx in project.files:
        findings.extend(ctx.findings)
        suppressed += ctx.suppressed_count
        if ctx.syntax_error is not None:
            parse_errors.append(
                f"{ctx.relpath}:{ctx.syntax_error.lineno or 0}: "
                f"{ctx.syntax_error.msg}"
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    applied = baseline if baseline is not None else Baseline()
    new_findings, absorbed = applied.filter_new(findings)
    return LintResult(
        root=root,
        findings=findings,
        new_findings=new_findings,
        baselined_count=absorbed,
        suppressed_count=suppressed,
        file_count=len(project.files),
        parse_errors=parse_errors,
    )
