"""Reprolint output formats: a human report and a machine JSON report.

The human reporter groups findings by file with ``path:line`` prefixes and
prints the rule's suggestion under each finding; the JSON reporter emits a
single stable document (counts, findings, gate verdict) that CI uploads as
an artifact and downstream tooling can diff.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding


def render_json(result: LintResult) -> str:
    """The full run as one JSON document (sorted, newline-terminated)."""
    payload = {
        "root": str(result.root),
        "ok": result.ok,
        "file_count": result.file_count,
        "finding_count": len(result.findings),
        "new_finding_count": len(result.new_findings),
        "baselined_count": result.baselined_count,
        "suppressed_count": result.suppressed_count,
        "parse_errors": list(result.parse_errors),
        "counts_by_rule": _counts_by_rule(result.findings),
        "findings": [f.to_dict() for f in result.findings],
        "new_findings": [f.to_dict() for f in result.new_findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_human(result: LintResult, show_baselined: bool = False) -> str:
    """The run as a grouped, suggestion-annotated human report.

    By default only *new* (non-baselined) findings are listed — the ones the
    gate acts on; ``show_baselined`` widens the listing to everything.
    """
    lines: List[str] = []
    shown = result.findings if show_baselined else result.new_findings
    by_path: Dict[str, List[Finding]] = {}
    for finding in shown:
        by_path.setdefault(finding.path, []).append(finding)
    for path in sorted(by_path):
        lines.append(path)
        for finding in by_path[path]:
            lines.append(
                f"  {finding.location()}: {finding.severity} "
                f"{finding.rule}: {finding.message}"
            )
            if finding.suggestion:
                lines.append(f"      hint: {finding.suggestion}")
        lines.append("")
    for error in result.parse_errors:
        lines.append(f"PARSE ERROR {error}")
    if result.parse_errors:
        lines.append("")

    counts = _counts_by_rule(result.findings)
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    lines.append(
        f"reprolint: {result.file_count} files, {len(result.findings)} findings"
        + (f" ({summary})" if summary else "")
        + f", {result.baselined_count} baselined, "
        f"{result.suppressed_count} suppressed, "
        f"{len(result.new_findings)} new"
    )
    lines.append("PASS" if result.ok else "FAIL")
    return "\n".join(lines) + "\n"


def _counts_by_rule(findings: List[Finding]) -> Dict[str, int]:
    """Finding counts keyed by rule id."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts
