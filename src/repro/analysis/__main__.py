"""``python -m repro.analysis`` — run reprolint standalone."""

from repro.analysis.reprolint import main

if __name__ == "__main__":
    raise SystemExit(main())
