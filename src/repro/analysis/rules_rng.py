"""REP005 — RNG discipline (no global numpy random state).

Reproducibility of every experiment in this repo rests on seeded
``np.random.Generator`` instances threaded through ``utils/rng.py``'s
``ensure_rng``/``spawn_rngs``.  A single ``np.random.seed(...)`` or
``np.random.uniform(...)`` reaches around that plumbing into process-global
state: results then depend on import order, on which worker ran first, and
on any third-party library that also pokes the global stream.  This rule
bans the legacy global-state API everywhere except ``utils/rng.py`` itself
(the one sanctioned shim over it).
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext, call_name
from repro.analysis.registry import LintRule, register_rule

#: Attribute accesses under ``np.random`` that are explicitly fine: they
#: construct *local* generator state rather than touching the global stream.
_ALLOWED_TAILS = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
}


@register_rule
class RngDisciplineRule(LintRule):
    """Ban ``np.random.<global-state>`` outside the sanctioned rng module."""

    rule_id = "REP005"
    title = "rng-discipline: no global np.random state outside utils/rng.py"
    severity = "error"
    exclude = ("utils/rng.py",)

    def check_file(self, ctx: FileContext) -> None:
        """Flag calls on the legacy global-state ``np.random`` API."""
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) < 3 or parts[0] not in ("np", "numpy") or parts[1] != "random":
                continue
            tail = parts[2]
            if tail in _ALLOWED_TAILS:
                continue
            ctx.report(
                self.rule_id,
                node,
                self.severity,
                f"np.random.{tail}() mutates/reads process-global RNG state",
                suggestion="take a seeded np.random.Generator (utils.rng."
                "ensure_rng / spawn_rngs) and call the method on it",
            )
