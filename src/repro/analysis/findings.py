"""Structured lint findings and the committed-baseline workflow.

A :class:`Finding` is one rule violation at one source location.  Findings
are *fingerprinted* without their line number (rule id, file, message), so a
baseline recorded once stays valid while unrelated edits shift code up and
down a file.  :class:`Baseline` stores fingerprint occurrence counts: running
the linter against a baseline only fails on findings *beyond* what the
baseline already acknowledges, which is how pre-existing debt stays visible
without blocking CI, while any **new** violation fails the gate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

#: Severity levels a rule may emit.  ``error`` findings gate CI; ``warning``
#: findings are reported but never fail the run.
SEVERITIES: Tuple[str, ...] = ("error", "warning")

#: Version tag written into baseline files so future format changes can be
#: detected instead of silently misread.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is relative to the lint root (posix separators) so findings and
    baselines are stable across checkouts; ``suggestion`` is the mechanical
    fix the rule recommends, shown by the human reporter and carried in the
    JSON report.
    """

    rule: str
    path: str
    line: int
    severity: str
    message: str
    suggestion: str = ""

    def fingerprint(self) -> str:
        """Line-number-free identity used for baseline matching.

        Two findings with the same rule, file and message are the same debt
        even after unrelated edits move them around the file.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        """The finding as a JSON-ready dict (the JSON reporter's row format)."""
        return asdict(self)

    def location(self) -> str:
        """``path:line`` — the clickable prefix of the human reporter."""
        return f"{self.path}:{self.line}"


@dataclass
class Baseline:
    """Acknowledged pre-existing findings, keyed by fingerprint with counts.

    The count matters: if a file legitimately has two identical-message
    violations baselined and a third appears, the third one fails the gate.
    """

    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Snapshot the given findings as the new acknowledged debt."""
        counts: Dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(this build reads version {BASELINE_VERSION})"
            )
        counts = data.get("findings", {})
        return cls(counts={str(k): int(v) for k, v in counts.items()})

    def save(self, path: Union[str, Path]) -> Path:
        """Write the baseline as sorted, human-diffable JSON."""
        path = Path(path)
        payload = {
            "version": BASELINE_VERSION,
            "findings": {k: self.counts[k] for k in sorted(self.counts)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path

    def filter_new(self, findings: Sequence[Finding]) -> Tuple[List[Finding], int]:
        """Split findings into (new, baselined-count).

        For each fingerprint, up to the baselined count of occurrences is
        absorbed; everything beyond that is new debt and is returned for the
        gate to fail on.
        """
        budget = dict(self.counts)
        new: List[Finding] = []
        absorbed = 0
        for finding in findings:
            key = finding.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                absorbed += 1
            else:
                new.append(finding)
        return new, absorbed
