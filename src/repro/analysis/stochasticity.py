"""Decision-stochasticity analysis (the Fig. 1 / Fig. 5 experiments).

The paper's motivation experiment runs the MBRL controller 10 times over the
same simulated day with identical disturbances and shows that its heating
setpoints vary widely (mean +/- one standard deviation band, plus the setpoint
probability histogram at a fixed time).  The same harness run on the extracted
decision-tree policy shows a standard deviation of exactly zero — the policy is
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.agents.base import BaseAgent
from repro.env.hvac_env import HVACEnvironment


@dataclass
class SetpointTrace:
    """Heating setpoints selected by one agent over repeated identical runs.

    ``setpoints`` has shape ``(num_runs, num_steps)``.
    """

    agent_name: str
    hours: np.ndarray
    setpoints: np.ndarray

    @property
    def num_runs(self) -> int:
        """Number of repeated runs in the trace."""
        return self.setpoints.shape[0]

    @property
    def num_steps(self) -> int:
        """Number of timesteps each run covers."""
        return self.setpoints.shape[1]

    @property
    def mean(self) -> np.ndarray:
        """Per-timestep mean setpoint across runs."""
        return self.setpoints.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        """Per-timestep setpoint standard deviation across runs."""
        return self.setpoints.std(axis=0)


@dataclass
class StochasticityReport:
    """Summary statistics of a :class:`SetpointTrace`."""

    agent_name: str
    mean_std: float
    max_std: float
    is_deterministic: bool
    setpoint_probabilities: Dict[float, float] = field(default_factory=dict)

    @staticmethod
    def from_trace(trace: SetpointTrace, probe_step: Optional[int] = None) -> "StochasticityReport":
        """Summarise one trace (probe defaults to the middle timestep)."""
        std = trace.std
        probe = probe_step if probe_step is not None else trace.num_steps // 2
        probe = min(max(probe, 0), trace.num_steps - 1)
        values, counts = np.unique(trace.setpoints[:, probe], return_counts=True)
        probabilities = {float(v): float(c) / trace.num_runs for v, c in zip(values, counts)}
        return StochasticityReport(
            agent_name=trace.agent_name,
            mean_std=float(std.mean()),
            max_std=float(std.max()),
            is_deterministic=bool(np.all(std < 1e-9)),
            setpoint_probabilities=probabilities,
        )


def collect_setpoint_traces(
    agent: BaseAgent,
    environment_factory: Callable[[], HVACEnvironment],
    num_runs: int = 10,
    start_hour: float = 8.0,
    end_hour: float = 22.0,
    day_index: int = 0,
) -> SetpointTrace:
    """Query the agent repeatedly over one day with fixed disturbances.

    Every run uses a freshly-built environment from ``environment_factory`` so
    the weather, occupancy and plant state are identical across runs; only the
    agent's internal randomness (if any) differs.  To isolate *decision*
    stochasticity from closed-loop drift, the plant is driven by the agent's
    own decisions within each run (as in the paper's experiment) but every run
    starts from the same initial conditions.
    """
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    all_setpoints: List[List[float]] = []
    hours: List[float] = []
    for run in range(num_runs):
        environment = environment_factory()
        observation, _info = environment.reset()
        agent.reset()
        run_setpoints: List[float] = []
        run_hours: List[float] = []
        steps_per_day = environment.config.simulation.steps_per_day
        start_step = day_index * steps_per_day
        # Advance (with the default schedule) to the start of the analysis window.
        for step in range(start_step, min(environment.num_steps, (day_index + 1) * steps_per_day)):
            hour = environment.hour_of_day_at(step)
            action = agent.select_action(observation, environment, step)
            heating, _cooling = environment.action_space.to_pair(action)
            if start_hour <= hour <= end_hour:
                run_setpoints.append(float(heating))
                run_hours.append(hour)
            result = environment.step(action)
            observation = result.observation
            if result.truncated:
                break
        all_setpoints.append(run_setpoints)
        if run == 0:
            hours = run_hours
    # Defensive: all runs should have identical length since conditions are identical.
    min_len = min(len(run) for run in all_setpoints)
    matrix = np.array([run[:min_len] for run in all_setpoints])
    return SetpointTrace(
        agent_name=agent.name, hours=np.array(hours[:min_len]), setpoints=matrix
    )


def analyze_stochasticity(
    trace: SetpointTrace, probe_hour: Optional[float] = None
) -> StochasticityReport:
    """Summarise a setpoint trace; optionally probe the distribution at a given hour."""
    probe_step = None
    if probe_hour is not None and len(trace.hours) > 0:
        probe_step = int(np.argmin(np.abs(trace.hours - probe_hour)))
    return StochasticityReport.from_trace(trace, probe_step=probe_step)
