"""REP003 — the columnar schema contract, checked across modules.

Every layer boundary speaks :class:`~repro.data.schema.ColumnarBatch`
subclasses whose columns are *declared* in ``COLUMNS`` specs.  This rule
builds the project-wide schema model (:class:`~repro.analysis.context.
ProjectContext.batch_classes`) and enforces three contracts:

1. **Declaration** — every ``ColumnSpec`` in a class's ``COLUMNS`` names an
   annotated field of that class (a spec for a column the dataclass doesn't
   carry validates nothing).
2. **Consumption** — an attribute read on a value statically known to be a
   batch (annotated parameter, or assigned from a batch constructor /
   classmethod) must be a declared column, field, method, property or
   inherited API member.  A typo'd column name fails lint instead of
   becoming a runtime ``AttributeError`` three processes deep.
3. **Production** — when a batch constructor is handed a freshly allocated
   numpy array with an explicit ``dtype=``, that dtype must agree with the
   column's declared kind (``int`` columns get integer dtypes, ``id``
   columns get strings, ...), so producer and consumer can never disagree
   about a column's wire type.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Union

from repro.analysis.context import (
    FileContext,
    ProjectContext,
    call_name,
    keyword_value,
)
from repro.analysis.registry import LintRule, register_rule

#: dtype expressions (rendered via ``ast.unparse``) compatible with each
#: ``ColumnSpec`` kind.  Matching is on the dotted tail, so ``np.int64`` and
#: ``numpy.int64`` both resolve to ``int64``.
_KIND_DTYPES = {
    "int": {"int", "int8", "int16", "int32", "int64", "intp"},
    "float": {"float", "float32", "float64", "floating", "double"},
    "bool": {"bool", "bool_"},
    "id": {"str", "str_", "unicode_"},
}

#: Numpy constructors whose explicit ``dtype=`` argument is checkable.
_NP_CONSTRUCTORS = {"zeros", "empty", "ones", "full", "asarray", "array"}


def _dtype_tail(expr: ast.expr) -> Optional[str]:
    """Normalise a ``dtype=`` expression to its dotted tail (``int64``)."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    rendered = None
    if isinstance(expr, (ast.Name, ast.Attribute)):
        rendered = ast.unparse(expr)
    if rendered is None:
        return None
    return rendered.split(".")[-1]


@register_rule
class SchemaContractRule(LintRule):
    """Cross-module producer/consumer validation of ``ColumnSpec`` contracts."""

    rule_id = "REP003"
    title = "schema-contract: batch attribute reads and producer dtypes must match ColumnSpecs"
    severity = "error"

    def check_project(self, project: ProjectContext) -> None:
        """Run the declaration check per class, then the consumer/producer
        checks over every file that names a batch class."""
        by_path: Dict[str, FileContext] = {ctx.relpath: ctx for ctx in project.files}
        for info in project.batch_classes.values():
            ctx = by_path.get(info.path)
            if ctx is None or not self.applies_to(info.path):
                continue
            declared = set(info.fields) | info.class_attrs
            # Only the *base* classes' API counts as inherited — the class's
            # own specs must not vouch for themselves.
            inherited = set()
            for base in info.bases:
                inherited |= project.class_api(base)
            for column in info.specs:
                if column not in declared and column not in inherited:
                    ctx.report_line(
                        self.rule_id,
                        info.line,
                        self.severity,
                        f"ColumnSpec {column!r} on {info.name} has no matching "
                        "declared field",
                        suggestion="declare the column as an annotated dataclass "
                        "field or drop the spec",
                    )
        for ctx in project.files:
            if ctx.tree is None or not self.applies_to(ctx.relpath):
                continue
            self._check_consumers(project, ctx)

    # ------------------------------------------------------------ helpers
    def _check_consumers(self, project: ProjectContext, ctx: FileContext) -> None:
        """Validate attribute reads and constructor dtypes in one module."""
        for func in ctx.functions():
            bindings: Dict[str, str] = {}
            args = func.args
            all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for arg in all_args:
                cls = project.annotation_class(arg.annotation)
                if cls is not None:
                    bindings[arg.arg] = cls
            if all_args and all_args[0].arg == "self":
                enclosing = self._enclosing_batch_class(project, ctx, func)
                if enclosing is not None:
                    bindings["self"] = enclosing
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    cls = self._constructed_class(project, node.value)
                    if cls is not None:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                bindings[target.id] = cls
            if not bindings:
                self._check_constructors(project, ctx, func)
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in bindings
                ):
                    cls = bindings[node.value.id]
                    attr = node.attr
                    if attr.startswith("__") or attr in project.class_api(cls):
                        continue
                    ctx.report(
                        self.rule_id,
                        node,
                        self.severity,
                        f"attribute {attr!r} read on {cls} is not a declared "
                        "column, field or method",
                        suggestion=f"declare {attr!r} in {cls}'s ColumnSpecs/fields "
                        "or fix the attribute name",
                    )
            self._check_constructors(project, ctx, func)

    def _enclosing_batch_class(
        self,
        project: ProjectContext,
        ctx: FileContext,
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> Optional[str]:
        """The batch class whose body directly contains ``func``, if any."""
        if ctx.tree is None:
            return None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                if node.name in project.batch_classes:
                    return node.name
        return None

    def _constructed_class(
        self, project: ProjectContext, call: ast.Call
    ) -> Optional[str]:
        """The batch class a call constructs (``Cls(...)`` / ``Cls.from_*``)."""
        name = call_name(call)
        if name is None:
            return None
        head = name.split(".")[0]
        if head in project.batch_classes:
            return head
        return None

    def _check_constructors(
        self,
        project: ProjectContext,
        ctx: FileContext,
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> None:
        """Check explicit producer dtypes against declared column kinds."""
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name not in project.batch_classes:
                continue  # direct constructor calls only (not classmethods)
            info = project.batch_classes[name]
            for kw in node.keywords:
                if kw.arg is None or kw.arg not in info.specs:
                    continue
                dtype_expr = self._np_call_dtype(kw.value)
                if dtype_expr is None:
                    continue
                tail = _dtype_tail(dtype_expr)
                kind = info.specs[kw.arg]
                allowed = _KIND_DTYPES.get(kind, set())
                if tail is not None and allowed and tail not in allowed:
                    ctx.report(
                        self.rule_id,
                        kw.value,
                        self.severity,
                        f"column {kw.arg!r} of {name} is declared {kind!r} but "
                        f"the producer allocates dtype {tail}",
                        suggestion=f"allocate with a dtype matching the declared "
                        f"{kind!r} kind (e.g. "
                        f"{sorted(allowed)[0] if allowed else 'the spec dtype'})",
                    )

    @staticmethod
    def _np_call_dtype(expr: ast.expr) -> Optional[ast.expr]:
        """The explicit ``dtype=`` of a numpy constructor expression."""
        if not isinstance(expr, ast.Call):
            return None
        name = call_name(expr)
        if name is None or "." not in name:
            return None
        alias, _, func_name = name.rpartition(".")
        if alias not in ("np", "numpy") or func_name not in _NP_CONSTRUCTORS:
            return None
        return keyword_value(expr, "dtype")
