"""Climate profiles for the cities used in the paper.

The paper evaluates on two climate-distinct cities, Pittsburgh (ASHRAE 4A,
mixed-humid) and Tucson (ASHRAE 2B, hot-dry), and uses New York (also 4A) in
the Fig. 3 noise-level study as the "similar city".  Each profile stores the
January statistics needed by the synthetic weather generator: mean daily
minimum/maximum drybulb temperature, humidity level, wind climatology, latitude
(for the solar model) and typical cloudiness.

January values are approximations of long-term NOAA normals; the reproduction
only needs the relative character of the climates (cold and cloudy vs mild and
sunny), not the exact 2021 trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ClimateProfile:
    """January climate statistics for one city."""

    name: str
    ashrae_zone: str
    latitude_deg: float
    longitude_deg: float
    january_tmin_c: float
    january_tmax_c: float
    temperature_day_to_day_std_c: float
    mean_relative_humidity: float
    relative_humidity_std: float
    mean_wind_speed_ms: float
    wind_speed_std_ms: float
    mean_cloud_cover: float
    cloud_cover_std: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.mean_cloud_cover <= 1.0):
            raise ValueError("mean_cloud_cover must be in [0, 1]")
        if not (0.0 <= self.mean_relative_humidity <= 100.0):
            raise ValueError("mean_relative_humidity must be a percentage")
        if self.january_tmin_c > self.january_tmax_c:
            raise ValueError("january_tmin_c must not exceed january_tmax_c")

    @property
    def january_mean_c(self) -> float:
        return 0.5 * (self.january_tmin_c + self.january_tmax_c)

    @property
    def diurnal_amplitude_c(self) -> float:
        return 0.5 * (self.january_tmax_c - self.january_tmin_c)


_CLIMATES: Dict[str, ClimateProfile] = {
    "pittsburgh": ClimateProfile(
        name="pittsburgh",
        ashrae_zone="4A",
        latitude_deg=40.44,
        longitude_deg=-79.99,
        january_tmin_c=-5.5,
        january_tmax_c=2.5,
        temperature_day_to_day_std_c=4.0,
        mean_relative_humidity=68.0,
        relative_humidity_std=12.0,
        mean_wind_speed_ms=4.3,
        wind_speed_std_ms=1.8,
        mean_cloud_cover=0.68,
        cloud_cover_std=0.22,
    ),
    "new_york": ClimateProfile(
        name="new_york",
        ashrae_zone="4A",
        latitude_deg=40.71,
        longitude_deg=-74.01,
        january_tmin_c=-2.8,
        january_tmax_c=4.3,
        temperature_day_to_day_std_c=3.8,
        mean_relative_humidity=62.0,
        relative_humidity_std=12.0,
        mean_wind_speed_ms=4.9,
        wind_speed_std_ms=1.9,
        mean_cloud_cover=0.60,
        cloud_cover_std=0.22,
    ),
    "tucson": ClimateProfile(
        name="tucson",
        ashrae_zone="2B",
        latitude_deg=32.22,
        longitude_deg=-110.97,
        january_tmin_c=4.5,
        january_tmax_c=18.5,
        temperature_day_to_day_std_c=3.0,
        mean_relative_humidity=45.0,
        relative_humidity_std=14.0,
        mean_wind_speed_ms=3.1,
        wind_speed_std_ms=1.4,
        mean_cloud_cover=0.30,
        cloud_cover_std=0.20,
    ),
}


def available_climates() -> List[str]:
    """Names of the built-in climate profiles."""
    return sorted(_CLIMATES)


def get_climate(name: str) -> ClimateProfile:
    """Look up a climate profile by city name (case-insensitive)."""
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    if key not in _CLIMATES:
        raise KeyError(
            f"Unknown climate {name!r}. Available climates: {', '.join(available_climates())}"
        )
    return _CLIMATES[key]
