"""Climate profiles for the cities used in the paper (and beyond).

The paper evaluates on two climate-distinct cities, Pittsburgh (ASHRAE 4A,
mixed-humid) and Tucson (ASHRAE 2B, hot-dry), and uses New York (also 4A) in
the Fig. 3 noise-level study as the "similar city".  The scenario grid of
:mod:`repro.experiments` sweeps a much wider range of ASHRAE climate zones, so
this module ships profiles for one representative city per zone, plus
descriptor aliases (``hot_humid``, ``marine``, ...) that resolve to those
representatives.

Each profile stores the January and July statistics needed by the synthetic
weather generator: mean daily minimum/maximum drybulb temperature, humidity
level, wind climatology, latitude (for the solar model) and typical
cloudiness.  Values for other months are interpolated along an annual cosine
cycle anchored at the January (coldest) and July (warmest) statistics.

Values are approximations of long-term NOAA normals; the reproduction only
needs the relative character of the climates (cold and cloudy vs mild and
sunny), not the exact 2021 trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ClimateProfile:
    """January/July climate statistics for one city."""

    name: str
    ashrae_zone: str
    latitude_deg: float
    longitude_deg: float
    january_tmin_c: float
    january_tmax_c: float
    temperature_day_to_day_std_c: float
    mean_relative_humidity: float
    relative_humidity_std: float
    mean_wind_speed_ms: float
    wind_speed_std_ms: float
    mean_cloud_cover: float
    cloud_cover_std: float
    #: July extremes anchoring the annual cycle; default to a generic
    #: mid-latitude seasonal swing when a profile predates them.
    july_tmin_c: Optional[float] = None
    july_tmax_c: Optional[float] = None

    #: Fallback January-to-July warming when July statistics are not given.
    DEFAULT_SEASONAL_SWING_C = 18.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.mean_cloud_cover <= 1.0):
            raise ValueError("mean_cloud_cover must be in [0, 1]")
        if not (0.0 <= self.mean_relative_humidity <= 100.0):
            raise ValueError("mean_relative_humidity must be a percentage")
        if self.january_tmin_c > self.january_tmax_c:
            raise ValueError("january_tmin_c must not exceed january_tmax_c")
        if (self.july_tmin_c is None) != (self.july_tmax_c is None):
            raise ValueError("july_tmin_c and july_tmax_c must be given together")
        if self.july_tmin_c is not None and self.july_tmin_c > self.july_tmax_c:
            raise ValueError("july_tmin_c must not exceed july_tmax_c")

    # --------------------------------------------------------------- january
    @property
    def january_mean_c(self) -> float:
        return 0.5 * (self.january_tmin_c + self.january_tmax_c)

    @property
    def diurnal_amplitude_c(self) -> float:
        return 0.5 * (self.january_tmax_c - self.january_tmin_c)

    # ---------------------------------------------------------------- annual
    def _july(self) -> tuple:
        if self.july_tmin_c is not None:
            return self.july_tmin_c, self.july_tmax_c
        swing = self.DEFAULT_SEASONAL_SWING_C
        return self.january_tmin_c + swing, self.january_tmax_c + swing

    @staticmethod
    def _annual_interp(january_value: float, july_value: float, month: int) -> float:
        """Cosine annual cycle through the January and July anchor values."""
        mid = 0.5 * (january_value + july_value)
        amplitude = 0.5 * (july_value - january_value)
        return mid - amplitude * math.cos(2.0 * math.pi * (month - 1) / 12.0)

    def monthly_tmin_c(self, month: int) -> float:
        """Mean daily minimum temperature for a month (1-12)."""
        july_tmin, _ = self._july()
        return self._annual_interp(self.january_tmin_c, july_tmin, month)

    def monthly_tmax_c(self, month: int) -> float:
        """Mean daily maximum temperature for a month (1-12)."""
        _, july_tmax = self._july()
        return self._annual_interp(self.january_tmax_c, july_tmax, month)

    def monthly_mean_c(self, month: int) -> float:
        """Mean drybulb temperature for a month; equals ``january_mean_c`` for month 1."""
        return 0.5 * (self.monthly_tmin_c(month) + self.monthly_tmax_c(month))

    def monthly_diurnal_amplitude_c(self, month: int) -> float:
        """Half the diurnal range for a month; equals ``diurnal_amplitude_c`` for month 1."""
        return 0.5 * (self.monthly_tmax_c(month) - self.monthly_tmin_c(month))


_CLIMATES: Dict[str, ClimateProfile] = {
    "pittsburgh": ClimateProfile(
        name="pittsburgh",
        ashrae_zone="4A",
        latitude_deg=40.44,
        longitude_deg=-79.99,
        january_tmin_c=-5.5,
        january_tmax_c=2.5,
        temperature_day_to_day_std_c=4.0,
        mean_relative_humidity=68.0,
        relative_humidity_std=12.0,
        mean_wind_speed_ms=4.3,
        wind_speed_std_ms=1.8,
        mean_cloud_cover=0.68,
        cloud_cover_std=0.22,
        july_tmin_c=17.5,
        july_tmax_c=28.5,
    ),
    "new_york": ClimateProfile(
        name="new_york",
        ashrae_zone="4A",
        latitude_deg=40.71,
        longitude_deg=-74.01,
        january_tmin_c=-2.8,
        january_tmax_c=4.3,
        temperature_day_to_day_std_c=3.8,
        mean_relative_humidity=62.0,
        relative_humidity_std=12.0,
        mean_wind_speed_ms=4.9,
        wind_speed_std_ms=1.9,
        mean_cloud_cover=0.60,
        cloud_cover_std=0.22,
        july_tmin_c=20.5,
        july_tmax_c=29.5,
    ),
    "tucson": ClimateProfile(
        name="tucson",
        ashrae_zone="2B",
        latitude_deg=32.22,
        longitude_deg=-110.97,
        january_tmin_c=4.5,
        january_tmax_c=18.5,
        temperature_day_to_day_std_c=3.0,
        mean_relative_humidity=45.0,
        relative_humidity_std=14.0,
        mean_wind_speed_ms=3.1,
        wind_speed_std_ms=1.4,
        mean_cloud_cover=0.30,
        cloud_cover_std=0.20,
        july_tmin_c=25.0,
        july_tmax_c=38.0,
    ),
    "miami": ClimateProfile(
        name="miami",
        ashrae_zone="1A",
        latitude_deg=25.76,
        longitude_deg=-80.19,
        january_tmin_c=15.5,
        january_tmax_c=24.5,
        temperature_day_to_day_std_c=2.0,
        mean_relative_humidity=72.0,
        relative_humidity_std=10.0,
        mean_wind_speed_ms=4.2,
        wind_speed_std_ms=1.5,
        mean_cloud_cover=0.45,
        cloud_cover_std=0.20,
        july_tmin_c=25.5,
        july_tmax_c=32.5,
    ),
    "houston": ClimateProfile(
        name="houston",
        ashrae_zone="2A",
        latitude_deg=29.76,
        longitude_deg=-95.37,
        january_tmin_c=4.5,
        january_tmax_c=17.0,
        temperature_day_to_day_std_c=4.0,
        mean_relative_humidity=75.0,
        relative_humidity_std=12.0,
        mean_wind_speed_ms=3.6,
        wind_speed_std_ms=1.5,
        mean_cloud_cover=0.55,
        cloud_cover_std=0.25,
        july_tmin_c=24.5,
        july_tmax_c=34.5,
    ),
    "atlanta": ClimateProfile(
        name="atlanta",
        ashrae_zone="3A",
        latitude_deg=33.75,
        longitude_deg=-84.39,
        january_tmin_c=1.5,
        january_tmax_c=11.5,
        temperature_day_to_day_std_c=4.0,
        mean_relative_humidity=65.0,
        relative_humidity_std=13.0,
        mean_wind_speed_ms=4.1,
        wind_speed_std_ms=1.6,
        mean_cloud_cover=0.55,
        cloud_cover_std=0.25,
        july_tmin_c=21.5,
        july_tmax_c=32.0,
    ),
    "los_angeles": ClimateProfile(
        name="los_angeles",
        ashrae_zone="3B",
        latitude_deg=34.05,
        longitude_deg=-118.24,
        january_tmin_c=9.0,
        january_tmax_c=20.0,
        temperature_day_to_day_std_c=2.5,
        mean_relative_humidity=60.0,
        relative_humidity_std=15.0,
        mean_wind_speed_ms=3.0,
        wind_speed_std_ms=1.3,
        mean_cloud_cover=0.35,
        cloud_cover_std=0.25,
        july_tmin_c=17.5,
        july_tmax_c=28.5,
    ),
    "san_francisco": ClimateProfile(
        name="san_francisco",
        ashrae_zone="3C",
        latitude_deg=37.77,
        longitude_deg=-122.42,
        january_tmin_c=7.5,
        january_tmax_c=14.0,
        temperature_day_to_day_std_c=2.2,
        mean_relative_humidity=75.0,
        relative_humidity_std=12.0,
        mean_wind_speed_ms=4.0,
        wind_speed_std_ms=1.6,
        mean_cloud_cover=0.55,
        cloud_cover_std=0.25,
        july_tmin_c=12.5,
        july_tmax_c=21.0,
    ),
    "seattle": ClimateProfile(
        name="seattle",
        ashrae_zone="4C",
        latitude_deg=47.61,
        longitude_deg=-122.33,
        january_tmin_c=2.5,
        january_tmax_c=8.0,
        temperature_day_to_day_std_c=2.8,
        mean_relative_humidity=78.0,
        relative_humidity_std=10.0,
        mean_wind_speed_ms=3.9,
        wind_speed_std_ms=1.5,
        mean_cloud_cover=0.80,
        cloud_cover_std=0.15,
        july_tmin_c=13.5,
        july_tmax_c=25.0,
    ),
    "chicago": ClimateProfile(
        name="chicago",
        ashrae_zone="5A",
        latitude_deg=41.88,
        longitude_deg=-87.63,
        january_tmin_c=-7.5,
        january_tmax_c=0.0,
        temperature_day_to_day_std_c=4.5,
        mean_relative_humidity=70.0,
        relative_humidity_std=12.0,
        mean_wind_speed_ms=4.8,
        wind_speed_std_ms=1.9,
        mean_cloud_cover=0.65,
        cloud_cover_std=0.22,
        july_tmin_c=17.5,
        july_tmax_c=29.0,
    ),
    "denver": ClimateProfile(
        name="denver",
        ashrae_zone="5B",
        latitude_deg=39.74,
        longitude_deg=-104.99,
        january_tmin_c=-8.0,
        january_tmax_c=7.0,
        temperature_day_to_day_std_c=4.5,
        mean_relative_humidity=50.0,
        relative_humidity_std=15.0,
        mean_wind_speed_ms=3.6,
        wind_speed_std_ms=1.6,
        mean_cloud_cover=0.45,
        cloud_cover_std=0.22,
        july_tmin_c=13.5,
        july_tmax_c=31.5,
    ),
    "minneapolis": ClimateProfile(
        name="minneapolis",
        ashrae_zone="6A",
        latitude_deg=44.98,
        longitude_deg=-93.27,
        january_tmin_c=-13.5,
        january_tmax_c=-4.5,
        temperature_day_to_day_std_c=5.0,
        mean_relative_humidity=70.0,
        relative_humidity_std=10.0,
        mean_wind_speed_ms=4.4,
        wind_speed_std_ms=1.8,
        mean_cloud_cover=0.65,
        cloud_cover_std=0.20,
        july_tmin_c=17.0,
        july_tmax_c=28.5,
    ),
    "duluth": ClimateProfile(
        name="duluth",
        ashrae_zone="7",
        latitude_deg=46.79,
        longitude_deg=-92.10,
        january_tmin_c=-17.5,
        january_tmax_c=-8.5,
        temperature_day_to_day_std_c=5.0,
        mean_relative_humidity=72.0,
        relative_humidity_std=10.0,
        mean_wind_speed_ms=4.9,
        wind_speed_std_ms=1.9,
        mean_cloud_cover=0.68,
        cloud_cover_std=0.20,
        july_tmin_c=13.0,
        july_tmax_c=24.5,
    ),
}

#: ASHRAE-style climate descriptors resolving to a representative city.
CLIMATE_ALIASES: Dict[str, str] = {
    "very_hot_humid": "miami",
    "hot_humid": "houston",
    "hot_dry": "tucson",
    "warm_humid": "atlanta",
    "warm_dry": "los_angeles",
    "warm_marine": "san_francisco",
    "mixed_humid": "pittsburgh",
    "mixed_marine": "seattle",
    "cool_humid": "chicago",
    "cool_dry": "denver",
    "cold": "minneapolis",
    "very_cold": "duluth",
}


def available_climates() -> List[str]:
    """Names of the built-in climate profiles."""
    return sorted(_CLIMATES)


def available_climate_aliases() -> Dict[str, str]:
    """Descriptor aliases (``hot_humid`` ...) and the city each resolves to."""
    return dict(CLIMATE_ALIASES)


def get_climate(name: str) -> ClimateProfile:
    """Look up a climate profile by city name or descriptor alias (case-insensitive)."""
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    key = CLIMATE_ALIASES.get(key, key)
    if key not in _CLIMATES:
        raise KeyError(
            f"Unknown climate {name!r}. Available climates: {', '.join(available_climates())}; "
            f"aliases: {', '.join(sorted(CLIMATE_ALIASES))}"
        )
    return _CLIMATES[key]
