"""A simple clear-sky solar radiation model.

EnergyPlus computes solar gains from detailed TMY3 irradiance columns.  Here we
use a standard reduced model: solar elevation from latitude, declination and
hour angle, and a clear-sky global horizontal irradiance proportional to the
sine of the elevation with an atmospheric attenuation factor.  Cloud cover
(stochastic, from the climate profile) multiplies the clear-sky value in the
weather generator.
"""

from __future__ import annotations

import numpy as np

SOLAR_CONSTANT_W_M2 = 1361.0
#: Broad-band clear-sky transmittance of the atmosphere (dimensionless).
CLEAR_SKY_TRANSMITTANCE = 0.72


def solar_declination_rad(day_of_year: float) -> float:
    """Solar declination angle (radians) for a given day of the year (0-based)."""
    return np.deg2rad(23.45) * np.sin(2.0 * np.pi * (284.0 + day_of_year + 1.0) / 365.0)


def solar_elevation_angle(latitude_deg: float, day_of_year: float, hour_of_day: float) -> float:
    """Solar elevation angle in radians (negative below the horizon)."""
    lat = np.deg2rad(latitude_deg)
    decl = solar_declination_rad(day_of_year)
    hour_angle = np.deg2rad(15.0 * (hour_of_day - 12.0))
    sin_elev = np.sin(lat) * np.sin(decl) + np.cos(lat) * np.cos(decl) * np.cos(hour_angle)
    return float(np.arcsin(np.clip(sin_elev, -1.0, 1.0)))


def clear_sky_radiation(latitude_deg: float, day_of_year: float, hour_of_day: float) -> float:
    """Clear-sky global horizontal irradiance in W/m^2 (0 at night)."""
    elevation = solar_elevation_angle(latitude_deg, day_of_year, hour_of_day)
    if elevation <= 0.0:
        return 0.0
    air_mass = 1.0 / max(np.sin(elevation), 1e-3)
    direct = SOLAR_CONSTANT_W_M2 * (CLEAR_SKY_TRANSMITTANCE ** (air_mass ** 0.678))
    horizontal = direct * np.sin(elevation)
    # Add a small diffuse fraction so overcast mornings are not exactly zero.
    diffuse = 0.1 * SOLAR_CONSTANT_W_M2 * np.sin(elevation)
    return float(max(horizontal + diffuse, 0.0))
