"""Synthetic TMY-style weather generation.

The paper drives EnergyPlus with 2021 TMY3 weather files for Pittsburgh
(ASHRAE climate zone 4A) and Tucson (ASHRAE 2B).  Those files are not
available offline, so this package synthesises weather traces with the correct
January statistics for each climate zone: diurnal temperature cycles with
climate-specific means and amplitudes, correlated relative humidity, gusty wind
and a clear-sky solar model modulated by stochastic cloud cover.

The generated traces expose exactly the disturbance variables of Table 1 in the
paper: outdoor air drybulb temperature, outdoor relative humidity, site wind
speed and site total radiation rate per area.
"""

from repro.weather.climates import (
    ClimateProfile,
    get_climate,
    available_climates,
    available_climate_aliases,
)
from repro.weather.solar import clear_sky_radiation, solar_elevation_angle
from repro.weather.tmy import WeatherSeries, WeatherGenerator, generate_weather

__all__ = [
    "ClimateProfile",
    "get_climate",
    "available_climates",
    "available_climate_aliases",
    "clear_sky_radiation",
    "solar_elevation_angle",
    "WeatherSeries",
    "WeatherGenerator",
    "generate_weather",
]
