"""Synthetic TMY-style weather trace generation.

The generator produces, for a requested number of days at a requested timestep,
the four disturbance variables of Table 1 in the paper that do not depend on
the building itself:

* Outdoor Air Drybulb Temperature (degrees C),
* Outdoor Air Relative Humidity (%),
* Site Wind Speed (m/s),
* Site Total Radiation Rate Per Area (W/m^2).

The traces are built from a deterministic diurnal skeleton (climate means,
diurnal cycle peaking mid-afternoon, clear-sky solar) plus stochastic weather
systems: a slowly varying day-to-day temperature anomaly (AR(1) across days),
correlated short-term noise, cloud episodes that jointly reduce solar and raise
humidity, and gusty wind.  All randomness flows through a single NumPy
generator so traces are reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.utils.config import SimulationConfig
from repro.utils.rng import RNGLike, ensure_rng
from repro.weather.climates import ClimateProfile, get_climate
from repro.weather.solar import clear_sky_radiation


@dataclass
class WeatherSeries:
    """A generated weather trace aligned with the simulation timestep."""

    city: str
    minutes_per_step: int
    outdoor_temperature: np.ndarray
    relative_humidity: np.ndarray
    wind_speed: np.ndarray
    solar_radiation: np.ndarray
    hour_of_day: np.ndarray = field(repr=False, default=None)
    day_of_year: np.ndarray = field(repr=False, default=None)

    def __post_init__(self) -> None:
        n = len(self.outdoor_temperature)
        for name in ("relative_humidity", "wind_speed", "solar_radiation"):
            arr = getattr(self, name)
            if len(arr) != n:
                raise ValueError(f"{name} has length {len(arr)}, expected {n}")
        if self.hour_of_day is None:
            steps_per_day = 24 * 60 // self.minutes_per_step
            idx = np.arange(n)
            self.hour_of_day = (idx % steps_per_day) * (self.minutes_per_step / 60.0)
        if self.day_of_year is None:
            steps_per_day = 24 * 60 // self.minutes_per_step
            self.day_of_year = np.arange(n) // steps_per_day

    def __len__(self) -> int:
        return len(self.outdoor_temperature)

    @property
    def num_steps(self) -> int:
        return len(self)

    def disturbance_at(self, step: int) -> Dict[str, float]:
        """Weather components of the disturbance vector at a timestep."""
        i = int(step) % len(self)
        return {
            "outdoor_temperature": float(self.outdoor_temperature[i]),
            "relative_humidity": float(self.relative_humidity[i]),
            "wind_speed": float(self.wind_speed[i]),
            "solar_radiation": float(self.solar_radiation[i]),
        }

    def slice(self, start: int, stop: int) -> "WeatherSeries":
        """Return a sub-trace covering ``[start, stop)``."""
        return WeatherSeries(
            city=self.city,
            minutes_per_step=self.minutes_per_step,
            outdoor_temperature=self.outdoor_temperature[start:stop].copy(),
            relative_humidity=self.relative_humidity[start:stop].copy(),
            wind_speed=self.wind_speed[start:stop].copy(),
            solar_radiation=self.solar_radiation[start:stop].copy(),
            hour_of_day=self.hour_of_day[start:stop].copy(),
            day_of_year=self.day_of_year[start:stop].copy(),
        )

    def as_matrix(self) -> np.ndarray:
        """Stack the four weather variables into an ``(n, 4)`` matrix."""
        return np.column_stack(
            [
                self.outdoor_temperature,
                self.relative_humidity,
                self.wind_speed,
                self.solar_radiation,
            ]
        )


class WeatherGenerator:
    """Generates :class:`WeatherSeries` traces for a climate profile."""

    #: Hour of day at which the diurnal temperature cycle peaks.
    PEAK_HOUR = 15.0

    def __init__(self, climate: ClimateProfile, simulation: Optional[SimulationConfig] = None):
        self.climate = climate
        self.simulation = simulation or SimulationConfig()

    def generate(self, seed: RNGLike = None, days: Optional[int] = None) -> WeatherSeries:
        """Generate a weather trace of ``days`` days (default: simulation config)."""
        rng = ensure_rng(seed)
        sim = self.simulation
        n_days = int(days) if days is not None else sim.days
        steps_per_day = sim.steps_per_day
        n = n_days * steps_per_day
        step_hours = sim.step_hours
        climate = self.climate

        hour_of_day = (np.arange(n) % steps_per_day) * step_hours
        day_of_year = (np.arange(n) // steps_per_day) + sim.start_day_of_year

        # Day-to-day temperature anomaly: AR(1) process across days, then
        # held piecewise-constant (with linear interpolation) within each day.
        anomaly_days = np.zeros(n_days + 1)
        phi = 0.7
        innovation_std = climate.temperature_day_to_day_std_c * np.sqrt(1.0 - phi**2)
        for d in range(1, n_days + 1):
            anomaly_days[d] = phi * anomaly_days[d - 1] + rng.normal(0.0, innovation_std)
        day_frac = (np.arange(n) % steps_per_day) / steps_per_day
        day_idx = np.arange(n) // steps_per_day
        anomaly = (1.0 - day_frac) * anomaly_days[day_idx] + day_frac * anomaly_days[day_idx + 1]

        # Diurnal cycle: sinusoid peaking at PEAK_HOUR, with the mean and
        # amplitude of the simulated month (January statistics for month 1,
        # July for month 7, cosine annual interpolation in between).
        month = sim.start_month
        diurnal = climate.monthly_diurnal_amplitude_c(month) * np.cos(
            2.0 * np.pi * (hour_of_day - self.PEAK_HOUR) / 24.0
        )
        short_noise = self._smooth_noise(rng, n, std=0.5, window=4)
        outdoor_temperature = climate.monthly_mean_c(month) + diurnal + anomaly + short_noise

        # Cloud cover episodes: AR(1) at the timestep level, clipped to [0, 1].
        cloud = np.empty(n)
        cloud[0] = np.clip(rng.normal(climate.mean_cloud_cover, climate.cloud_cover_std), 0.0, 1.0)
        rho = 0.98
        cloud_innov_std = climate.cloud_cover_std * np.sqrt(1.0 - rho**2)
        for i in range(1, n):
            drift = rho * (cloud[i - 1] - climate.mean_cloud_cover)
            cloud[i] = np.clip(
                climate.mean_cloud_cover + drift + rng.normal(0.0, cloud_innov_std), 0.0, 1.0
            )

        clear_sky = np.array(
            [
                clear_sky_radiation(climate.latitude_deg, float(d), float(h))
                for d, h in zip(day_of_year, hour_of_day)
            ]
        )
        solar_radiation = clear_sky * (1.0 - 0.75 * cloud)

        # Relative humidity: climate mean, higher when cloudy and at night,
        # lower mid-afternoon; clipped to a physical range.
        humidity = (
            climate.mean_relative_humidity
            + 15.0 * (cloud - climate.mean_cloud_cover)
            - 6.0 * np.cos(2.0 * np.pi * (hour_of_day - 3.0) / 24.0)
            + self._smooth_noise(rng, n, std=climate.relative_humidity_std * 0.3, window=8)
        )
        relative_humidity = np.clip(humidity, 5.0, 100.0)

        # Wind speed: log-normal-ish gusty process, never negative.
        wind = climate.mean_wind_speed_ms + self._smooth_noise(
            rng, n, std=climate.wind_speed_std_ms, window=6
        )
        wind_speed = np.clip(wind, 0.0, None)

        return WeatherSeries(
            city=climate.name,
            minutes_per_step=sim.minutes_per_step,
            outdoor_temperature=outdoor_temperature,
            relative_humidity=relative_humidity,
            wind_speed=wind_speed,
            solar_radiation=solar_radiation,
            hour_of_day=hour_of_day,
            day_of_year=day_of_year.astype(float),
        )

    @staticmethod
    def _smooth_noise(rng: np.random.Generator, n: int, std: float, window: int) -> np.ndarray:
        """White noise smoothed with a moving average to avoid step-to-step jumps."""
        if std <= 0.0:
            return np.zeros(n)
        raw = rng.normal(0.0, std, size=n + window)
        kernel = np.ones(window) / window
        smoothed = np.convolve(raw, kernel, mode="valid")[:n]
        # Re-scale so the smoothed process keeps roughly the requested std.
        scale = std / max(smoothed.std(), 1e-9)
        return smoothed * min(scale, 3.0)


def generate_weather(
    city: str,
    seed: RNGLike = None,
    days: Optional[int] = None,
    simulation: Optional[SimulationConfig] = None,
) -> WeatherSeries:
    """Convenience wrapper: generate a weather trace for a named city."""
    generator = WeatherGenerator(get_climate(city), simulation=simulation)
    return generator.generate(seed=seed, days=days)
