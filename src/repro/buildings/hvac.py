"""Idealised setpoint-tracking HVAC terminal unit with an energy meter.

Each zone has one unit.  Given the current zone temperature and the
heating/cooling setpoints selected by the controller, the unit behaves like a
proportional thermostat with finite capacity:

* if the zone is colder than ``heating_setpoint`` it delivers heating power
  proportional to the deficit (capped at the heating capacity),
* if the zone is warmer than ``cooling_setpoint`` it removes heat likewise,
* in between it idles apart from a small fan/parasitic draw while occupied.

Electric energy is metered through a COP per mode (heat-pump style), which is
how the kWh figures in the Fig. 4 reproduction are produced.  The reward
function (Eq. 2) does *not* use this meter — it uses the paper's setpoint-based
proxy — but the evaluation reports real metered energy, as EnergyPlus does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buildings.zones import ZoneParameters


@dataclass(frozen=True)
class HVACResult:
    """Outcome of one HVAC evaluation for one zone over one sub-step."""

    thermal_power_w: float
    electric_power_w: float
    mode: str  # "heating", "cooling" or "idle"

    def __post_init__(self) -> None:
        if self.mode not in ("heating", "cooling", "idle"):
            raise ValueError(f"Unknown HVAC mode {self.mode!r}")


class HVACUnit:
    """Proportional setpoint-tracking HVAC unit for one zone."""

    def __init__(
        self,
        zone: ZoneParameters,
        heating_cop: float = 3.2,
        cooling_cop: float = 3.4,
        proportional_gain_w_per_k: float = 2500.0,
        deadband_k: float = 0.1,
        parasitic_power_w: float = 25.0,
    ):
        if heating_cop <= 0 or cooling_cop <= 0:
            raise ValueError("COPs must be positive")
        if proportional_gain_w_per_k <= 0:
            raise ValueError("proportional_gain_w_per_k must be positive")
        self.zone = zone
        self.heating_cop = heating_cop
        self.cooling_cop = cooling_cop
        self.proportional_gain_w_per_k = proportional_gain_w_per_k
        self.deadband_k = deadband_k
        self.parasitic_power_w = parasitic_power_w

    def evaluate(
        self,
        zone_temperature_c: float,
        heating_setpoint_c: float,
        cooling_setpoint_c: float,
        occupied: bool = True,
    ) -> HVACResult:
        """Compute the thermal power injected into the zone and electric draw."""
        if heating_setpoint_c > cooling_setpoint_c:
            raise ValueError(
                "heating setpoint must not exceed cooling setpoint "
                f"({heating_setpoint_c} > {cooling_setpoint_c})"
            )
        heating_error = heating_setpoint_c - zone_temperature_c
        cooling_error = zone_temperature_c - cooling_setpoint_c

        if heating_error > self.deadband_k:
            thermal = min(
                self.proportional_gain_w_per_k * heating_error, self.zone.max_heating_power_w
            )
            electric = thermal / self.heating_cop + self.parasitic_power_w
            return HVACResult(thermal_power_w=thermal, electric_power_w=electric, mode="heating")

        if cooling_error > self.deadband_k:
            thermal = min(
                self.proportional_gain_w_per_k * cooling_error, self.zone.max_cooling_power_w
            )
            electric = thermal / self.cooling_cop + self.parasitic_power_w
            return HVACResult(thermal_power_w=-thermal, electric_power_w=electric, mode="cooling")

        idle_draw = self.parasitic_power_w if occupied else 0.0
        return HVACResult(thermal_power_w=0.0, electric_power_w=idle_draw, mode="idle")
