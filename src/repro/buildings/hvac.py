"""Idealised setpoint-tracking HVAC terminal unit with an energy meter.

Each zone has one unit.  Given the current zone temperature and the
heating/cooling setpoints selected by the controller, the unit behaves like a
proportional thermostat with finite capacity:

* if the zone is colder than ``heating_setpoint`` it delivers heating power
  proportional to the deficit (capped at the heating capacity),
* if the zone is warmer than ``cooling_setpoint`` it removes heat likewise,
* in between it idles apart from a small fan/parasitic draw while occupied.

Electric energy is metered through a COP per mode (heat-pump style), which is
how the kWh figures in the Fig. 4 reproduction are produced.  The reward
function (Eq. 2) does *not* use this meter — it uses the paper's setpoint-based
proxy — but the evaluation reports real metered energy, as EnergyPlus does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.buildings.zones import ZoneParameters


@dataclass(frozen=True)
class HVACResult:
    """Outcome of one HVAC evaluation for one zone over one sub-step."""

    thermal_power_w: float
    electric_power_w: float
    mode: str  # "heating", "cooling" or "idle"

    def __post_init__(self) -> None:
        if self.mode not in ("heating", "cooling", "idle"):
            raise ValueError(f"Unknown HVAC mode {self.mode!r}")


class HVACUnit:
    """Proportional setpoint-tracking HVAC unit for one zone."""

    def __init__(
        self,
        zone: ZoneParameters,
        heating_cop: float = 3.2,
        cooling_cop: float = 3.4,
        proportional_gain_w_per_k: float = 2500.0,
        deadband_k: float = 0.1,
        parasitic_power_w: float = 25.0,
    ):
        if heating_cop <= 0 or cooling_cop <= 0:
            raise ValueError("COPs must be positive")
        if proportional_gain_w_per_k <= 0:
            raise ValueError("proportional_gain_w_per_k must be positive")
        self.zone = zone
        self.heating_cop = heating_cop
        self.cooling_cop = cooling_cop
        self.proportional_gain_w_per_k = proportional_gain_w_per_k
        self.deadband_k = deadband_k
        self.parasitic_power_w = parasitic_power_w

    def evaluate(
        self,
        zone_temperature_c: float,
        heating_setpoint_c: float,
        cooling_setpoint_c: float,
        occupied: bool = True,
    ) -> HVACResult:
        """Compute the thermal power injected into the zone and electric draw."""
        if heating_setpoint_c > cooling_setpoint_c:
            raise ValueError(
                "heating setpoint must not exceed cooling setpoint "
                f"({heating_setpoint_c} > {cooling_setpoint_c})"
            )
        heating_error = heating_setpoint_c - zone_temperature_c
        cooling_error = zone_temperature_c - cooling_setpoint_c

        if heating_error > self.deadband_k:
            thermal = min(
                self.proportional_gain_w_per_k * heating_error, self.zone.max_heating_power_w
            )
            electric = thermal / self.heating_cop + self.parasitic_power_w
            return HVACResult(thermal_power_w=thermal, electric_power_w=electric, mode="heating")

        if cooling_error > self.deadband_k:
            thermal = min(
                self.proportional_gain_w_per_k * cooling_error, self.zone.max_cooling_power_w
            )
            electric = thermal / self.cooling_cop + self.parasitic_power_w
            return HVACResult(thermal_power_w=-thermal, electric_power_w=electric, mode="cooling")

        idle_draw = self.parasitic_power_w if occupied else 0.0
        return HVACResult(thermal_power_w=0.0, electric_power_w=idle_draw, mode="idle")


@dataclass(frozen=True)
class BatchedHVACResult:
    """Vectorised HVAC evaluation over ``(B, n_zones)`` zone temperatures."""

    thermal_power_w: np.ndarray
    electric_power_w: np.ndarray
    heating_mask: np.ndarray
    cooling_mask: np.ndarray


class BatchedHVACPlant:
    """All HVAC units of ``B`` buildings evaluated with one set of array ops.

    Built from per-building ``{zone name: HVACUnit}`` maps (typically ``B``
    identical plants).  Every array op mirrors :meth:`HVACUnit.evaluate`
    element-wise, so each ``(building, zone)`` cell is bit-identical to the
    scalar unit's result.
    """

    def __init__(self, unit_maps: Sequence[Dict[str, HVACUnit]], zone_names: Sequence[str]):
        if not unit_maps:
            raise ValueError("At least one building's HVAC units are required")
        self.zone_names = list(zone_names)
        units = [[unit_map[name] for name in self.zone_names] for unit_map in unit_maps]

        def stack(attr) -> np.ndarray:
            return np.array([[attr(u) for u in row] for row in units], dtype=float)

        self.heating_cop = stack(lambda u: u.heating_cop)
        self.cooling_cop = stack(lambda u: u.cooling_cop)
        self.gain_w_per_k = stack(lambda u: u.proportional_gain_w_per_k)
        self.deadband_k = stack(lambda u: u.deadband_k)
        self.parasitic_power_w = stack(lambda u: u.parasitic_power_w)
        self.max_heating_power_w = stack(lambda u: u.zone.max_heating_power_w)
        self.max_cooling_power_w = stack(lambda u: u.zone.max_cooling_power_w)

    @property
    def batch_size(self) -> int:
        return self.heating_cop.shape[0]

    def evaluate(
        self,
        zone_temperatures: np.ndarray,
        heating_setpoint_c: np.ndarray,
        cooling_setpoint_c: np.ndarray,
        occupied: np.ndarray,
    ) -> BatchedHVACResult:
        """Evaluate every unit: ``(B, n_zones)`` temperatures, ``(B,)`` setpoints."""
        temps = np.asarray(zone_temperatures, dtype=float)
        heating_sp = np.asarray(heating_setpoint_c, dtype=float).reshape(-1, 1)
        cooling_sp = np.asarray(cooling_setpoint_c, dtype=float).reshape(-1, 1)
        occupied = np.asarray(occupied, dtype=bool).reshape(-1, 1)
        if np.any(heating_sp > cooling_sp):
            raise ValueError("heating setpoint must not exceed cooling setpoint")

        heating_error = heating_sp - temps
        cooling_error = temps - cooling_sp
        heating_mask = heating_error > self.deadband_k
        cooling_mask = ~heating_mask & (cooling_error > self.deadband_k)

        heating_thermal = np.minimum(self.gain_w_per_k * heating_error, self.max_heating_power_w)
        cooling_thermal = np.minimum(self.gain_w_per_k * cooling_error, self.max_cooling_power_w)

        thermal = np.where(
            heating_mask, heating_thermal, np.where(cooling_mask, -cooling_thermal, 0.0)
        )
        electric = np.where(
            heating_mask,
            heating_thermal / self.heating_cop + self.parasitic_power_w,
            np.where(
                cooling_mask,
                cooling_thermal / self.cooling_cop + self.parasitic_power_w,
                np.where(occupied, self.parasitic_power_w, 0.0),
            ),
        )
        return BatchedHVACResult(
            thermal_power_w=thermal,
            electric_power_w=electric,
            heating_mask=heating_mask,
            cooling_mask=cooling_mask,
        )
