"""The complete simulated building: thermal network + HVAC units + gains.

:class:`Building` is the plant the environment steps.  One control step applies
a single (heating, cooling) setpoint pair to every zone's HVAC unit — matching
the Sinergym 5-zone environment the paper uses — integrates the RC network over
the control interval and meters the total HVAC electric energy.

The "controlled zone" designates which zone's temperature is exposed as the MDP
state ``s_t`` (the paper's state is the temperature of the controlled thermal
zone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.buildings.hvac import HVACUnit
from repro.buildings.thermal import (
    ThermalNetwork,
    ThermalState,
    ZoneGains,
    internal_gain_for_zone,
    solar_gain_for_zone,
)
from repro.buildings.zones import (
    InterZoneCoupling,
    ZoneParameters,
    five_zone_layout,
    total_floor_area,
)


@dataclass
class BuildingStepResult:
    """Everything produced by one control step of the building."""

    zone_temperatures: Dict[str, float]
    controlled_zone_temperature: float
    hvac_electric_energy_kwh: float
    hvac_thermal_energy_kwh: float
    heating_energy_kwh: float
    cooling_energy_kwh: float
    zone_modes: Dict[str, str]


class Building:
    """A multi-zone building with per-zone HVAC units."""

    def __init__(
        self,
        zones: Sequence[ZoneParameters],
        couplings: Sequence[InterZoneCoupling],
        controlled_zone: str,
        hvac_units: Optional[Dict[str, HVACUnit]] = None,
        hvac_substep_seconds: float = 180.0,
    ):
        self.network = ThermalNetwork(zones, couplings)
        if controlled_zone not in self.network.zone_names:
            raise KeyError(f"Controlled zone {controlled_zone!r} is not a zone of the building")
        self.controlled_zone = controlled_zone
        self.zones = list(zones)
        self.hvac_units = hvac_units or {z.name: HVACUnit(z) for z in self.zones}
        missing = set(self.network.zone_names) - set(self.hvac_units)
        if missing:
            raise ValueError(f"Missing HVAC units for zones: {sorted(missing)}")
        if hvac_substep_seconds <= 0:
            raise ValueError("hvac_substep_seconds must be positive")
        self.hvac_substep_seconds = float(hvac_substep_seconds)
        self._total_area = total_floor_area(self.zones)
        self._state = self.network.initial_state(20.0)

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> ThermalState:
        return self._state

    @property
    def zone_temperatures(self) -> Dict[str, float]:
        return {
            name: float(self._state.temperatures[i])
            for i, name in enumerate(self.network.zone_names)
        }

    @property
    def controlled_zone_temperature(self) -> float:
        return float(self._state.temperatures[self.network.zone_index(self.controlled_zone)])

    def reset(self, initial_temperature_c: float = 20.0, jitter_std: float = 0.0,
              rng: Optional[np.random.Generator] = None) -> Dict[str, float]:
        """Reset zone temperatures; optional per-zone Gaussian jitter."""
        self._state = self.network.initial_state(initial_temperature_c)
        if jitter_std > 0.0 and rng is not None:
            self._state.temperatures += rng.normal(0.0, jitter_std, size=len(self._state))
        return self.zone_temperatures

    # ------------------------------------------------------------------- step
    def step(
        self,
        heating_setpoint_c: float,
        cooling_setpoint_c: float,
        outdoor_temperature_c: float,
        wind_speed_ms: float,
        solar_radiation_w_m2: float,
        occupant_count: float,
        occupied: bool,
        duration_seconds: float,
    ) -> BuildingStepResult:
        """Advance the building by one control step under constant conditions.

        The HVAC thermal output is re-evaluated on a sub-interval grid
        (``hvac_substep_seconds``) so the thermostat reacts as the zone
        temperature moves within the control step, which mirrors how a real
        terminal unit modulates between 15-minute control decisions.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")

        electric_energy_j = 0.0
        thermal_energy_j = 0.0
        heating_energy_j = 0.0
        cooling_energy_j = 0.0
        last_modes: Dict[str, str] = {}

        remaining = float(duration_seconds)
        while remaining > 1e-9:
            interval = min(self.hvac_substep_seconds, remaining)
            gains: Dict[str, ZoneGains] = {}
            for zone in self.zones:
                idx = self.network.zone_index(zone.name)
                zone_temp = float(self._state.temperatures[idx])
                hvac = self.hvac_units[zone.name].evaluate(
                    zone_temperature_c=zone_temp,
                    heating_setpoint_c=heating_setpoint_c,
                    cooling_setpoint_c=cooling_setpoint_c,
                    occupied=occupied,
                )
                area_share = zone.floor_area_m2 / self._total_area
                gains[zone.name] = ZoneGains(
                    hvac_thermal_w=hvac.thermal_power_w,
                    solar_w=solar_gain_for_zone(zone, solar_radiation_w_m2),
                    internal_w=internal_gain_for_zone(zone, occupant_count, occupied, area_share),
                )
                electric_energy_j += hvac.electric_power_w * interval
                thermal_energy_j += abs(hvac.thermal_power_w) * interval
                if hvac.mode == "heating":
                    heating_energy_j += abs(hvac.thermal_power_w) * interval
                elif hvac.mode == "cooling":
                    cooling_energy_j += abs(hvac.thermal_power_w) * interval
                last_modes[zone.name] = hvac.mode

            self._state = self.network.step(
                self._state,
                outdoor_temperature_c=outdoor_temperature_c,
                wind_speed_ms=wind_speed_ms,
                gains=gains,
                duration_seconds=interval,
            )
            remaining -= interval

        joules_to_kwh = 1.0 / 3.6e6
        return BuildingStepResult(
            zone_temperatures=self.zone_temperatures,
            controlled_zone_temperature=self.controlled_zone_temperature,
            hvac_electric_energy_kwh=electric_energy_j * joules_to_kwh,
            hvac_thermal_energy_kwh=thermal_energy_j * joules_to_kwh,
            heating_energy_kwh=heating_energy_j * joules_to_kwh,
            cooling_energy_kwh=cooling_energy_j * joules_to_kwh,
            zone_modes=last_modes,
        )


def make_five_zone_building(hvac_substep_seconds: float = 180.0) -> Building:
    """Construct the 463 m^2 five-zone reference building used in the paper."""
    zones, couplings, controlled = five_zone_layout()
    return Building(
        zones=zones,
        couplings=couplings,
        controlled_zone=controlled,
        hvac_substep_seconds=hvac_substep_seconds,
    )
