"""Zone definitions for the five-zone reference building.

The layout mirrors the EnergyPlus ``5ZoneAutoDXVAV`` model used by Sinergym:
four perimeter zones facing the cardinal directions around one core zone, with
a total conditioned floor area of 463 m^2 (the figure quoted in the paper).
Perimeter zones have exterior envelope and windows; the core zone only couples
to its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ZoneParameters:
    """Thermal parameters of a single zone.

    Attributes
    ----------
    name:
        Zone identifier.
    floor_area_m2:
        Conditioned floor area.
    thermal_capacitance_j_per_k:
        Lumped thermal capacitance (air + furniture + light mass).
    envelope_ua_w_per_k:
        Envelope conductance to the outdoor air (walls + roof share + windows).
    window_area_m2:
        Glazing area used to convert solar irradiance into a heat gain.
    solar_heat_gain_coefficient:
        Fraction of incident solar radiation transmitted into the zone.
    infiltration_ua_per_wind_w_per_k_per_ms:
        Additional conductance per unit wind speed, modelling infiltration.
    equipment_gain_w:
        Constant plug/lighting gain while the building is occupied.
    max_heating_power_w:
        Heating capacity of the zone terminal unit.
    max_cooling_power_w:
        Cooling capacity of the zone terminal unit.
    """

    name: str
    floor_area_m2: float
    thermal_capacitance_j_per_k: float
    envelope_ua_w_per_k: float
    window_area_m2: float
    solar_heat_gain_coefficient: float = 0.4
    infiltration_ua_per_wind_w_per_k_per_ms: float = 1.5
    equipment_gain_w: float = 300.0
    max_heating_power_w: float = 6000.0
    max_cooling_power_w: float = 6000.0

    def __post_init__(self) -> None:
        if self.floor_area_m2 <= 0:
            raise ValueError("floor_area_m2 must be positive")
        if self.thermal_capacitance_j_per_k <= 0:
            raise ValueError("thermal_capacitance_j_per_k must be positive")
        if self.envelope_ua_w_per_k < 0:
            raise ValueError("envelope_ua_w_per_k must be non-negative")


@dataclass(frozen=True)
class InterZoneCoupling:
    """Conductive coupling between two zones (symmetric)."""

    zone_a: str
    zone_b: str
    ua_w_per_k: float

    def __post_init__(self) -> None:
        if self.zone_a == self.zone_b:
            raise ValueError("A zone cannot couple to itself")
        if self.ua_w_per_k < 0:
            raise ValueError("ua_w_per_k must be non-negative")


#: Volumetric heat capacity of air [J/(m^3 K)] times an effective-mass multiplier.
_AIR_HEAT_CAPACITY_J_M3_K = 1210.0
_EFFECTIVE_MASS_MULTIPLIER = 18.0
_ZONE_HEIGHT_M = 3.0


def _capacitance_for_area(area_m2: float) -> float:
    """Lumped capacitance from floor area (air volume times a mass multiplier)."""
    volume = area_m2 * _ZONE_HEIGHT_M
    return volume * _AIR_HEAT_CAPACITY_J_M3_K * _EFFECTIVE_MASS_MULTIPLIER


def five_zone_layout() -> Tuple[List[ZoneParameters], List[InterZoneCoupling], str]:
    """Return the five-zone building layout.

    Returns
    -------
    zones:
        Zone parameter list (core + four perimeter zones, 463 m^2 total).
    couplings:
        Inter-zone conductances (each perimeter zone couples to the core and to
        its two adjacent perimeter zones).
    controlled_zone:
        Name of the zone whose temperature is the control state in the paper's
        MDP formulation (the core zone).
    """
    core_area = 183.0
    perimeter_area = 70.0  # 4 x 70 + 183 = 463 m^2

    zones = [
        ZoneParameters(
            name="core",
            floor_area_m2=core_area,
            thermal_capacitance_j_per_k=_capacitance_for_area(core_area),
            envelope_ua_w_per_k=22.0,  # roof only
            window_area_m2=0.0,
            equipment_gain_w=600.0,
            max_heating_power_w=9000.0,
            max_cooling_power_w=9000.0,
        ),
        ZoneParameters(
            name="perimeter_north",
            floor_area_m2=perimeter_area,
            thermal_capacitance_j_per_k=_capacitance_for_area(perimeter_area),
            envelope_ua_w_per_k=52.0,
            window_area_m2=8.0,
            equipment_gain_w=250.0,
        ),
        ZoneParameters(
            name="perimeter_east",
            floor_area_m2=perimeter_area,
            thermal_capacitance_j_per_k=_capacitance_for_area(perimeter_area),
            envelope_ua_w_per_k=50.0,
            window_area_m2=10.0,
            equipment_gain_w=250.0,
        ),
        ZoneParameters(
            name="perimeter_south",
            floor_area_m2=perimeter_area,
            thermal_capacitance_j_per_k=_capacitance_for_area(perimeter_area),
            envelope_ua_w_per_k=52.0,
            window_area_m2=12.0,
            solar_heat_gain_coefficient=0.45,
            equipment_gain_w=250.0,
        ),
        ZoneParameters(
            name="perimeter_west",
            floor_area_m2=perimeter_area,
            thermal_capacitance_j_per_k=_capacitance_for_area(perimeter_area),
            envelope_ua_w_per_k=50.0,
            window_area_m2=10.0,
            equipment_gain_w=250.0,
        ),
    ]

    couplings = [
        InterZoneCoupling("core", "perimeter_north", 60.0),
        InterZoneCoupling("core", "perimeter_east", 60.0),
        InterZoneCoupling("core", "perimeter_south", 60.0),
        InterZoneCoupling("core", "perimeter_west", 60.0),
        InterZoneCoupling("perimeter_north", "perimeter_east", 18.0),
        InterZoneCoupling("perimeter_east", "perimeter_south", 18.0),
        InterZoneCoupling("perimeter_south", "perimeter_west", 18.0),
        InterZoneCoupling("perimeter_west", "perimeter_north", 18.0),
    ]

    return zones, couplings, "core"


def total_floor_area(zones: List[ZoneParameters]) -> float:
    """Total conditioned floor area of a zone list."""
    return float(sum(z.floor_area_m2 for z in zones))


def zone_index_map(zones: List[ZoneParameters]) -> Dict[str, int]:
    """Map from zone name to index, validating uniqueness."""
    mapping: Dict[str, int] = {}
    for i, zone in enumerate(zones):
        if zone.name in mapping:
            raise ValueError(f"Duplicate zone name {zone.name!r}")
        mapping[zone.name] = i
    return mapping
