"""Reduced-order building thermal simulation (EnergyPlus substitute).

The paper simulates a 463 m^2 five-zone building with EnergyPlus.  This package
implements the standard reduced-order abstraction of that plant: a multi-zone
RC (resistor-capacitor) thermal network with

* per-zone thermal capacitance and envelope conductance,
* inter-zone conductive coupling,
* wind-dependent infiltration,
* solar and internal (occupant + equipment) heat gains,
* an idealised setpoint-tracking HVAC unit per zone with finite capacity and a
  COP-based electric energy meter.

The controlled state exposed to agents is the temperature of a designated
controlled zone, matching the paper's single-zone state formulation; the
setpoint action is broadcast to every zone's HVAC unit, matching the Sinergym
5-zone environment used by the paper.
"""

from repro.buildings.zones import ZoneParameters, InterZoneCoupling, five_zone_layout
from repro.buildings.occupancy import OccupancySchedule, office_schedule
from repro.buildings.hvac import BatchedHVACPlant, BatchedHVACResult, HVACUnit, HVACResult
from repro.buildings.thermal import ThermalNetwork, ThermalState
from repro.buildings.building import Building, BuildingStepResult, make_five_zone_building

__all__ = [
    "ZoneParameters",
    "InterZoneCoupling",
    "five_zone_layout",
    "OccupancySchedule",
    "office_schedule",
    "HVACUnit",
    "HVACResult",
    "BatchedHVACPlant",
    "BatchedHVACResult",
    "ThermalNetwork",
    "ThermalState",
    "Building",
    "BuildingStepResult",
    "make_five_zone_building",
]
