"""Occupancy schedules.

Occupant count is one of the disturbance variables in Table 1 of the paper and
the occupied/unoccupied flag switches the reward's energy weight (``w_e``).
This module provides a deterministic office-style weekly schedule with optional
stochastic absenteeism, at the simulation timestep resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.utils.config import SimulationConfig
from repro.utils.rng import RNGLike, ensure_rng


@dataclass
class OccupancySchedule:
    """Weekly occupancy schedule for the whole building.

    Parameters
    ----------
    occupied_start_hour, occupied_end_hour:
        Daily occupied window on working days (fractional hours allowed).
    peak_occupants:
        Occupant count at full occupancy.
    working_days:
        Days of the week (0=Monday) that are occupied.
    lunch_dip_fraction:
        Fractional reduction of occupancy around lunch time.
    absentee_std_fraction:
        Standard deviation of multiplicative day-to-day occupancy noise.
    """

    occupied_start_hour: float = 8.0
    occupied_end_hour: float = 20.0
    peak_occupants: int = 24
    working_days: Sequence[int] = field(default_factory=lambda: (0, 1, 2, 3, 4))
    lunch_dip_fraction: float = 0.3
    absentee_std_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 <= self.occupied_start_hour < self.occupied_end_hour <= 24.0):
            raise ValueError("Occupied window must satisfy 0 <= start < end <= 24")
        if self.peak_occupants < 0:
            raise ValueError("peak_occupants must be non-negative")
        if not (0.0 <= self.lunch_dip_fraction < 1.0):
            raise ValueError("lunch_dip_fraction must be in [0, 1)")

    def is_working_day(self, day_index: int) -> bool:
        return (day_index % 7) in set(self.working_days)

    def is_occupied(self, day_index: int, hour_of_day: float) -> bool:
        """Whether the building counts as occupied at this time (for the reward)."""
        if not self.is_working_day(day_index):
            return False
        return self.occupied_start_hour <= hour_of_day < self.occupied_end_hour

    def occupant_count(
        self, day_index: int, hour_of_day: float, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Occupant count at a given time (0 when unoccupied)."""
        if not self.is_occupied(day_index, hour_of_day):
            return 0.0
        count = float(self.peak_occupants)
        # Ramp up during the first hour, ramp down during the last hour.
        if hour_of_day < self.occupied_start_hour + 1.0:
            count *= hour_of_day - self.occupied_start_hour
        elif hour_of_day > self.occupied_end_hour - 1.0:
            count *= self.occupied_end_hour - hour_of_day
        # Lunch dip between 12:00 and 13:00.
        if 12.0 <= hour_of_day < 13.0:
            count *= 1.0 - self.lunch_dip_fraction
        if rng is not None and self.absentee_std_fraction > 0:
            count *= max(0.0, 1.0 + rng.normal(0.0, self.absentee_std_fraction))
        return float(max(count, 0.0))

    def generate_series(
        self, simulation: SimulationConfig, seed: RNGLike = None
    ) -> "OccupancySeries":
        """Pre-compute occupancy for every timestep of a simulation."""
        rng = ensure_rng(seed) if seed is not None else None
        n = simulation.total_steps
        counts = np.zeros(n, dtype=np.float64)
        occupied = np.zeros(n, dtype=bool)
        for i in range(n):
            day = i // simulation.steps_per_day
            hour = (i % simulation.steps_per_day) * simulation.step_hours
            occupied[i] = self.is_occupied(day, hour)
            counts[i] = self.occupant_count(day, hour, rng)
        return OccupancySeries(counts=counts, occupied=occupied, minutes_per_step=simulation.minutes_per_step)


@dataclass
class OccupancySeries:
    """Pre-computed per-step occupant counts and occupied flags."""

    counts: np.ndarray
    occupied: np.ndarray
    minutes_per_step: int

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.occupied):
            raise ValueError("counts and occupied must have the same length")

    def __len__(self) -> int:
        return len(self.counts)

    def at(self, step: int) -> tuple:
        i = int(step) % len(self)
        return float(self.counts[i]), bool(self.occupied[i])


def office_schedule(peak_occupants: int = 24) -> OccupancySchedule:
    """The default office schedule used throughout the experiments."""
    return OccupancySchedule(peak_occupants=peak_occupants)
