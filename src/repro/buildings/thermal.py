"""Multi-zone RC thermal network.

The network integrates the zone heat balance

    C_i dT_i/dt = UA_env,i (T_out - T_i)
                + UA_inf,i(wind) (T_out - T_i)
                + sum_j UA_ij (T_j - T_i)
                + Q_hvac,i + Q_solar,i + Q_internal,i

with forward-Euler sub-steps inside each control timestep.  Sub-stepping keeps
the explicit integration stable for the zone time constants used here (tens of
hours) at a 1-minute sub-step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.buildings.zones import InterZoneCoupling, ZoneParameters, zone_index_map

#: Sensible heat gain per occupant (W), a standard office value.
OCCUPANT_GAIN_W = 90.0


@dataclass
class ThermalState:
    """Zone temperatures of the network (degrees C)."""

    temperatures: np.ndarray

    def __post_init__(self) -> None:
        self.temperatures = np.asarray(self.temperatures, dtype=float)
        if self.temperatures.ndim != 1:
            raise ValueError("temperatures must be a 1-D array")

    def copy(self) -> "ThermalState":
        return ThermalState(self.temperatures.copy())

    def __len__(self) -> int:
        return len(self.temperatures)


@dataclass
class ZoneGains:
    """External heat inputs to one zone over one control step (W, averaged)."""

    hvac_thermal_w: float = 0.0
    solar_w: float = 0.0
    internal_w: float = 0.0

    @property
    def total_w(self) -> float:
        return self.hvac_thermal_w + self.solar_w + self.internal_w


class ThermalNetwork:
    """RC thermal network over a list of zones with inter-zone couplings."""

    def __init__(
        self,
        zones: Sequence[ZoneParameters],
        couplings: Sequence[InterZoneCoupling],
        substep_seconds: float = 60.0,
    ):
        if not zones:
            raise ValueError("At least one zone is required")
        if substep_seconds <= 0:
            raise ValueError("substep_seconds must be positive")
        self.zones = list(zones)
        self.couplings = list(couplings)
        self.substep_seconds = float(substep_seconds)
        self._index = zone_index_map(self.zones)

        n = len(self.zones)
        self._capacitance = np.array(
            [z.thermal_capacitance_j_per_k for z in self.zones], dtype=np.float64
        )
        self._envelope_ua = np.array(
            [z.envelope_ua_w_per_k for z in self.zones], dtype=np.float64
        )
        self._infiltration_per_wind = np.array(
            [z.infiltration_ua_per_wind_w_per_k_per_ms for z in self.zones],
            dtype=np.float64,
        )
        self._coupling_matrix = np.zeros((n, n), dtype=np.float64)
        for coupling in self.couplings:
            if coupling.zone_a not in self._index or coupling.zone_b not in self._index:
                raise KeyError(
                    f"Coupling references unknown zone: {coupling.zone_a!r}/{coupling.zone_b!r}"
                )
            a, b = self._index[coupling.zone_a], self._index[coupling.zone_b]
            self._coupling_matrix[a, b] += coupling.ua_w_per_k
            self._coupling_matrix[b, a] += coupling.ua_w_per_k
        # Row sums are constant — precompute instead of re-summing every sub-step.
        self._coupling_row_sums = self._coupling_matrix.sum(axis=1)

    @property
    def zone_names(self) -> List[str]:
        return [z.name for z in self.zones]

    def zone_index(self, name: str) -> int:
        return self._index[name]

    def initial_state(self, temperature_c: float = 20.0) -> ThermalState:
        """A uniform-temperature initial state."""
        return ThermalState(np.full(len(self.zones), float(temperature_c), dtype=np.float64))

    def step(
        self,
        state: ThermalState,
        outdoor_temperature_c: float,
        wind_speed_ms: float,
        gains: Dict[str, ZoneGains],
        duration_seconds: float,
    ) -> ThermalState:
        """Advance the network by ``duration_seconds`` with constant boundary conditions.

        Uses the same ``einsum`` contraction as :meth:`step_batch` (summing
        over the neighbour axis in the same order), so a scalar step is
        bit-identical to the corresponding row of a batched step.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        temps = state.temperatures.copy()
        n = len(self.zones)
        gain_vector = np.zeros(n, dtype=np.float64)
        for name, zone_gains in gains.items():
            gain_vector[self._index[name]] = zone_gains.total_w

        effective_ua = self._envelope_ua + self._infiltration_per_wind * max(wind_speed_ms, 0.0)

        remaining = float(duration_seconds)
        dt = self.substep_seconds
        while remaining > 1e-9:
            h = min(dt, remaining)
            envelope_flow = effective_ua * (outdoor_temperature_c - temps)
            inter_zone_flow = (
                np.einsum("ij,j->i", self._coupling_matrix, temps)
                - self._coupling_row_sums * temps
            )
            d_temps = (envelope_flow + inter_zone_flow + gain_vector) / self._capacitance
            temps = temps + h * d_temps
            remaining -= h
        return ThermalState(temps)

    def step_batch(
        self,
        temperatures: np.ndarray,
        outdoor_temperature_c: np.ndarray,
        wind_speed_ms: np.ndarray,
        gains_w: np.ndarray,
        duration_seconds: float,
    ) -> np.ndarray:
        """Advance ``B`` independent copies of the network in one fused loop.

        Parameters
        ----------
        temperatures:
            ``(B, n_zones)`` current zone temperatures, one row per building.
        outdoor_temperature_c, wind_speed_ms:
            ``(B,)`` per-building boundary conditions.
        gains_w:
            ``(B, n_zones)`` total heat input per zone (W, averaged over the step).
        duration_seconds:
            Common integration length for every row.

        Returns the ``(B, n_zones)`` temperatures after the step.  Every row
        evolves exactly as a scalar :meth:`step` would evolve it: the Euler
        sub-step loop runs once for the whole batch, and all per-row arithmetic
        is element-wise (or sums over the zone axis only), so results are
        independent of the batch size.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        temps = np.array(temperatures, dtype=float)
        if temps.ndim != 2 or temps.shape[1] != len(self.zones):
            raise ValueError(f"temperatures must have shape (B, {len(self.zones)})")
        outdoor = np.asarray(outdoor_temperature_c, dtype=float).reshape(-1, 1)
        wind = np.asarray(wind_speed_ms, dtype=float).reshape(-1, 1)
        gains = np.asarray(gains_w, dtype=float)

        effective_ua = self._envelope_ua + self._infiltration_per_wind * np.maximum(wind, 0.0)

        remaining = float(duration_seconds)
        dt = self.substep_seconds
        while remaining > 1e-9:
            h = min(dt, remaining)
            envelope_flow = effective_ua * (outdoor - temps)
            inter_zone_flow = (
                np.einsum("ij,bj->bi", self._coupling_matrix, temps)
                - self._coupling_row_sums * temps
            )
            d_temps = (envelope_flow + inter_zone_flow + gains) / self._capacitance
            temps = temps + h * d_temps
            remaining -= h
        return temps

    def steady_state_temperature(
        self, outdoor_temperature_c: float, wind_speed_ms: float, gains: Dict[str, ZoneGains]
    ) -> np.ndarray:
        """Solve the steady-state zone temperatures for constant conditions.

        Useful for sanity checks and property tests: with zero gains the steady
        state equals the outdoor temperature in every zone.
        """
        n = len(self.zones)
        gain_vector = np.zeros(n, dtype=np.float64)
        for name, zone_gains in gains.items():
            gain_vector[self._index[name]] = zone_gains.total_w
        effective_ua = self._envelope_ua + self._infiltration_per_wind * max(wind_speed_ms, 0.0)
        # Build the linear system A T = b from the heat balance at equilibrium.
        a_matrix = np.diag(effective_ua + self._coupling_row_sums) - self._coupling_matrix
        b_vector = effective_ua * outdoor_temperature_c + gain_vector
        return np.linalg.solve(a_matrix, b_vector)


def solar_gain_for_zone(zone: ZoneParameters, solar_radiation_w_m2: float) -> float:
    """Solar heat gain of a zone given global horizontal irradiance."""
    return max(solar_radiation_w_m2, 0.0) * zone.window_area_m2 * zone.solar_heat_gain_coefficient


def internal_gain_for_zone(
    zone: ZoneParameters, occupant_count: float, occupied: bool, zone_area_share: float
) -> float:
    """Internal gain: occupants (distributed by floor-area share) plus equipment."""
    occupant_gain = OCCUPANT_GAIN_W * occupant_count * zone_area_share
    equipment_gain = zone.equipment_gain_w if occupied else 0.1 * zone.equipment_gain_w
    return occupant_gain + equipment_gain
