"""Reproduction of the verified decision-tree HVAC policy paper.

The public API surfaces three layers (all re-exported lazily here):

* :class:`repro.core.pipeline.VerifiedPolicyPipeline` — the extract-verify-
  deploy pipeline of Fig. 2 producing a verified
  :class:`~repro.core.tree_policy.TreePolicy`,
* :func:`repro.agents.make_agent` — registry-driven construction of every
  controller evaluated in the paper,
* :class:`repro.experiments.ExperimentRunner` — scenario-grid evaluation of
  any registered agent (also available as ``python -m repro``).
"""

from __future__ import annotations

__version__ = "0.2.0"

#: Lazily resolved public names -> defining module.
_LAZY_EXPORTS = {
    "PipelineConfig": "repro.core.pipeline",
    "PipelineResult": "repro.core.pipeline",
    "VerifiedPolicyPipeline": "repro.core.pipeline",
    "TreePolicy": "repro.core.tree_policy",
    "make_agent": "repro.agents.registry",
    "available_agents": "repro.agents.registry",
    "register_agent": "repro.agents.registry",
    "ScenarioSpec": "repro.experiments.scenarios",
    "scenario_grid": "repro.experiments.scenarios",
    "get_scenario": "repro.experiments.scenarios",
    "ExperimentRunner": "repro.experiments.runner",
    "ExperimentResult": "repro.experiments.runner",
    "EpisodeResult": "repro.experiments.runner",
    "HVACEnvironment": "repro.env.hvac_env",
    "make_environment": "repro.env.hvac_env",
    "PolicyStore": "repro.store",
    "PolicyKey": "repro.store",
    "CompiledTreePolicy": "repro.serving",
    "CompiledTreeForest": "repro.serving",
    "PolicyServer": "repro.serving",
}

__all__ = ["__version__"] + sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Import heavyweight submodules only when their names are first used."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
