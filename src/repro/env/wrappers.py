"""Environment wrappers: observation normalisation and episode recording."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.env.hvac_env import EnvironmentStep, HVACEnvironment


class NormalizedObservationWrapper:
    """Scales observations into [0, 1] using the observation-space bounds.

    The decision-tree policy operates on raw physical units (that is what makes
    it interpretable), but the neural dynamics model trains better on
    normalised inputs; this wrapper is provided for agents that want it.
    """

    def __init__(self, environment: HVACEnvironment):
        self.environment = environment
        self._low = environment.observation_space.low
        self._span = environment.observation_space.high - environment.observation_space.low
        self._span[self._span == 0] = 1.0

    def normalize(self, observation: np.ndarray) -> np.ndarray:
        return (np.asarray(observation, dtype=float) - self._low) / self._span

    def denormalize(self, normalized: np.ndarray) -> np.ndarray:
        return np.asarray(normalized, dtype=float) * self._span + self._low

    def reset(self, seed=None) -> Tuple[np.ndarray, Dict[str, float]]:
        observation, info = self.environment.reset(seed)
        return self.normalize(observation), info

    def step(self, action: Union[int, Tuple[float, float]]) -> EnvironmentStep:
        result = self.environment.step(action)
        return EnvironmentStep(
            observation=self.normalize(result.observation),
            reward=result.reward,
            terminated=result.terminated,
            truncated=result.truncated,
            info=result.info,
        )

    def __getattr__(self, name: str):
        # Delegate everything else (action_space, num_steps, ...) to the base env.
        return getattr(self.environment, name)


@dataclass
class EpisodeRecord:
    """Per-step traces of one recorded episode."""

    observations: List[np.ndarray] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    infos: List[Dict[str, float]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))

    @property
    def total_energy_kwh(self) -> float:
        return float(sum(info.get("hvac_electric_energy_kwh", 0.0) for info in self.infos))

    @property
    def zone_temperatures(self) -> np.ndarray:
        return np.array([info["zone_temperature"] for info in self.infos])

    @property
    def heating_setpoints(self) -> np.ndarray:
        return np.array([info["heating_setpoint"] for info in self.infos])

    @property
    def cooling_setpoints(self) -> np.ndarray:
        return np.array([info["cooling_setpoint"] for info in self.infos])


class EpisodeRecorder:
    """Wraps an environment and records every step into an :class:`EpisodeRecord`."""

    def __init__(self, environment: HVACEnvironment):
        self.environment = environment
        self.record = EpisodeRecord()

    def reset(self, seed=None) -> Tuple[np.ndarray, Dict[str, float]]:
        self.record = EpisodeRecord()
        observation, info = self.environment.reset(seed)
        self.record.observations.append(observation)
        return observation, info

    def step(self, action: Union[int, Tuple[float, float]]) -> EnvironmentStep:
        result = self.environment.step(action)
        action_index = (
            int(action)
            if not isinstance(action, (tuple, list, np.ndarray))
            else self.environment.action_space.to_index(float(action[0]), float(action[1]))
        )
        self.record.actions.append(action_index)
        self.record.rewards.append(result.reward)
        self.record.infos.append(dict(result.info))
        self.record.observations.append(result.observation)
        return result

    def __getattr__(self, name: str):
        return getattr(self.environment, name)
