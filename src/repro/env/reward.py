"""The reward function of the paper (Eq. 2).

    r(s_t) = - w_e * E_t - (1 - w_e) * (|s_t - z_upper|_+ + |s_t - z_lower|_+)

where ``E_t`` is the setpoint-based energy proxy (the L1 distance between the
selected setpoints and the setpoints at which the HVAC is effectively off) and
``w_e`` is 1e-2 during occupied periods and 1.0 during unoccupied periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.utils.config import ActionSpaceConfig, ComfortConfig, RewardConfig


@dataclass(frozen=True)
class RewardBreakdown:
    """The reward together with its energy and comfort components."""

    reward: float
    energy_term: float
    comfort_term: float
    energy_proxy: float
    comfort_violation: float
    energy_weight: float


def setpoint_energy_proxy(
    heating_setpoint: float, cooling_setpoint: float, actions: ActionSpaceConfig
) -> float:
    """The paper's energy estimate: L1 distance from the "HVAC off" setpoints."""
    off_heating, off_cooling = actions.off_setpoints()
    return abs(heating_setpoint - off_heating) + abs(cooling_setpoint - off_cooling)


def comfort_violation_amount(zone_temperature: float, comfort: ComfortConfig) -> float:
    """``|s - z_upper|_+ + |s - z_lower|_+`` from Eq. 2."""
    above = max(zone_temperature - comfort.upper, 0.0)
    below = max(comfort.lower - zone_temperature, 0.0)
    return above + below


def compute_reward(
    zone_temperature: float,
    heating_setpoint: float,
    cooling_setpoint: float,
    occupied: bool,
    reward_config: RewardConfig,
    actions: ActionSpaceConfig,
) -> RewardBreakdown:
    """Evaluate Eq. 2 for one timestep."""
    w_e = reward_config.energy_weight(occupied)
    energy_proxy = setpoint_energy_proxy(heating_setpoint, cooling_setpoint, actions)
    violation = comfort_violation_amount(zone_temperature, reward_config.comfort)
    energy_term = -w_e * energy_proxy
    comfort_term = -(1.0 - w_e) * violation
    return RewardBreakdown(
        reward=energy_term + comfort_term,
        energy_term=energy_term,
        comfort_term=comfort_term,
        energy_proxy=energy_proxy,
        comfort_violation=violation,
        energy_weight=w_e,
    )
