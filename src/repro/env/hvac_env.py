"""The HVAC control environment.

``HVACEnvironment`` follows the familiar ``reset()`` / ``step(action)``
interface.  Each step spans one control interval (15 minutes by default), sends
the selected (heating, cooling) setpoints to every zone of the building plant,
advances the thermal simulation under the current weather and occupancy
disturbances and returns the next observation and the Eq. 2 reward.

Observations are the Table-1 vector, in this order::

    [zone temperature, outdoor drybulb temperature, outdoor relative humidity,
     site wind speed, site solar radiation, zone occupant count]

Agents that plan ahead (RS / MPPI / CLUE) can query
:meth:`HVACEnvironment.disturbance_forecast`, mirroring the standard MBRL
assumption of the paper's baselines that near-term weather and occupancy are
available from forecasts and schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.buildings.building import Building, make_five_zone_building
from repro.buildings.occupancy import OccupancySeries, office_schedule
from repro.env.disturbances import DisturbanceSchedule, DisturbanceSpec, get_disturbance
from repro.env.reward import RewardBreakdown, compute_reward
from repro.env.spaces import Box, SetpointSpace
from repro.utils.config import ActionSpaceConfig, ExperimentConfig, RewardConfig, SimulationConfig
from repro.utils.rng import RNGLike, ensure_rng
from repro.weather.tmy import WeatherSeries, generate_weather

#: Canonical ordering of the observation vector (Table 1 of the paper).
OBSERVATION_NAMES: Tuple[str, ...] = (
    "zone_temperature",
    "outdoor_temperature",
    "relative_humidity",
    "wind_speed",
    "solar_radiation",
    "occupant_count",
)

#: The disturbance components of the observation (everything except the state).
DISTURBANCE_NAMES: Tuple[str, ...] = OBSERVATION_NAMES[1:]


@dataclass
class EnvironmentStep:
    """The result of one environment step."""

    observation: np.ndarray
    reward: float
    terminated: bool
    truncated: bool
    info: Dict[str, float] = field(default_factory=dict)


class HVACEnvironment:
    """Simulated HVAC control environment for one building in one city."""

    def __init__(
        self,
        building: Building,
        weather: WeatherSeries,
        occupancy: OccupancySeries,
        config: Optional[ExperimentConfig] = None,
        initial_zone_temperature: float = 20.0,
        disturbance: Optional[Union[DisturbanceSchedule, DisturbanceSpec, str]] = None,
    ):
        self.config = config or ExperimentConfig()
        if len(weather) != len(occupancy):
            raise ValueError(
                f"Weather ({len(weather)} steps) and occupancy ({len(occupancy)} steps) "
                "must cover the same horizon"
            )
        # Disturbance profiles realise against (episode length, config seed);
        # a clean/zero-magnitude profile realises to None and the env is
        # bit-identical to one constructed without the argument.
        schedule: Optional[DisturbanceSchedule] = None
        if disturbance is not None:
            if isinstance(disturbance, DisturbanceSchedule):
                schedule = disturbance if disturbance.spec.enabled else None
            else:
                schedule = get_disturbance(disturbance).realise(
                    len(weather), seed=self.config.seed
                )
        if schedule is not None:
            if schedule.num_steps != len(weather):
                raise ValueError(
                    f"Disturbance schedule covers {schedule.num_steps} steps but "
                    f"the episode has {len(weather)}"
                )
            weather = schedule.apply_to_weather(weather)
            occupancy = schedule.apply_to_occupancy(occupancy)
            schedule.apply_to_building(building)
        self._disturbance = schedule
        self.building = building
        self.weather = weather
        self.occupancy = occupancy
        self.initial_zone_temperature = float(initial_zone_temperature)
        self.action_space = SetpointSpace(self.config.actions)
        self.observation_space = Box(
            low=[-50.0, -50.0, 0.0, 0.0, 0.0, 0.0],
            high=[60.0, 60.0, 100.0, 40.0, 1400.0, 200.0],
            names=list(OBSERVATION_NAMES),
        )
        self._step_index = 0
        self._rng = ensure_rng(self.config.seed)
        self._last_observation: Optional[np.ndarray] = None
        # Sensor-fault state: the last reported zone temperature (dropout
        # repeats it) and the actuator-fault state (last applied setpoint
        # pair + steps since it changed, for stuck/cycling holds).
        self._reported_zone: Optional[float] = None
        self._fault_last: Optional[Tuple[int, int]] = None
        self._fault_since_change = 0

    # ------------------------------------------------------------------ props
    @property
    def num_steps(self) -> int:
        """Total number of control steps in the episode."""
        return len(self.weather)

    @property
    def step_index(self) -> int:
        return self._step_index

    @property
    def step_duration_seconds(self) -> float:
        return self.config.simulation.minutes_per_step * 60.0

    @property
    def observation_names(self) -> List[str]:
        return list(OBSERVATION_NAMES)

    @property
    def disturbance_names(self) -> List[str]:
        return list(DISTURBANCE_NAMES)

    @property
    def disturbance(self) -> Optional[DisturbanceSchedule]:
        """The realised fault schedule of this episode (``None`` when clean)."""
        return self._disturbance

    # ------------------------------------------------------------- observation
    def disturbance_at(self, step: int) -> np.ndarray:
        """The 5-dimensional disturbance vector at ``step``."""
        weather = self.weather.disturbance_at(step)
        count, _occupied = self.occupancy.at(step)
        return np.array(
            [
                weather["outdoor_temperature"],
                weather["relative_humidity"],
                weather["wind_speed"],
                weather["solar_radiation"],
                count,
            ]
        )

    def occupied_at(self, step: int) -> bool:
        """Whether the building is occupied at ``step`` (controls w_e)."""
        _count, occupied = self.occupancy.at(step)
        return occupied

    def hour_of_day_at(self, step: int) -> float:
        return float(self.weather.hour_of_day[int(step) % len(self.weather)])

    def disturbance_forecast(self, start_step: int, horizon: int) -> np.ndarray:
        """Disturbances for ``horizon`` steps starting at ``start_step`` (shape (H, 5))."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return np.stack([self.disturbance_at(start_step + h) for h in range(horizon)])

    def observation(self) -> np.ndarray:
        """The current observation vector (state + disturbances).

        Under an active sensor-fault schedule the zone-temperature channel is
        the *reported* value (noise plus dropout-and-hold); the plant always
        advances on the true temperature.
        """
        disturbance = self.disturbance_at(self._step_index)
        zone = self.building.controlled_zone_temperature
        if self._disturbance is not None and self._disturbance.sensor_active:
            zone = self._report_zone_temperature(zone, self._step_index)
        return np.concatenate(([zone], disturbance))

    def _report_zone_temperature(self, true_value: float, emission_index: int) -> float:
        """The sensor's report for one observation emission (noise + dropout).

        ``emission_index`` counts observation emissions (0 at reset, ``t + 1``
        after step ``t``); faults are precomputed per emission, so repeated
        calls at the same index are idempotent.
        """
        schedule = self._disturbance
        reported = true_value
        if schedule.zone_noise is not None:
            reported = true_value + schedule.zone_noise[emission_index]
        if (
            schedule.sensor_dropped is not None
            and schedule.sensor_dropped[emission_index]
            and self._reported_zone is not None
        ):
            reported = self._reported_zone
        self._reported_zone = reported
        return float(reported)

    # ------------------------------------------------------------------ reset
    def reset(self, seed: RNGLike = None) -> Tuple[np.ndarray, Dict[str, float]]:
        """Reset the plant to the start of the episode."""
        if seed is not None:
            self._rng = ensure_rng(seed)
        self._step_index = 0
        self._reported_zone = None
        self._fault_last = None
        self._fault_since_change = 0
        self.building.reset(self.initial_zone_temperature)
        obs = self.observation()
        self._last_observation = obs
        info = {
            "step": 0,
            "hour_of_day": self.hour_of_day_at(0),
            "occupied": float(self.occupied_at(0)),
        }
        return obs, info

    # ------------------------------------------------------------------- step
    def step(self, action: Union[int, Tuple[float, float]]) -> EnvironmentStep:
        """Apply a setpoint action and advance the simulation by one interval."""
        heating, cooling = self._resolve_action(action)
        step = self._step_index
        if step >= self.num_steps:
            raise RuntimeError("Episode is over; call reset() before stepping again")

        stuck_flag = dr_flag = False
        if self._disturbance is not None and self._disturbance.action_active:
            heating, cooling, stuck_flag, dr_flag = self._apply_action_faults(
                heating, cooling, step
            )

        disturbance = self.disturbance_at(step)
        occupied = self.occupied_at(step)
        result = self.building.step(
            heating_setpoint_c=heating,
            cooling_setpoint_c=cooling,
            outdoor_temperature_c=float(disturbance[0]),
            wind_speed_ms=float(disturbance[2]),
            solar_radiation_w_m2=float(disturbance[3]),
            occupant_count=float(disturbance[4]),
            occupied=occupied,
            duration_seconds=self.step_duration_seconds,
        )

        reward_breakdown: RewardBreakdown = compute_reward(
            zone_temperature=result.controlled_zone_temperature,
            heating_setpoint=heating,
            cooling_setpoint=cooling,
            occupied=occupied,
            reward_config=self.config.reward,
            actions=self.config.actions,
        )

        self._step_index += 1
        truncated = self._step_index >= self.num_steps
        if not truncated:
            observation = self.observation()
        else:
            final_zone = result.controlled_zone_temperature
            if self._disturbance is not None and self._disturbance.sensor_active:
                final_zone = self._report_zone_temperature(final_zone, self._step_index)
            observation = np.concatenate(
                ([final_zone], self.disturbance_at(self._step_index - 1))
            )
        self._last_observation = observation

        comfort = self.config.reward.comfort
        info = {
            "step": step,
            "hour_of_day": self.hour_of_day_at(step),
            "occupied": float(occupied),
            "heating_setpoint": float(heating),
            "cooling_setpoint": float(cooling),
            "zone_temperature": result.controlled_zone_temperature,
            "hvac_electric_energy_kwh": result.hvac_electric_energy_kwh,
            "heating_energy_kwh": result.heating_energy_kwh,
            "cooling_energy_kwh": result.cooling_energy_kwh,
            "energy_proxy": reward_breakdown.energy_proxy,
            "comfort_violation": reward_breakdown.comfort_violation,
            "comfort_violated": float(
                occupied and not comfort.contains(result.controlled_zone_temperature)
            ),
        }
        if self._disturbance is not None:
            schedule = self._disturbance
            info["sensor_dropped"] = float(
                bool(
                    schedule.sensor_dropped is not None and schedule.sensor_dropped[step]
                )
            )
            info["actuator_stuck"] = float(stuck_flag)
            info["demand_response"] = float(dr_flag)
        return EnvironmentStep(
            observation=observation,
            reward=reward_breakdown.reward,
            terminated=False,
            truncated=truncated,
            info=info,
        )

    # ---------------------------------------------------------------- helpers
    def _apply_action_faults(
        self, heating: int, cooling: int, step: int
    ) -> Tuple[int, int, bool, bool]:
        """Rewrite the commanded setpoints through the action-level faults.

        Order (mirrored exactly by the batched env): demand-response setback,
        then heat-pump minimum-cycle hold, then stuck damper.  Returns the
        applied pair plus (actuator-stuck, demand-response) telemetry flags;
        ``actuator_stuck`` covers both cycling holds and stuck dampers —
        every case where the plant did not follow the commanded pair.
        """
        schedule = self._disturbance
        dr_flag = bool(schedule.dr_active is not None and schedule.dr_active[step])
        if dr_flag:
            setback = schedule.spec.demand_response_setback_c
            heating, cooling = self.config.actions.clip(
                heating - setback, cooling + setback
            )
        stuck_flag = False
        if self._fault_last is not None:
            limit = schedule.spec.cycling_limit_steps
            if (
                limit > 0
                and self._fault_since_change < limit
                and (heating, cooling) != self._fault_last
            ):
                heating, cooling = self._fault_last
                stuck_flag = True
            if schedule.stuck is not None and schedule.stuck[step]:
                heating, cooling = self._fault_last
                stuck_flag = True
        pair = (heating, cooling)
        if self._fault_last is None or pair != self._fault_last:
            self._fault_since_change = 0
        else:
            self._fault_since_change += 1
        self._fault_last = pair
        return heating, cooling, stuck_flag, dr_flag

    def _resolve_action(self, action: Union[int, Tuple[float, float]]) -> Tuple[int, int]:
        """Accept either a discrete action index or an explicit setpoint pair."""
        if isinstance(action, (tuple, list, np.ndarray)):
            if len(action) != 2:
                raise ValueError("Setpoint actions must be (heating, cooling) pairs")
            return self.config.actions.clip(float(action[0]), float(action[1]))
        return self.action_space.to_pair(int(action))


def make_environment(
    city: Optional[str] = None,
    seed: Optional[int] = None,
    days: Optional[int] = None,
    config: Optional[ExperimentConfig] = None,
    peak_occupants: int = 24,
    season: str = "winter",
    disturbance: Optional[Union[DisturbanceSpec, str]] = None,
) -> HVACEnvironment:
    """Build the standard experiment environment for a named city.

    Uses the five-zone reference building, a synthetic weather trace for the
    city (January statistics for ``season="winter"``, July for ``"summer"``)
    and the office occupancy schedule.  When an explicit ``config`` is
    supplied it provides the defaults for ``city`` and ``seed`` and the
    ``season`` argument is ignored.
    """
    from repro.utils.config import RewardConfig, get_season

    if config is not None:
        city = config.city if city is None else city
        seed = config.seed if seed is None else seed
    city = "pittsburgh" if city is None else city
    seed = 0 if seed is None else seed
    if config is None:
        season_spec = get_season(season)
        config = ExperimentConfig(
            city=city,
            simulation=SimulationConfig(
                start_month=season_spec.start_month,
                start_day_of_year=season_spec.start_day_of_year,
            ),
            reward=RewardConfig(comfort=season_spec.comfort),
            seed=seed,
        )
    simulation = config.simulation
    if days is not None:
        simulation = SimulationConfig(
            days=days,
            minutes_per_step=config.simulation.minutes_per_step,
            start_month=config.simulation.start_month,
            start_day_of_year=config.simulation.start_day_of_year,
        )
        config = ExperimentConfig(
            city=city,
            simulation=simulation,
            actions=config.actions,
            reward=config.reward,
            seed=seed,
        )
    weather = generate_weather(city, seed=seed, days=simulation.days, simulation=simulation)
    occupancy = office_schedule(peak_occupants).generate_series(simulation, seed=seed + 1)
    building = make_five_zone_building()
    return HVACEnvironment(
        building=building,
        weather=weather,
        occupancy=occupancy,
        config=config,
        disturbance=disturbance,
    )
