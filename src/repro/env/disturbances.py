"""Deterministic, seeded disturbance and fault layer for the HVAC envs.

The scenario grid is clean-weather cities × seasons × presets; every
robustness claim about the extracted tree policies needs the opposite — the
fault classes real building fleets live with (gridworks-scada's
``pico_cycler`` / ``home_alone`` fallback control, hass-ufh-controller's
sensor smoothing are built around exactly these).  This module provides them
as data:

* a :class:`DisturbanceSpec` is an immutable, composable description of one
  disturbance *profile* — sensor noise and dropout, stuck dampers, degraded
  compressor capacity, heat-pump cycling limits, occupancy surprises,
  demand-response setback events and extreme-weather perturbations;
* :meth:`DisturbanceSpec.realise` turns a profile into a per-episode
  :class:`DisturbanceSchedule` — concrete precomputed fault arrays, derived
  from the episode seed through dedicated :class:`numpy.random.SeedSequence`
  children (one stream per fault class, so enabling one fault never shifts
  another's schedule);
* the named preset registry :data:`DISTURBANCES` gives every profile a
  scenario-grid address (``"pittsburgh/winter/office/sensor_dropout"``).

Application tiers (each skipped entirely when inactive, which is what makes
a disabled or zero-magnitude profile *bit-identical* to the clean env):

1. **trace level** — extreme-weather shifts and occupancy surprises are
   applied once to copies of the weather/occupancy traces at environment
   construction (:meth:`DisturbanceSchedule.apply_to_weather` /
   :meth:`~DisturbanceSchedule.apply_to_occupancy`), so forecasts, the
   batched env's stacked disturbance matrix and every agent see them
   consistently;
2. **plant level** — compressor degradation scales the HVAC units'
   proportional gain and capacity caps in place
   (:meth:`DisturbanceSchedule.apply_to_building`); the batched plant stacks
   the same unit objects, so scalar and batched physics stay bit-identical;
3. **observation level** — Gaussian sensor noise plus dropout-and-hold on
   the reported zone temperature (the sensor repeats its last report while
   dropped), applied by the environments at every observation emission;
4. **action level** — demand-response setback, heat-pump minimum-cycle
   holds and stuck dampers rewrite the *applied* setpoints inside
   ``step()``; telemetry reports the applied pair and flags the overrides.

Every schedule array is precomputed at realisation, so the per-step fault
path is pure indexing — no RNG draws on the hot path, and identical
(spec, seed) pairs yield identical schedules across runs, backends and
serving topologies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.buildings.occupancy import OccupancySeries
from repro.weather.tmy import WeatherSeries

#: Salt mixed into the episode seed so disturbance streams never collide with
#: the weather (seed) or occupancy (seed + 1) generators.
_DISTURBANCE_SALT = 0x5EED_FA17

#: Fixed component order for the per-fault-class SeedSequence children.
_COMPONENT_STREAMS = (
    "sensor_noise",
    "sensor_dropout",
    "stuck_damper",
    "occupancy_surprise",
    "demand_response",
    "weather_event",
)


@dataclass(frozen=True)
class DisturbanceSpec:
    """One immutable disturbance profile (all magnitudes zero = clean).

    Attributes
    ----------
    name:
        Registry/display name of the profile.
    sensor_noise_std:
        Std-dev (°C) of Gaussian noise on the reported zone temperature.
    sensor_dropout_rate:
        Per-emission probability that the zone sensor drops out and repeats
        its last report.
    stuck_damper_rate, stuck_damper_steps:
        Per-step probability that the actuator sticks, and for how many
        control steps each sticking event holds the previous setpoints.
    capacity_factor:
        Multiplier on HVAC proportional gain and capacity caps (1.0 = healthy
        plant, 0.4 = badly degraded compressor).
    cycling_limit_steps:
        Heat-pump short-cycle protection: the minimum number of control steps
        the plant holds a setpoint pair before accepting a different one
        (0 disables).
    occupancy_surprise_rate, occupancy_surprise_steps, occupancy_surprise_scale:
        Per-step probability that an occupancy surprise starts, its duration,
        and the multiplier applied to the occupant count while it lasts.
    demand_response_rate, demand_response_steps, demand_response_setback_c:
        Per-step probability that a demand-response event starts, its
        duration, and how far the applied setpoints are relaxed toward the
        off pair (heating lowered, cooling raised) while it lasts.
    weather_event_rate, weather_event_steps, weather_shift_c:
        Per-step probability that an extreme-weather event starts, its
        duration, and the outdoor-temperature shift (°C) it applies
        (positive = heat wave, negative = cold snap).
    """

    name: str = "custom"
    sensor_noise_std: float = 0.0
    sensor_dropout_rate: float = 0.0
    stuck_damper_rate: float = 0.0
    stuck_damper_steps: int = 8
    capacity_factor: float = 1.0
    cycling_limit_steps: int = 0
    occupancy_surprise_rate: float = 0.0
    occupancy_surprise_steps: int = 16
    occupancy_surprise_scale: float = 2.0
    demand_response_rate: float = 0.0
    demand_response_steps: int = 8
    demand_response_setback_c: float = 2.0
    weather_event_rate: float = 0.0
    weather_event_steps: int = 96
    weather_shift_c: float = 0.0

    def __post_init__(self) -> None:
        if self.sensor_noise_std < 0:
            raise ValueError("sensor_noise_std must be non-negative")
        for rate_name in (
            "sensor_dropout_rate",
            "stuck_damper_rate",
            "occupancy_surprise_rate",
            "demand_response_rate",
            "weather_event_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        for steps_name in (
            "stuck_damper_steps",
            "occupancy_surprise_steps",
            "demand_response_steps",
            "weather_event_steps",
        ):
            if getattr(self, steps_name) <= 0:
                raise ValueError(f"{steps_name} must be positive")
        if self.capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        if self.cycling_limit_steps < 0:
            raise ValueError("cycling_limit_steps must be non-negative")
        if self.occupancy_surprise_scale < 0:
            raise ValueError("occupancy_surprise_scale must be non-negative")
        if self.demand_response_setback_c < 0:
            raise ValueError("demand_response_setback_c must be non-negative")

    # ------------------------------------------------------------- components
    @property
    def sensor_enabled(self) -> bool:
        """Whether any sensor-side fault (noise/dropout) is configured."""
        return self.sensor_noise_std > 0 or self.sensor_dropout_rate > 0

    @property
    def actuator_enabled(self) -> bool:
        """Whether any action-side fault (stuck/cycling/DR) is configured."""
        return (
            self.stuck_damper_rate > 0
            or self.cycling_limit_steps > 0
            or (self.demand_response_rate > 0 and self.demand_response_setback_c > 0)
        )

    @property
    def trace_enabled(self) -> bool:
        """Whether any trace-level perturbation (weather/occupancy) is configured."""
        return (
            self.occupancy_surprise_rate > 0
            and self.occupancy_surprise_scale != 1.0
        ) or (self.weather_event_rate > 0 and self.weather_shift_c != 0.0)

    @property
    def enabled(self) -> bool:
        """False iff every magnitude is zero — the bit-identical clean profile."""
        return (
            self.sensor_enabled
            or self.actuator_enabled
            or self.trace_enabled
            or self.capacity_factor != 1.0
        )

    # ------------------------------------------------------------ realisation
    def realise(self, num_steps: int, seed: int) -> Optional["DisturbanceSchedule"]:
        """Materialise the per-episode fault schedule (``None`` when clean).

        Each fault class draws from its own :class:`~numpy.random.SeedSequence`
        child (fixed order, spawned regardless of which classes are active),
        so composing profiles never perturbs an individual class's schedule
        and identical ``(spec, seed)`` pairs are identical everywhere.
        """
        if not self.enabled:
            return None
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        children = np.random.SeedSequence(
            [_DISTURBANCE_SALT, int(seed)]
        ).spawn(len(_COMPONENT_STREAMS))
        rngs = {
            name: np.random.default_rng(child)
            for name, child in zip(_COMPONENT_STREAMS, children)
        }

        zone_noise: Optional[np.ndarray] = None
        if self.sensor_noise_std > 0:
            # One draw per observation emission: reset plus every step.
            zone_noise = rngs["sensor_noise"].normal(
                0.0, self.sensor_noise_std, num_steps + 1
            )

        sensor_dropped: Optional[np.ndarray] = None
        if self.sensor_dropout_rate > 0:
            sensor_dropped = (
                rngs["sensor_dropout"].random(num_steps + 1) < self.sensor_dropout_rate
            )
            sensor_dropped[0] = False  # the first report always lands

        stuck: Optional[np.ndarray] = None
        if self.stuck_damper_rate > 0:
            stuck = _event_windows(
                rngs["stuck_damper"], num_steps, self.stuck_damper_rate, self.stuck_damper_steps
            )
            if not stuck.any():
                stuck = None

        occupancy_scale: Optional[np.ndarray] = None
        if self.occupancy_surprise_rate > 0 and self.occupancy_surprise_scale != 1.0:
            windows = _event_windows(
                rngs["occupancy_surprise"],
                num_steps,
                self.occupancy_surprise_rate,
                self.occupancy_surprise_steps,
            )
            if windows.any():
                occupancy_scale = np.where(windows, self.occupancy_surprise_scale, 1.0)

        dr_active: Optional[np.ndarray] = None
        if self.demand_response_rate > 0 and self.demand_response_setback_c > 0:
            dr_active = _event_windows(
                rngs["demand_response"],
                num_steps,
                self.demand_response_rate,
                self.demand_response_steps,
            )
            if not dr_active.any():
                dr_active = None

        weather_shift: Optional[np.ndarray] = None
        if self.weather_event_rate > 0 and self.weather_shift_c != 0.0:
            windows = _event_windows(
                rngs["weather_event"],
                num_steps,
                self.weather_event_rate,
                self.weather_event_steps,
            )
            if windows.any():
                weather_shift = np.where(windows, self.weather_shift_c, 0.0)

        return DisturbanceSchedule(
            spec=self,
            num_steps=int(num_steps),
            seed=int(seed),
            zone_noise=zone_noise,
            sensor_dropped=sensor_dropped,
            stuck=stuck,
            occupancy_scale=occupancy_scale,
            dr_active=dr_active,
            weather_shift=weather_shift,
        )

    def active_components(self) -> List[str]:
        """Names of the fault components this profile actually configures."""
        components = []
        if self.sensor_noise_std > 0:
            components.append("sensor_noise")
        if self.sensor_dropout_rate > 0:
            components.append("sensor_dropout")
        if self.stuck_damper_rate > 0:
            components.append("stuck_damper")
        if self.capacity_factor != 1.0:
            components.append("capacity")
        if self.cycling_limit_steps > 0:
            components.append("cycling_limit")
        if self.occupancy_surprise_rate > 0 and self.occupancy_surprise_scale != 1.0:
            components.append("occupancy_surprise")
        if self.demand_response_rate > 0 and self.demand_response_setback_c > 0:
            components.append("demand_response")
        if self.weather_event_rate > 0 and self.weather_shift_c != 0.0:
            components.append("weather_event")
        return components

    def to_dict(self) -> Dict[str, Union[str, float, int]]:
        """Plain-dict view (JSON reports, bench metadata)."""
        return dataclasses.asdict(self)


def _event_windows(
    rng: np.random.Generator, num_steps: int, rate: float, duration: int
) -> np.ndarray:
    """Boolean activity mask: each Bernoulli(rate) start opens a window."""
    starts = rng.random(num_steps) < rate
    active = np.zeros(num_steps, dtype=bool)
    for start in np.flatnonzero(starts):
        active[start : start + duration] = True
    return active


@dataclass
class DisturbanceSchedule:
    """The realised fault arrays of one episode (see :class:`DisturbanceSpec`).

    ``zone_noise``/``sensor_dropped`` have ``num_steps + 1`` entries — one per
    observation emission (reset plus every step); the per-step masks have
    ``num_steps``.  A component that realised to "no events this episode" is
    ``None``, which keeps its application tier on the zero-cost clean path.
    """

    spec: DisturbanceSpec
    num_steps: int
    seed: int
    zone_noise: Optional[np.ndarray] = None
    sensor_dropped: Optional[np.ndarray] = None
    stuck: Optional[np.ndarray] = None
    occupancy_scale: Optional[np.ndarray] = None
    dr_active: Optional[np.ndarray] = None
    weather_shift: Optional[np.ndarray] = None

    # --------------------------------------------------------------- activity
    @property
    def sensor_active(self) -> bool:
        """Whether this episode has observation-level faults to apply."""
        return self.zone_noise is not None or self.sensor_dropped is not None

    @property
    def action_active(self) -> bool:
        """Whether this episode has action-level faults to apply."""
        return (
            self.stuck is not None
            or self.dr_active is not None
            or self.spec.cycling_limit_steps > 0
        )

    # ------------------------------------------------------ trace application
    def apply_to_weather(self, weather: WeatherSeries) -> WeatherSeries:
        """Weather trace with the extreme-weather shift applied (or unchanged)."""
        if self.weather_shift is None:
            return weather
        if len(weather) != self.num_steps:
            raise ValueError(
                f"Schedule covers {self.num_steps} steps but the weather trace "
                f"has {len(weather)}"
            )
        return WeatherSeries(
            city=weather.city,
            minutes_per_step=weather.minutes_per_step,
            outdoor_temperature=weather.outdoor_temperature + self.weather_shift,
            relative_humidity=weather.relative_humidity.copy(),
            wind_speed=weather.wind_speed.copy(),
            solar_radiation=weather.solar_radiation.copy(),
            hour_of_day=weather.hour_of_day.copy(),
            day_of_year=weather.day_of_year.copy(),
        )

    def apply_to_occupancy(self, occupancy: OccupancySeries) -> OccupancySeries:
        """Occupancy trace with surprise multipliers applied (or unchanged).

        Surprises scale the occupant *count* (internal gains, Table-1
        observation); the occupied/unoccupied reward flag keeps the planned
        schedule — the surprise is people the controller did not plan for.
        """
        if self.occupancy_scale is None:
            return occupancy
        if len(occupancy) != self.num_steps:
            raise ValueError(
                f"Schedule covers {self.num_steps} steps but the occupancy trace "
                f"has {len(occupancy)}"
            )
        return OccupancySeries(
            counts=occupancy.counts * self.occupancy_scale,
            occupied=occupancy.occupied.copy(),
            minutes_per_step=occupancy.minutes_per_step,
        )

    def apply_to_building(self, building) -> None:
        """Degrade the HVAC plant in place (no-op at capacity factor 1.0).

        Scales every unit's proportional gain and capacity caps; the batched
        plant stacks the same :class:`~repro.buildings.hvac.HVACUnit`
        objects, so scalar and batched physics inherit the degradation
        identically.
        """
        factor = self.spec.capacity_factor
        if factor == 1.0:
            return
        for unit in building.hvac_units.values():
            unit.proportional_gain_w_per_k = unit.proportional_gain_w_per_k * factor
            unit.zone = dataclasses.replace(
                unit.zone,
                max_heating_power_w=unit.zone.max_heating_power_w * factor,
                max_cooling_power_w=unit.zone.max_cooling_power_w * factor,
            )


#: Named disturbance presets — the fault classes of the robustness matrix.
DISTURBANCES: Dict[str, DisturbanceSpec] = {
    "clean": DisturbanceSpec(name="clean"),
    "sensor_noise": DisturbanceSpec(name="sensor_noise", sensor_noise_std=0.5),
    "sensor_dropout": DisturbanceSpec(name="sensor_dropout", sensor_dropout_rate=0.15),
    "stuck_damper": DisturbanceSpec(
        name="stuck_damper", stuck_damper_rate=0.02, stuck_damper_steps=8
    ),
    "weak_hvac": DisturbanceSpec(name="weak_hvac", capacity_factor=0.4),
    "short_cycle": DisturbanceSpec(name="short_cycle", cycling_limit_steps=4),
    "occupancy_surprise": DisturbanceSpec(
        name="occupancy_surprise",
        occupancy_surprise_rate=0.01,
        occupancy_surprise_steps=16,
        occupancy_surprise_scale=2.5,
    ),
    "demand_response": DisturbanceSpec(
        name="demand_response",
        demand_response_rate=0.02,
        demand_response_steps=8,
        demand_response_setback_c=2.0,
    ),
    "heat_wave": DisturbanceSpec(
        name="heat_wave", weather_event_rate=0.01, weather_event_steps=96, weather_shift_c=8.0
    ),
    "cold_snap": DisturbanceSpec(
        name="cold_snap", weather_event_rate=0.01, weather_event_steps=96, weather_shift_c=-8.0
    ),
    "rough_day": DisturbanceSpec(
        name="rough_day",
        sensor_noise_std=0.3,
        sensor_dropout_rate=0.05,
        stuck_damper_rate=0.01,
        stuck_damper_steps=8,
        capacity_factor=0.7,
        demand_response_rate=0.01,
        demand_response_steps=8,
        demand_response_setback_c=2.0,
    ),
}


def available_disturbances() -> List[str]:
    """Names of the registered disturbance presets."""
    return list(DISTURBANCES)


def get_disturbance(profile: Union[str, DisturbanceSpec]) -> DisturbanceSpec:
    """Look up a preset by name (specs pass through unchanged)."""
    if isinstance(profile, DisturbanceSpec):
        return profile
    if profile not in DISTURBANCES:
        raise ValueError(
            f"Unknown disturbance profile {profile!r}. "
            f"Available: {', '.join(sorted(DISTURBANCES))}"
        )
    return DISTURBANCES[profile]
