"""Historical transition data: collection, storage and train/test handling.

The paper's pipeline starts from a historical dataset ``T = {(s, d, a, s')}``
extracted from the building management system.  In the reproduction the
"historical data" is produced by running a behaviour controller (by default the
building's rule-based schedule controller with exploration noise) in the
simulated building, exactly as prior MBRL-for-HVAC work bootstraps its models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.env.hvac_env import HVACEnvironment
from repro.utils.rng import RNGLike, ensure_rng


@dataclass(frozen=True)
class Transition:
    """One historical transition ``(s, d, a, s')``."""

    state: float
    disturbance: np.ndarray
    action: Tuple[int, int]
    next_state: float

    @property
    def policy_input(self) -> np.ndarray:
        """The concatenated (s, d) vector used as policy input."""
        return np.concatenate(([self.state], self.disturbance))

    @property
    def model_input(self) -> np.ndarray:
        """The concatenated (s, d, a) vector used as dynamics-model input."""
        return np.concatenate(([self.state], self.disturbance, self.action))


class TransitionDataset:
    """A container of transitions with matrix views for model training."""

    def __init__(self, transitions: Optional[Iterable[Transition]] = None):
        self._transitions: List[Transition] = list(transitions) if transitions else []

    # ------------------------------------------------------------ collection
    def add(self, transition: Transition) -> None:
        self._transitions.append(transition)

    def extend(self, transitions: Iterable[Transition]) -> None:
        self._transitions.extend(transitions)

    def __len__(self) -> int:
        return len(self._transitions)

    def __getitem__(self, index: int) -> Transition:
        return self._transitions[index]

    def __iter__(self):
        return iter(self._transitions)

    # --------------------------------------------------------------- matrices
    def model_inputs(self) -> np.ndarray:
        """Matrix of (s, d, a) rows for dynamics-model training."""
        if not self._transitions:
            return np.zeros((0, 0), dtype=np.float64)
        return np.stack([t.model_input for t in self._transitions])

    def model_targets(self) -> np.ndarray:
        """Column vector of next-state targets."""
        return np.array([[t.next_state] for t in self._transitions], dtype=np.float64)

    def policy_inputs(self) -> np.ndarray:
        """Matrix of (s, d) rows — the historical input distribution X."""
        if not self._transitions:
            return np.zeros((0, 0), dtype=np.float64)
        return np.stack([t.policy_input for t in self._transitions])

    def states(self) -> np.ndarray:
        return np.array([t.state for t in self._transitions], dtype=np.float64)

    def actions(self) -> np.ndarray:
        return np.array([t.action for t in self._transitions], dtype=np.float64)

    # ------------------------------------------------------------------ split
    def train_test_split(
        self, test_fraction: float = 0.2, seed: RNGLike = None
    ) -> Tuple["TransitionDataset", "TransitionDataset"]:
        """Random split into train and test subsets."""
        if not (0.0 < test_fraction < 1.0):
            raise ValueError("test_fraction must be in (0, 1)")
        rng = ensure_rng(seed)
        indices = rng.permutation(len(self._transitions))
        n_test = max(1, int(round(test_fraction * len(self._transitions))))
        test_idx = set(indices[:n_test].tolist())
        train = TransitionDataset(t for i, t in enumerate(self._transitions) if i not in test_idx)
        test = TransitionDataset(t for i, t in enumerate(self._transitions) if i in test_idx)
        return train, test

    def subsample(self, n: int, seed: RNGLike = None) -> "TransitionDataset":
        """A uniformly subsampled copy with at most ``n`` transitions."""
        if n >= len(self._transitions):
            return TransitionDataset(self._transitions)
        rng = ensure_rng(seed)
        indices = rng.choice(len(self._transitions), size=n, replace=False)
        return TransitionDataset(self._transitions[i] for i in sorted(indices))


def collect_historical_data(
    environment: HVACEnvironment,
    behaviour_agent,
    steps: Optional[int] = None,
    exploration_probability: float = 0.3,
    seed: RNGLike = None,
) -> TransitionDataset:
    """Run ``behaviour_agent`` in the environment and record transitions.

    Parameters
    ----------
    environment:
        A fresh (or reset) environment.
    behaviour_agent:
        Any object with ``select_action(observation, environment, step)``
        returning a discrete action index (see ``repro.agents.base``).
    steps:
        Number of control steps to record (default: the whole episode).
    exploration_probability:
        With this probability a uniformly random action replaces the behaviour
        agent's choice, giving the dataset action-space coverage (a standard
        trick when the historical BMS data comes from a single controller).
    """
    rng = ensure_rng(seed)
    total = steps if steps is not None else environment.num_steps
    dataset = TransitionDataset()
    observation, _info = environment.reset()
    for step in range(total):
        if step >= environment.num_steps:
            break
        state = float(observation[0])
        disturbance = np.asarray(observation[1:], dtype=float)
        if rng.random() < exploration_probability:
            action_index = environment.action_space.sample(rng)
        else:
            action_index = behaviour_agent.select_action(observation, environment, step)
        heating, cooling = environment.action_space.to_pair(int(action_index))
        result = environment.step(int(action_index))
        dataset.add(
            Transition(
                state=state,
                disturbance=disturbance,
                action=(heating, cooling),
                next_state=float(result.observation[0]),
            )
        )
        observation = result.observation
        if result.truncated:
            break
    return dataset
