"""Vectorised batch HVAC environment.

:class:`BatchedHVACEnvironment` steps ``B`` episodes per call: zone
temperatures live in one ``(B, n_zones)`` array, the HVAC plant of every
building is evaluated with one set of array ops
(:class:`~repro.buildings.hvac.BatchedHVACPlant`) and the RC networks advance
through one fused Euler loop (:meth:`~repro.buildings.thermal.ThermalNetwork.step_batch`).

Episodes may differ in weather, occupancy and seeds; they must share the
episode length, the control/substep resolution and the building's thermal
topology (the standard scenario grid satisfies all of this — every episode is
the same five-zone building under a different disturbance trace).

Equivalence guarantee: every array op mirrors the scalar
:class:`~repro.env.hvac_env.HVACEnvironment` step arithmetic element-wise, in
the same order, and the thermal kernel is literally shared with the scalar
path — so batched trajectories are bit-identical to stepping each episode
alone.  The equivalence test-suite (`tests/test_batch_equivalence.py`) locks
this in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.buildings.hvac import BatchedHVACPlant
from repro.buildings.thermal import OCCUPANT_GAIN_W
from repro.data import ActionBatch, InfoBatch, ObservationBatch
from repro.env.hvac_env import HVACEnvironment


@dataclass
class BatchedEnvironmentStep:
    """The result of stepping every episode of the batch once.

    ``observations`` is a columnar :class:`~repro.data.ObservationBatch` and
    ``info`` an :class:`~repro.data.InfoBatch` — one typed ``(B,)`` column per
    scalar info key of the serial environment (plus the scalar ``step``) —
    keeping the hot path free of per-episode dict construction.  Both support
    the legacy protocols (``np.asarray``, row indexing, ``info["key"]``), so
    existing consumers keep working unchanged.
    """

    observations: ObservationBatch
    rewards: np.ndarray
    terminated: bool
    truncated: bool
    info: InfoBatch

    def episode_info(self, index: int) -> Dict[str, float]:
        """Materialise the serial-style info dict of one episode (diagnostics)."""
        return self.info.episode_info(index)


def _stacked_disturbances(environment: HVACEnvironment) -> np.ndarray:
    """The full ``(T, 5)`` disturbance matrix of one episode."""
    weather = environment.weather
    return np.column_stack(
        [
            weather.outdoor_temperature,
            weather.relative_humidity,
            weather.wind_speed,
            weather.solar_radiation,
            environment.occupancy.counts,
        ]
    )


class BatchedHVACEnvironment:
    """``B`` HVAC episodes stepped together through shared array kernels."""

    def __init__(self, environments: Sequence[HVACEnvironment]):
        if not environments:
            raise ValueError("At least one environment is required")
        self.environments: List[HVACEnvironment] = list(environments)
        first = self.environments[0]
        self.num_steps = first.num_steps
        self.step_duration_seconds = first.step_duration_seconds
        self._validate_batch(first)

        buildings = [env.building for env in self.environments]
        self.network = buildings[0].network
        self.hvac_substep_seconds = buildings[0].hvac_substep_seconds
        self.plant = BatchedHVACPlant(
            [b.hvac_units for b in buildings], self.network.zone_names
        )
        self._controlled_index = self.network.zone_index(buildings[0].controlled_zone)

        zones = buildings[0].zones
        total_area = sum(z.floor_area_m2 for z in zones)
        self._window_area = np.array([z.window_area_m2 for z in zones])
        self._shgc = np.array([z.solar_heat_gain_coefficient for z in zones])
        self._equipment_gain = np.array([z.equipment_gain_w for z in zones])
        self._area_share = np.array([z.floor_area_m2 / total_area for z in zones])

        # Per-episode disturbance/occupancy traces, stacked once up front.
        self._disturbances = np.stack([_stacked_disturbances(e) for e in self.environments])
        self._occupied = np.stack(
            [np.asarray(e.occupancy.occupied, dtype=bool) for e in self.environments]
        )
        self._hours = np.stack(
            [np.asarray(e.weather.hour_of_day, dtype=float) for e in self.environments]
        )
        self._initial_temperature = np.array(
            [e.initial_zone_temperature for e in self.environments]
        )

        # Per-episode reward/action parameters (identical under one scenario,
        # but cheap to keep per-row).
        self._comfort_lower = np.array(
            [e.config.reward.comfort.lower for e in self.environments]
        )
        self._comfort_upper = np.array(
            [e.config.reward.comfort.upper for e in self.environments]
        )
        self._w_occupied = np.array(
            [e.config.reward.weight_energy_occupied for e in self.environments]
        )
        self._w_unoccupied = np.array(
            [e.config.reward.weight_energy_unoccupied for e in self.environments]
        )
        off = np.array([e.config.actions.off_setpoints() for e in self.environments], dtype=float)
        self._off_heating = off[:, 0]
        self._off_cooling = off[:, 1]
        self._pairs = np.array(first.action_space.pairs, dtype=float)

        self._step_index = 0
        self._temperatures = np.full(
            (self.batch_size, len(zones)), 20.0, dtype=float
        )
        self._stack_disturbance_schedules()

    def _stack_disturbance_schedules(self) -> None:
        """Stack per-episode fault schedules into ``(B, ...)`` arrays.

        Trace-level perturbations (weather shifts, occupancy surprises) and
        plant degradation were already applied when each scalar environment
        was built, so they arrive here through the stacked disturbance matrix
        and the shared HVAC units; only the observation- and action-level
        faults need per-step batch state.  A batch with no disturbed episode
        sets ``_dist_any = False`` and every fault branch below is skipped —
        the clean hot path is untouched.
        """
        schedules = [env.disturbance for env in self.environments]
        self._dist_any = any(s is not None for s in schedules)
        if not self._dist_any:
            return
        batch, steps = self.batch_size, self.num_steps
        self._dist_noise = np.zeros((batch, steps + 1))
        self._dist_noise_rows = np.zeros(batch, dtype=bool)
        self._dist_dropped = np.zeros((batch, steps + 1), dtype=bool)
        self._dist_stuck = np.zeros((batch, steps), dtype=bool)
        self._dist_dr = np.zeros((batch, steps), dtype=bool)
        self._dist_setback = np.zeros(batch)
        self._dist_cycle_limit = np.zeros(batch, dtype=np.int64)
        for i, schedule in enumerate(schedules):
            if schedule is None:
                continue
            if schedule.num_steps != steps:
                raise ValueError(
                    "All disturbance schedules in a batch must cover the episode length"
                )
            if schedule.zone_noise is not None:
                self._dist_noise[i] = schedule.zone_noise
                self._dist_noise_rows[i] = True
            if schedule.sensor_dropped is not None:
                self._dist_dropped[i] = schedule.sensor_dropped
            if schedule.stuck is not None:
                self._dist_stuck[i] = schedule.stuck
            if schedule.dr_active is not None:
                self._dist_dr[i] = schedule.dr_active
                self._dist_setback[i] = schedule.spec.demand_response_setback_c
            self._dist_cycle_limit[i] = schedule.spec.cycling_limit_steps
        self._dist_sensor_any = bool(
            self._dist_noise_rows.any() or self._dist_dropped.any()
        )
        self._dist_action_any = bool(
            self._dist_stuck.any()
            or self._dist_dr.any()
            or (self._dist_cycle_limit > 0).any()
        )
        actions = np.array(
            [
                (
                    e.config.actions.heating_min,
                    e.config.actions.heating_max,
                    e.config.actions.cooling_min,
                    e.config.actions.cooling_max,
                )
                for e in self.environments
            ],
            dtype=float,
        )
        self._act_hmin, self._act_hmax = actions[:, 0], actions[:, 1]
        self._act_cmin, self._act_cmax = actions[:, 2], actions[:, 3]
        self._reset_fault_state()

    def _reset_fault_state(self) -> None:
        batch = self.batch_size
        self._reported_zone = np.zeros(batch)
        self._has_reported = np.zeros(batch, dtype=bool)
        self._fault_last_h = np.zeros(batch)
        self._fault_last_c = np.zeros(batch)
        self._fault_has_last = np.zeros(batch, dtype=bool)
        self._fault_since = np.zeros(batch, dtype=np.int64)

    # ------------------------------------------------------------- validation
    def _validate_batch(self, first: HVACEnvironment) -> None:
        reference = first.building.network

        def gain_parameters(building) -> list:
            # Everything the gain computation reads from buildings[0] only.
            return [
                (
                    z.window_area_m2,
                    z.solar_heat_gain_coefficient,
                    z.equipment_gain_w,
                    z.floor_area_m2,
                )
                for z in building.zones
            ]

        for env in self.environments:
            if env.num_steps != self.num_steps:
                raise ValueError("All episodes in a batch must have the same length")
            if env.step_duration_seconds != self.step_duration_seconds:
                raise ValueError("All episodes must share the control-step duration")
            network = env.building.network
            if network.zone_names != reference.zone_names:
                raise ValueError("All buildings in a batch must share the zone layout")
            if env.building.controlled_zone != first.building.controlled_zone:
                raise ValueError("All buildings in a batch must share the controlled zone")
            if env.building.hvac_substep_seconds != first.building.hvac_substep_seconds:
                raise ValueError("All buildings must share hvac_substep_seconds")
            for attr in ("_capacitance", "_envelope_ua", "_infiltration_per_wind", "_coupling_matrix"):
                if not np.array_equal(getattr(network, attr), getattr(reference, attr)):
                    raise ValueError(
                        "All buildings in a batch must share thermal parameters "
                        f"(mismatch in {attr.lstrip('_')})"
                    )
            if gain_parameters(env.building) != gain_parameters(first.building):
                raise ValueError(
                    "All buildings in a batch must share solar/internal gain parameters"
                )
            if network.substep_seconds != reference.substep_seconds:
                raise ValueError("All buildings must share the thermal sub-step")
            if env.action_space.pairs != first.action_space.pairs:
                raise ValueError("All episodes must share the action space")

    # -------------------------------------------------------------- properties
    @property
    def batch_size(self) -> int:
        return len(self.environments)

    @property
    def step_index(self) -> int:
        return self._step_index

    @property
    def zone_temperatures(self) -> np.ndarray:
        """Current ``(B, n_zones)`` zone temperatures."""
        return self._temperatures.copy()

    @property
    def controlled_zone_temperatures(self) -> np.ndarray:
        return self._temperatures[:, self._controlled_index].copy()

    def observations(self) -> ObservationBatch:
        """Stacked ``(B, 6)`` Table-1 observation vectors, columnar."""
        disturbance = self._disturbances[:, self._step_index % self.num_steps, :]
        zone = self._temperatures[:, self._controlled_index]
        if self._dist_any and self._dist_sensor_any:
            zone = self._report_zone_temperatures(zone, self._step_index)
        return ObservationBatch(np.column_stack([zone, disturbance]))

    # ------------------------------------------------------------------ reset
    def reset(self) -> Tuple[ObservationBatch, InfoBatch]:
        """Reset every episode to its initial state."""
        self._step_index = 0
        self._temperatures = np.repeat(
            self._initial_temperature[:, np.newaxis], self._temperatures.shape[1], axis=1
        )
        if self._dist_any:
            self._reset_fault_state()
        info = InfoBatch(
            step=0,
            hour_of_day=self._hours[:, 0].copy(),
            occupied=self._occupied[:, 0].astype(float),
        )
        return self.observations(), info

    # ------------------------------------------------------------------- step
    def step(
        self, actions: Union[ActionBatch, np.ndarray, Sequence]
    ) -> BatchedEnvironmentStep:
        """Apply one setpoint action per episode and advance every plant.

        ``actions`` is ideally a columnar :class:`~repro.data.ActionBatch`
        (the agents' batched fast paths produce one); a plain ``(B,)`` index
        array or ``(B, 2)`` setpoint array keeps working.
        """
        step = self._step_index
        if step >= self.num_steps:
            raise RuntimeError("Episodes are over; call reset() before stepping again")
        heating, cooling = self._resolve_actions(actions)
        stuck_flags = dr_flags = None
        if self._dist_any and self._dist_action_any:
            heating, cooling, stuck_flags, dr_flags = self._apply_action_faults(
                heating, cooling, step
            )

        disturbance = self._disturbances[:, step, :]
        occupied = self._occupied[:, step]
        outdoor = disturbance[:, 0]
        wind = disturbance[:, 2]
        solar = disturbance[:, 3]
        occupants = disturbance[:, 4]

        # Constant within the control step, exactly as in the scalar building.
        solar_gain = (np.maximum(solar, 0.0)[:, np.newaxis] * self._window_area) * self._shgc
        internal_gain = (OCCUPANT_GAIN_W * occupants[:, np.newaxis]) * self._area_share + np.where(
            occupied[:, np.newaxis], self._equipment_gain, 0.1 * self._equipment_gain
        )

        batch = self.batch_size
        electric_j = np.zeros(batch)
        thermal_j = np.zeros(batch)
        heating_j = np.zeros(batch)
        cooling_j = np.zeros(batch)
        temps = self._temperatures

        remaining = self.step_duration_seconds
        while remaining > 1e-9:
            interval = min(self.hvac_substep_seconds, remaining)
            hvac = self.plant.evaluate(temps, heating, cooling, occupied)
            gains = hvac.thermal_power_w + solar_gain + internal_gain
            thermal_abs = np.abs(hvac.thermal_power_w)
            # Zone-sequential accumulation matches the scalar building's
            # summation order bit-for-bit (n_zones is tiny).
            for z in range(temps.shape[1]):
                electric_j += hvac.electric_power_w[:, z] * interval
                zone_abs = thermal_abs[:, z] * interval
                thermal_j += zone_abs
                heating_j += np.where(hvac.heating_mask[:, z], zone_abs, 0.0)
                cooling_j += np.where(hvac.cooling_mask[:, z], zone_abs, 0.0)
            temps = self.network.step_batch(temps, outdoor, wind, gains, interval)
            remaining -= interval
        self._temperatures = temps

        zone_temperature = temps[:, self._controlled_index]
        rewards, energy_proxy, comfort_violation, w_e = self._compute_rewards(
            zone_temperature, heating, cooling, occupied
        )

        self._step_index += 1
        truncated = self._step_index >= self.num_steps
        obs_step = self._step_index if not truncated else self._step_index - 1
        zone_observed = zone_temperature
        if self._dist_any and self._dist_sensor_any:
            # Emission index may equal num_steps on the final step; sensor
            # schedules cover T + 1 emissions, exactly as in the scalar env.
            zone_observed = self._report_zone_temperatures(
                zone_temperature, self._step_index
            )
        observation = ObservationBatch(
            np.column_stack([zone_observed, self._disturbances[:, obs_step, :]])
        )

        joules_to_kwh = 1.0 / 3.6e6
        comfort_ok = (self._comfort_lower <= zone_temperature) & (
            zone_temperature <= self._comfort_upper
        )
        fault_columns: Dict[str, np.ndarray] = {}
        if self._dist_any:
            zeros = np.zeros(batch)
            fault_columns = {
                "sensor_dropped": self._dist_dropped[:, step].astype(float),
                "actuator_stuck": (
                    stuck_flags.astype(float) if stuck_flags is not None else zeros
                ),
                "demand_response": (
                    dr_flags.astype(float) if dr_flags is not None else zeros
                ),
            }
        info = InfoBatch(
            step=step,
            hour_of_day=self._hours[:, step].copy(),
            occupied=occupied.astype(float),
            heating_setpoint=heating.astype(float),
            cooling_setpoint=cooling.astype(float),
            zone_temperature=zone_temperature.copy(),
            hvac_electric_energy_kwh=electric_j * joules_to_kwh,
            heating_energy_kwh=heating_j * joules_to_kwh,
            cooling_energy_kwh=cooling_j * joules_to_kwh,
            energy_proxy=energy_proxy,
            comfort_violation=comfort_violation,
            comfort_violated=(occupied & ~comfort_ok).astype(float),
            **fault_columns,
        )
        return BatchedEnvironmentStep(
            observations=observation,
            rewards=rewards,
            terminated=False,
            truncated=truncated,
            info=info,
        )

    # ---------------------------------------------------------------- helpers
    def _report_zone_temperatures(self, zone: np.ndarray, index: int) -> np.ndarray:
        """Vectorised sensor model, mirroring the scalar report path.

        Rows without a sensor fault schedule pass through ``np.where``'s false
        branch untouched, so their reported values are bit-identical to the
        clean batch.
        """
        reported = np.where(
            self._dist_noise_rows, zone + self._dist_noise[:, index], zone
        )
        drop = self._dist_dropped[:, index] & self._has_reported
        reported = np.where(drop, self._reported_zone, reported)
        self._reported_zone = reported
        self._has_reported[:] = True
        return reported

    def _apply_action_faults(
        self, heating: np.ndarray, cooling: np.ndarray, step: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised mirror of the scalar ``_apply_action_faults``.

        Order matters and matches the scalar path: demand-response setback
        first, then the cycling limit, then stuck dampers — both of the latter
        freeze the previously-applied pair.
        """
        dr = self._dist_dr[:, step]
        if dr.any():
            h_dr, c_dr = self._clip_batch(
                heating - self._dist_setback, cooling + self._dist_setback
            )
            heating = np.where(dr, h_dr, heating)
            cooling = np.where(dr, c_dr, cooling)
        has_last = self._fault_has_last
        changed_pair = (heating != self._fault_last_h) | (cooling != self._fault_last_c)
        hold = (
            has_last
            & (self._dist_cycle_limit > 0)
            & (self._fault_since < self._dist_cycle_limit)
            & changed_pair
        )
        stuck_now = self._dist_stuck[:, step] & has_last
        freeze = hold | stuck_now
        heating = np.where(freeze, self._fault_last_h, heating)
        cooling = np.where(freeze, self._fault_last_c, cooling)
        changed = (
            (~has_last)
            | (heating != self._fault_last_h)
            | (cooling != self._fault_last_c)
        )
        self._fault_since = np.where(changed, 0, self._fault_since + 1)
        self._fault_last_h = heating.astype(float)
        self._fault_last_c = cooling.astype(float)
        self._fault_has_last = np.ones(self.batch_size, dtype=bool)
        return heating, cooling, freeze, dr

    def _clip_batch(
        self, heating: np.ndarray, cooling: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`~repro.utils.config.ActionSpaceConfig.clip`."""
        h = np.round(heating)
        c = np.round(cooling)
        h = np.minimum(np.maximum(h, self._act_hmin), self._act_hmax)
        c = np.minimum(np.maximum(c, self._act_cmin), self._act_cmax)
        bad = h > c
        c_fix = np.minimum(np.maximum(h, self._act_cmin), self._act_cmax)
        h_fix = np.minimum(h, c_fix)
        c = np.where(bad, c_fix, c)
        h = np.where(bad, h_fix, h)
        return h, c

    def _resolve_actions(
        self, actions: Union[ActionBatch, np.ndarray, Sequence]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Map per-episode actions to (heating, cooling) setpoint arrays."""
        if isinstance(actions, ActionBatch):
            # Columnar batches resolve through their index column — any
            # attached setpoint columns are informational here, because only
            # the index path applies the validation/clipping the serial
            # reference environment guarantees.
            actions = actions.indices
        actions = np.asarray(actions)
        if actions.ndim == 1 and np.issubdtype(actions.dtype, np.integer):
            if len(actions) != self.batch_size:
                raise ValueError(f"Expected {self.batch_size} actions, got {len(actions)}")
            if actions.min() < 0 or actions.max() >= len(self._pairs):
                raise IndexError("Action index outside the setpoint table")
            pairs = self._pairs[actions]
            return pairs[:, 0], pairs[:, 1]
        if actions.ndim == 2 and actions.shape == (self.batch_size, 2):
            resolved = np.array(
                [
                    env._resolve_action((float(a[0]), float(a[1])))
                    for env, a in zip(self.environments, actions)
                ],
                dtype=float,
            )
            return resolved[:, 0], resolved[:, 1]
        raise ValueError(
            "actions must be a (B,) integer index array or a (B, 2) setpoint array"
        )

    def _compute_rewards(
        self,
        zone_temperature: np.ndarray,
        heating: np.ndarray,
        cooling: np.ndarray,
        occupied: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised Eq. 2, mirroring :func:`repro.env.reward.compute_reward`."""
        w_e = np.where(occupied, self._w_occupied, self._w_unoccupied)
        energy_proxy = np.abs(heating - self._off_heating) + np.abs(cooling - self._off_cooling)
        above = np.maximum(zone_temperature - self._comfort_upper, 0.0)
        below = np.maximum(self._comfort_lower - zone_temperature, 0.0)
        violation = above + below
        energy_term = -w_e * energy_proxy
        comfort_term = -(1.0 - w_e) * violation
        return energy_term + comfort_term, energy_proxy, violation, w_e
