"""Minimal observation/action space abstractions (Gym substitute).

Only the features the library needs are implemented: bounds checking, sampling
and, for the setpoint space, the mapping between discrete action indices and
(heating, cooling) setpoint pairs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.config import ActionSpaceConfig
from repro.utils.rng import RNGLike, ensure_rng


class Box:
    """A bounded continuous space of fixed shape."""

    def __init__(self, low: Sequence[float], high: Sequence[float], names: Optional[Sequence[str]] = None):
        self.low = np.asarray(low, dtype=float)
        self.high = np.asarray(high, dtype=float)
        if self.low.shape != self.high.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(self.low > self.high):
            raise ValueError("low must be element-wise <= high")
        self.names = list(names) if names is not None else [f"x{i}" for i in range(self.low.size)]
        if len(self.names) != self.low.size:
            raise ValueError("names length must match dimensionality")

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.low.shape

    @property
    def dim(self) -> int:
        return int(self.low.size)

    def contains(self, x: Sequence[float]) -> bool:
        arr = np.asarray(x, dtype=float)
        if arr.shape != self.low.shape:
            return False
        return bool(np.all(arr >= self.low - 1e-9) and np.all(arr <= self.high + 1e-9))

    def clip(self, x: Sequence[float]) -> np.ndarray:
        return np.clip(np.asarray(x, dtype=float), self.low, self.high)

    def sample(self, rng: RNGLike = None) -> np.ndarray:
        gen = ensure_rng(rng)
        return gen.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"Box(dim={self.dim})"


class Discrete:
    """A finite space of ``n`` integer actions ``{0, ..., n-1}``."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = int(n)

    def contains(self, value: int) -> bool:
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            return False
        return 0 <= ivalue < self.n

    def sample(self, rng: RNGLike = None) -> int:
        gen = ensure_rng(rng)
        return int(gen.integers(0, self.n))

    def __repr__(self) -> str:
        return f"Discrete(n={self.n})"


class SetpointSpace(Discrete):
    """Discrete action space over valid (heating, cooling) setpoint pairs."""

    def __init__(self, config: Optional[ActionSpaceConfig] = None):
        self.config = config or ActionSpaceConfig()
        self._pairs: List[Tuple[int, int]] = self.config.joint_actions()
        self._pair_to_index = {pair: i for i, pair in enumerate(self._pairs)}
        super().__init__(len(self._pairs))

    @property
    def pairs(self) -> List[Tuple[int, int]]:
        return list(self._pairs)

    def to_pair(self, index: int) -> Tuple[int, int]:
        """Map an action index to its (heating, cooling) setpoint pair."""
        if not self.contains(index):
            raise IndexError(f"Action index {index} outside [0, {self.n})")
        return self._pairs[int(index)]

    def to_index(self, heating: float, cooling: float) -> int:
        """Map an arbitrary setpoint pair to the nearest valid action index."""
        pair = self.config.clip(heating, cooling)
        if pair in self._pair_to_index:
            return self._pair_to_index[pair]
        # Fall back to the closest pair by L1 distance (possible when clipping
        # produced an invalid combination, which clip() already prevents, but
        # keep this robust to future config changes).
        distances = [abs(p[0] - pair[0]) + abs(p[1] - pair[1]) for p in self._pairs]
        return int(np.argmin(distances))

    def heating_actions(self, cooling_setpoint: Optional[int] = None) -> List[int]:
        """Action indices sorted by heating setpoint for a fixed cooling setpoint."""
        cooling = cooling_setpoint if cooling_setpoint is not None else self.config.cooling_max
        indices = [
            self._pair_to_index[(h, cooling)]
            for h in self.config.heating_setpoints
            if (h, cooling) in self._pair_to_index
        ]
        return indices
