"""Gym-style HVAC control environment (Sinergym substitute).

The environment wraps the reduced-order building plant, a synthetic weather
trace and an occupancy schedule into the observation/action/reward interface
the paper's agents use:

* observation: the Table-1 vector ``[zone temperature, outdoor drybulb,
  outdoor relative humidity, wind speed, solar radiation, occupant count]``,
* action: a discrete (heating setpoint, cooling setpoint) pair,
* reward: Eq. 2 of the paper, with the occupancy-dependent energy weight.
"""

from repro.env.spaces import Box, Discrete, SetpointSpace
from repro.env.disturbances import (
    DISTURBANCES,
    DisturbanceSchedule,
    DisturbanceSpec,
    available_disturbances,
    get_disturbance,
)
from repro.env.reward import RewardBreakdown, compute_reward, setpoint_energy_proxy
from repro.env.hvac_env import HVACEnvironment, EnvironmentStep, make_environment
from repro.env.dataset import Transition, TransitionDataset, collect_historical_data
from repro.env.wrappers import NormalizedObservationWrapper, EpisodeRecorder
from repro.env.vector_env import BatchedEnvironmentStep, BatchedHVACEnvironment

__all__ = [
    "Box",
    "Discrete",
    "SetpointSpace",
    "DISTURBANCES",
    "DisturbanceSchedule",
    "DisturbanceSpec",
    "available_disturbances",
    "get_disturbance",
    "RewardBreakdown",
    "compute_reward",
    "setpoint_energy_proxy",
    "HVACEnvironment",
    "EnvironmentStep",
    "make_environment",
    "Transition",
    "TransitionDataset",
    "collect_historical_data",
    "NormalizedObservationWrapper",
    "EpisodeRecorder",
    "BatchedEnvironmentStep",
    "BatchedHVACEnvironment",
]
