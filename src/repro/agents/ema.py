"""Classical EMA (smoothed-threshold) baseline controller.

An exponential moving average of the zone temperature drives a simple
threshold law: when the smoothed signal sinks toward the bottom of the
comfort band the controller requests heat, when it rises toward the top it
requests cooling, otherwise it holds the plant off.  The filter is the whole
trick — raw zone readings chatter (and, under the disturbance layer, carry
sensor noise), while the EMA reacts to the trend, trading response latency
for actuation stability.  The filter warm-up seeds the average with the
first sample instead of zero, so the controller is sane from step one.

Patterned on hass-ufh-controller's ``core/ema.py`` (PAPERS.md related work)
and registered as a baseline agent for the robustness bench, where its
noise immunity contrasts with the unfiltered hysteresis thermostat.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.registry import register_agent
from repro.data import ActionBatch, ObservationBatch
from repro.env.hvac_env import HVACEnvironment
from repro.utils.config import ComfortConfig
from repro.utils.rng import RNGLike


@register_agent(
    "ema",
    aliases=("smoothed",),
    summary="EMA-filtered threshold controller (noise-immune classical baseline)",
)
class EMAAgent(BaseAgent):
    """Threshold controller on an exponentially smoothed zone temperature."""

    name = "ema"

    def __init__(
        self,
        comfort: Optional[ComfortConfig] = None,
        alpha: float = 0.3,
        margin: float = 0.25,
    ):
        self.comfort = comfort or ComfortConfig.winter()
        self.alpha = float(alpha)
        self.margin = float(margin)
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.margin < 0 or 2 * self.margin >= self.comfort.width:
            raise ValueError(
                f"margin {self.margin} must be non-negative and fit inside the "
                f"comfort band (width {self.comfort.width})"
            )
        self._ema: Optional[float] = None
        # (env-identity key, per-step cached arrays) for the batch fast path.
        self._batch_cache = None

    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        season: Optional[str] = None,
        **kwargs,
    ) -> "EMAAgent":
        """Config hook: default the comfort band to the environment's reward config."""
        if "comfort" not in kwargs:
            if season is not None:
                kwargs["comfort"] = ComfortConfig.for_season(season)
            elif environment is not None:
                kwargs["comfort"] = environment.config.reward.comfort
        return cls(**kwargs)

    def reset(self) -> None:
        self._ema = None

    @property
    def heat_below(self) -> float:
        """Smoothed temperature below which heat is requested."""
        return self.comfort.lower + self.margin

    @property
    def cool_above(self) -> float:
        """Smoothed temperature above which cooling is requested."""
        return self.comfort.upper - self.margin

    def _advance_filter(self, zone: float) -> float:
        """One EMA update; warm-up seeds the filter with the first sample."""
        if self._ema is None:
            self._ema = zone
        else:
            self._ema = self._ema + self.alpha * (zone - self._ema)
        return self._ema

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        zone = float(np.asarray(observation, dtype=float).reshape(-1)[0])
        # The filter tracks through unoccupied stretches too — it models the
        # zone, not the schedule — only the actuation is gated on occupancy.
        smoothed = self._advance_filter(zone)
        actions = environment.config.actions
        off_heating, off_cooling = actions.off_setpoints()
        if not environment.occupied_at(step):
            heating, cooling = actions.clip(off_heating, off_cooling)
        elif smoothed < self.heat_below:
            heating, cooling = actions.clip(self.comfort.midpoint, off_cooling)
        elif smoothed > self.cool_above:
            heating, cooling = actions.clip(off_heating, self.comfort.midpoint)
        else:
            heating, cooling = actions.clip(off_heating, off_cooling)
        return environment.action_space.to_index(heating, cooling)

    # ------------------------------------------------------- batched selection
    @classmethod
    def for_environments(
        cls, environments: Sequence[HVACEnvironment], **kwargs
    ) -> List["EMAAgent"]:
        """One smoothed controller per environment."""
        return [cls.from_config(env, **kwargs) for env in environments]

    @classmethod
    def select_actions_batch(
        cls,
        agents: Sequence["EMAAgent"],
        observations: Union[ObservationBatch, np.ndarray],
        environments: Sequence[HVACEnvironment],
        step: int,
    ) -> ActionBatch:
        """Vectorised filter update + threshold over the whole batch.

        Thresholds and the three per-mode action indices are compiled once
        per (agents, environments) pairing; each tick is a fused ``np.where``
        update of the filter state plus a nested ``np.where`` action select —
        element-wise identical to :meth:`select_action` (asserted in the test
        suite), including warm-up on the first observed sample.
        """
        lead = agents[0]
        key = tuple(id(a) for a in agents) + tuple(id(e) for e in environments)
        cache = getattr(lead, "_batch_cache", None)
        if cache is None or cache[0] != key:
            count = len(agents)
            steps = min(env.num_steps for env in environments)
            occupied = np.stack(
                [
                    np.asarray(env.occupancy.occupied[:steps], dtype=bool)
                    for env in environments
                ]
            )
            alpha = np.empty(count, dtype=float)
            heat_below = np.empty(count, dtype=float)
            cool_above = np.empty(count, dtype=float)
            heat_idx = np.empty(count, dtype=np.int64)
            cool_idx = np.empty(count, dtype=np.int64)
            off_idx = np.empty(count, dtype=np.int64)
            for i, (agent, env) in enumerate(zip(agents, environments)):
                actions = env.config.actions
                off_heating, off_cooling = actions.off_setpoints()
                space = env.action_space
                alpha[i] = agent.alpha
                heat_below[i] = agent.heat_below
                cool_above[i] = agent.cool_above
                heat_idx[i] = space.to_index(
                    *actions.clip(agent.comfort.midpoint, off_cooling)
                )
                cool_idx[i] = space.to_index(
                    *actions.clip(off_heating, agent.comfort.midpoint)
                )
                off_idx[i] = space.to_index(*actions.clip(off_heating, off_cooling))
            cache = (key, occupied, alpha, heat_below, cool_above, heat_idx, cool_idx, off_idx)
            lead._batch_cache = cache
        _, occupied, alpha, heat_below, cool_above, heat_idx, cool_idx, off_idx = cache

        count = len(agents)
        zone = np.asarray(observations, dtype=float)[:, 0]
        occ = occupied[:, step]
        has_ema = np.fromiter((a._ema is not None for a in agents), dtype=bool, count=count)
        ema = np.fromiter(
            (a._ema if a._ema is not None else 0.0 for a in agents),
            dtype=float,
            count=count,
        )
        smoothed = np.where(has_ema, ema + alpha * (zone - ema), zone)
        for i, agent in enumerate(agents):
            agent._ema = float(smoothed[i])
        indices = np.where(
            ~occ,
            off_idx,
            np.where(
                smoothed < heat_below,
                heat_idx,
                np.where(smoothed > cool_above, cool_idx, off_idx),
            ),
        )
        return ActionBatch(indices)
