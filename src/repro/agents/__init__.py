"""HVAC control agents.

All controllers evaluated in the paper are implemented here:

* the building's **default rule-based controller** (schedule-based setpoints),
* the **MBRL agent** (learned dynamics model + random-shooting optimiser,
  the Mb2C-style baseline),
* the **CLUE-style agent** (ensemble dynamics model with an epistemic
  uncertainty fallback, the prior state of the art),
* the **decision-tree agent** (the paper's contribution — a verified,
  deterministic tree policy; see :mod:`repro.core`),
* plus a random agent (exploration/testing) and an MPPI optimiser variant.
"""

from repro.agents.base import BaseAgent, RandomAgent, ConstantAgent
from repro.agents.rule_based import RuleBasedAgent
from repro.agents.random_shooting import RandomShootingOptimizer, OptimizationResult
from repro.agents.mppi import MPPIOptimizer
from repro.agents.mbrl import MBRLAgent
from repro.agents.clue import CLUEAgent
from repro.agents.dt_agent import DecisionTreeAgent

__all__ = [
    "BaseAgent",
    "RandomAgent",
    "ConstantAgent",
    "RuleBasedAgent",
    "RandomShootingOptimizer",
    "OptimizationResult",
    "MPPIOptimizer",
    "MBRLAgent",
    "CLUEAgent",
    "DecisionTreeAgent",
]
