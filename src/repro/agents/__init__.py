"""HVAC control agents.

All controllers evaluated in the paper are implemented here:

* the building's **default rule-based controller** (schedule-based setpoints),
* the **MBRL agent** (learned dynamics model + random-shooting optimiser,
  the Mb2C-style baseline),
* the **MPPI agent** (same dynamics model, MPPI optimiser — the optimiser
  ablation),
* the **CLUE-style agent** (ensemble dynamics model with an epistemic
  uncertainty fallback, the prior state of the art),
* the **decision-tree agent** (the paper's contribution — a verified,
  deterministic tree policy; see :mod:`repro.core`),
* plus random and constant agents (exploration/testing baselines).

Every controller registers itself with :mod:`repro.agents.registry`, so any of
them can be built from a string and a config dictionary::

    from repro.agents import make_agent
    agent = make_agent("mbrl", environment=env, seed=0)
"""

from repro.agents.registry import (
    available_agents,
    agent_aliases,
    agent_summaries,
    canonical_name,
    make_agent,
    register_agent,
)
from repro.agents.base import BaseAgent, RandomAgent, ConstantAgent
from repro.agents.rule_based import RuleBasedAgent
from repro.agents.hysteresis import HysteresisAgent
from repro.agents.pid import PIDAgent
from repro.agents.ema import EMAAgent
from repro.agents.random_shooting import (
    BatchPlanResult,
    OptimizationResult,
    RandomShootingOptimizer,
)
from repro.agents.mppi import MPPIOptimizer, MPPIAgent
from repro.agents.mbrl import MBRLAgent, train_dynamics_from_environment
from repro.agents.clue import CLUEAgent
from repro.agents.dt_agent import DecisionTreeAgent

__all__ = [
    "available_agents",
    "agent_aliases",
    "agent_summaries",
    "canonical_name",
    "make_agent",
    "register_agent",
    "BaseAgent",
    "RandomAgent",
    "ConstantAgent",
    "RuleBasedAgent",
    "HysteresisAgent",
    "PIDAgent",
    "EMAAgent",
    "RandomShootingOptimizer",
    "OptimizationResult",
    "BatchPlanResult",
    "MPPIOptimizer",
    "MPPIAgent",
    "MBRLAgent",
    "train_dynamics_from_environment",
    "CLUEAgent",
    "DecisionTreeAgent",
]
