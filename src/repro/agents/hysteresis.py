"""Classical hysteresis (deadband thermostat) baseline controller.

The oldest HVAC control law there is: a binary on/off thermostat with a
deadband around the comfort midpoint.  When the zone drifts below the
deadband the controller latches into *heating* mode and pushes the zone back
to the top of the deadband; when it drifts above, it latches into *cooling*
mode; in between it holds the plant off.  The latch is what distinguishes it
from the schedule controller: the mode persists until the zone has crossed
the whole deadband, so the plant cycles slowly instead of chattering at a
threshold.

Beyond being a classical baseline (ROADMAP scenario-diversity item), this is
the fleet's degraded-mode controller: when the serving stack cannot produce
actions for a tick, :class:`~repro.fleet.FleetLoop` falls back to a bank of
per-building hysteresis agents — a policy-free control law that needs nothing
but the thermometer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.registry import register_agent
from repro.data import ActionBatch, ObservationBatch
from repro.env.hvac_env import HVACEnvironment
from repro.utils.config import ComfortConfig
from repro.utils.rng import RNGLike


@register_agent(
    "hysteresis",
    aliases=("deadband", "thermostat"),
    summary="classical on/off deadband thermostat (also the fleet's degraded-mode fallback)",
)
class HysteresisAgent(BaseAgent):
    """On/off deadband thermostat around the comfort midpoint."""

    name = "hysteresis"

    def __init__(self, comfort: Optional[ComfortConfig] = None, deadband: float = 0.5):
        self.comfort = comfort or ComfortConfig.winter()
        self.deadband = float(deadband)
        if self.deadband <= 0:
            raise ValueError("deadband must be positive")
        if 2 * self.deadband >= self.comfort.width:
            raise ValueError(
                f"deadband {self.deadband} must fit inside the comfort band "
                f"(width {self.comfort.width})"
            )
        # Latched mode: at most one of (heating, cooling) is active.
        self._heat_on = False
        self._cool_on = False
        # (env-identity key, per-step cached arrays) for the batch fast path.
        self._batch_cache = None

    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        season: Optional[str] = None,
        **kwargs,
    ) -> "HysteresisAgent":
        """Config hook: default the comfort band to the environment's reward config."""
        if "comfort" not in kwargs:
            if season is not None:
                kwargs["comfort"] = ComfortConfig.for_season(season)
            elif environment is not None:
                kwargs["comfort"] = environment.config.reward.comfort
        return cls(**kwargs)

    def reset(self) -> None:
        self._heat_on = False
        self._cool_on = False

    # ------------------------------------------------------------- thresholds
    @property
    def on_below(self) -> float:
        """Zone temperature below which the heating latch engages."""
        return self.comfort.midpoint - self.deadband

    @property
    def off_above(self) -> float:
        """Zone temperature above which the cooling latch engages."""
        return self.comfort.midpoint + self.deadband

    def _advance_latch(self, zone: float, occupied: bool) -> None:
        """One step of the three-state (heat / cool / idle) latch machine."""
        if not occupied:
            self._heat_on = False
            self._cool_on = False
            return
        if self._heat_on:
            if zone >= self.off_above:
                self._heat_on = False
        elif self._cool_on:
            if zone <= self.on_below:
                self._cool_on = False
        else:
            if zone < self.on_below:
                self._heat_on = True
            elif zone > self.off_above:
                self._cool_on = True

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        zone = float(np.asarray(observation, dtype=float).reshape(-1)[0])
        self._advance_latch(zone, bool(environment.occupied_at(step)))
        actions = environment.config.actions
        off_heating, off_cooling = actions.off_setpoints()
        if self._heat_on:
            heating, cooling = actions.clip(self.off_above, off_cooling)
        elif self._cool_on:
            heating, cooling = actions.clip(off_heating, self.on_below)
        else:
            heating, cooling = actions.clip(off_heating, off_cooling)
        return environment.action_space.to_index(heating, cooling)

    # ------------------------------------------------------- batched selection
    @classmethod
    def for_environments(
        cls,
        environments: Sequence[HVACEnvironment],
        deadband: float = 0.5,
    ) -> List["HysteresisAgent"]:
        """One thermostat per environment (the fleet's fallback bank)."""
        return [cls.from_config(env, deadband=deadband) for env in environments]

    @classmethod
    def select_actions_batch(
        cls,
        agents: Sequence["HysteresisAgent"],
        observations: Union[ObservationBatch, np.ndarray],
        environments: Sequence[HVACEnvironment],
        step: int,
    ) -> ActionBatch:
        """Vectorised latch update over the whole batch.

        Per-agent thresholds and the three per-mode action indices are
        compiled once per (agents, environments) pairing; every subsequent
        tick is pure array ops plus a state gather/scatter on the agent
        instances — which keeps batched decisions exactly equal to running
        :meth:`select_action` agent by agent (asserted in the test suite),
        including latch continuity across ticks.
        """
        lead = agents[0]
        key = tuple(id(a) for a in agents) + tuple(id(e) for e in environments)
        cache = getattr(lead, "_batch_cache", None)
        if cache is None or cache[0] != key:
            steps = min(env.num_steps for env in environments)
            occupied = np.stack(
                [np.asarray(env.occupancy.occupied[:steps], dtype=bool) for env in environments]
            )
            heat_idx = np.empty(len(agents), dtype=np.int64)
            cool_idx = np.empty(len(agents), dtype=np.int64)
            off_idx = np.empty(len(agents), dtype=np.int64)
            on_below = np.empty(len(agents), dtype=float)
            off_above = np.empty(len(agents), dtype=float)
            for i, (agent, env) in enumerate(zip(agents, environments)):
                actions = env.config.actions
                off_heating, off_cooling = actions.off_setpoints()
                space = env.action_space
                heat_idx[i] = space.to_index(*actions.clip(agent.off_above, off_cooling))
                cool_idx[i] = space.to_index(*actions.clip(off_heating, agent.on_below))
                off_idx[i] = space.to_index(*actions.clip(off_heating, off_cooling))
                on_below[i] = agent.on_below
                off_above[i] = agent.off_above
            cache = (key, occupied, heat_idx, cool_idx, off_idx, on_below, off_above)
            lead._batch_cache = cache
        _, occupied, heat_idx, cool_idx, off_idx, on_below, off_above = cache

        count = len(agents)
        zone = np.asarray(observations, dtype=float)[:, 0]
        occ = occupied[:, step]
        heat_on = np.fromiter((a._heat_on for a in agents), dtype=bool, count=count)
        cool_on = np.fromiter((a._cool_on for a in agents), dtype=bool, count=count)

        idle = ~heat_on & ~cool_on
        new_heat = (heat_on & (zone < off_above)) | (idle & (zone < on_below))
        new_cool = (~heat_on & cool_on & (zone > on_below)) | (
            idle & ~(zone < on_below) & (zone > off_above)
        )
        new_heat &= occ
        new_cool &= occ
        for i, agent in enumerate(agents):
            agent._heat_on = bool(new_heat[i])
            agent._cool_on = bool(new_cool[i])
        return ActionBatch(np.where(new_heat, heat_idx, np.where(new_cool, cool_idx, off_idx)))
