"""The building's default rule-based controller.

This is the schedule controller buildings ship with (and the "default" baseline
of the paper's Fig. 4 / Table 3): during occupied hours it holds the setpoints
at the edges of the comfort band (optionally with a pre-heating window before
occupancy starts); outside occupied hours it sets back to the widest, cheapest
setpoints.  Its online computation cost is effectively zero.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.registry import register_agent
from repro.data import ActionBatch
from repro.env.hvac_env import HVACEnvironment
from repro.utils.config import ComfortConfig
from repro.utils.rng import RNGLike


@register_agent("rule_based", aliases=("default", "schedule"))
class RuleBasedAgent(BaseAgent):
    """Schedule-based setpoint controller (the building's default baseline)."""

    name = "default"

    def __init__(
        self,
        comfort: Optional[ComfortConfig] = None,
        preheat_hours: float = 1.0,
        setback_margin: float = 0.0,
    ):
        self.comfort = comfort or ComfortConfig.winter()
        self.preheat_hours = float(preheat_hours)
        self.setback_margin = float(setback_margin)
        # (environment, per-step action plan) for the vectorised batch path.
        self._plan_cache = None

    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        season: Optional[str] = None,
        **kwargs,
    ) -> "RuleBasedAgent":
        """Config hook: default the comfort band to the environment's reward config."""
        if "comfort" not in kwargs:
            if season is not None:
                kwargs["comfort"] = ComfortConfig.for_season(season)
            elif environment is not None:
                kwargs["comfort"] = environment.config.reward.comfort
        return cls(**kwargs)

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        actions = environment.config.actions
        occupied = environment.occupied_at(step)
        preheating = False
        if not occupied and self.preheat_hours > 0:
            # Look ahead: occupied within the pre-heat window?
            steps_per_hour = environment.config.simulation.steps_per_hour
            lookahead = int(round(self.preheat_hours * steps_per_hour))
            preheating = any(
                environment.occupied_at(step + k)
                for k in range(1, lookahead + 1)
                if step + k < environment.num_steps
            )
        if occupied or preheating:
            heating = self.comfort.lower + self.setback_margin
            cooling = self.comfort.upper - self.setback_margin
        else:
            heating, cooling = actions.off_setpoints()
        heating_sp, cooling_sp = actions.clip(heating, cooling)
        return environment.action_space.to_index(heating_sp, cooling_sp)

    # ------------------------------------------------------- batched selection
    def action_plan(self, environment: HVACEnvironment) -> np.ndarray:
        """The controller's full per-step action sequence for one environment.

        The schedule policy ignores the observation entirely — its decision is
        a pure function of the occupancy calendar — so the whole episode
        compiles to an index array once.  Each step of the plan reproduces
        :meth:`select_action` term for term (same occupancy lookups, same
        pre-heat window, same clipping), which the batch-equivalence suite
        asserts.
        """
        if self._plan_cache is not None and self._plan_cache[0] is environment:
            return self._plan_cache[1]
        steps = environment.num_steps
        occupied = np.asarray(environment.occupancy.occupied[:steps], dtype=bool)
        active = occupied.copy()
        if self.preheat_hours > 0:
            steps_per_hour = environment.config.simulation.steps_per_hour
            lookahead = int(round(self.preheat_hours * steps_per_hour))
            for k in range(1, min(lookahead, steps - 1) + 1):
                active[:-k] |= occupied[k:]
        actions = environment.config.actions
        on_index = environment.action_space.to_index(
            self.comfort.lower + self.setback_margin,
            self.comfort.upper - self.setback_margin,
        )
        off_index = environment.action_space.to_index(*actions.off_setpoints())
        plan = np.where(active, on_index, off_index).astype(np.int64)
        self._plan_cache = (environment, plan)
        return plan

    @classmethod
    def select_actions_batch(
        cls,
        agents: Sequence["RuleBasedAgent"],
        observations: np.ndarray,
        environments: Sequence[HVACEnvironment],
        step: int,
    ) -> ActionBatch:
        """Vectorised batch path: one gather from the stacked action plans."""
        lead = agents[0]
        key = tuple(id(env) for env in environments)
        cache = getattr(lead, "_batch_plan_cache", None)
        if cache is None or cache[0] != key:
            plans = [agent.action_plan(env) for agent, env in zip(agents, environments)]
            if len({len(plan) for plan in plans}) != 1:
                # Mixed-horizon batches fall back to the per-episode reference.
                return super().select_actions_batch(agents, observations, environments, step)
            cache = (key, np.stack(plans))
            lead._batch_plan_cache = cache
        return ActionBatch(cache[1][:, step])
