"""Registry-driven agent construction.

Every controller in the library registers itself under a canonical name (plus
aliases), so callers — the :class:`~repro.experiments.runner.ExperimentRunner`,
the CLI, config files — can build any agent from a string and a keyword
dictionary::

    from repro.agents import make_agent

    agent = make_agent("rule_based")
    agent = make_agent("mbrl", environment=env, training_epochs=30)
    agent = make_agent("dt", environment=env, pipeline={"num_decision_data": 200})
    agent = make_agent("dt", environment=env, store="./policies")  # explicit store
    agent = make_agent("dt", environment=env, store=False)         # bypass the store

Construction goes through the class's ``from_config`` hook (see
:meth:`repro.agents.base.BaseAgent.from_config`), which receives the target
environment and a seed so model-based agents can train their dynamics model
and the decision-tree agent can extract-and-verify its policy on the fly.
The ``dt`` agent resolves its policy through the
:class:`~repro.store.PolicyStore` by default, so repeated construction with
an identical configuration deserialises the persisted artifact instead of
re-running the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.utils.rng import RNGLike


@dataclass(frozen=True)
class AgentSpec:
    """One registry entry."""

    name: str
    builder: Callable
    aliases: tuple
    summary: str


_REGISTRY: Dict[str, AgentSpec] = {}
_ALIASES: Dict[str, str] = {}
_BUILTINS_LOADED = False


def _normalise(name: str) -> str:
    return name.strip().lower().replace("-", "_").replace(" ", "_")


def register_agent(
    name: str,
    *,
    aliases: Sequence[str] = (),
    summary: str = "",
) -> Callable:
    """Class decorator (or factory decorator) adding an agent to the registry.

    The decorated object is either a :class:`~repro.agents.base.BaseAgent`
    subclass — built through its ``from_config`` classmethod — or a plain
    callable with the signature ``factory(environment=None, seed=None,
    **kwargs)``.
    """
    key = _normalise(name)

    def decorator(obj):
        builder = obj.from_config if hasattr(obj, "from_config") else obj
        doc = summary
        if not doc and obj.__doc__:
            doc = obj.__doc__.strip().splitlines()[0]
        spec = AgentSpec(name=key, builder=builder, aliases=tuple(aliases), summary=doc)
        if key in _REGISTRY:
            raise ValueError(f"Agent {key!r} is already registered")
        _REGISTRY[key] = spec
        for alias in spec.aliases:
            alias_key = _normalise(alias)
            if alias_key in _REGISTRY or alias_key in _ALIASES:
                raise ValueError(f"Agent alias {alias_key!r} collides with an existing name")
            _ALIASES[alias_key] = key
        return obj

    return decorator


def _ensure_builtins() -> None:
    """Import the built-in agent modules so their decorators have run."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Importing the package pulls in every controller module, each of which
    # registers itself at import time.
    import repro.agents  # noqa: F401  (side-effect import)

    _BUILTINS_LOADED = True


def canonical_name(name: str) -> str:
    """Resolve an agent name or alias to its canonical registry key."""
    _ensure_builtins()
    key = _normalise(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"Unknown agent {name!r}. Registered agents: {', '.join(available_agents())}"
        )
    return key


def available_agents() -> List[str]:
    """Canonical names of every registered agent."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def agent_summaries() -> Dict[str, str]:
    """Canonical name -> one-line description, for the CLI listing."""
    _ensure_builtins()
    return {name: spec.summary for name, spec in sorted(_REGISTRY.items())}


def agent_aliases() -> Dict[str, str]:
    """Alias -> canonical name mapping."""
    _ensure_builtins()
    return dict(_ALIASES)


def make_agent(
    name: str,
    environment=None,
    seed: RNGLike = None,
    **kwargs,
):
    """Build a registered agent from its name and a config dictionary.

    Parameters
    ----------
    name:
        Canonical agent name or alias (case/dash-insensitive).
    environment:
        The target :class:`~repro.env.hvac_env.HVACEnvironment`.  Model-based
        agents use it to source training data and the action space; stateless
        agents ignore it.
    seed:
        Seed forwarded to stochastic agents (and to on-the-fly model training),
        making string-driven construction fully deterministic.
    **kwargs:
        Agent-specific constructor options (see each agent's ``from_config``).
    """
    spec = _REGISTRY[canonical_name(name)]
    return spec.builder(environment=environment, seed=seed, **kwargs)
