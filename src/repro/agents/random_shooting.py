"""The Random Shooting (RS) stochastic optimiser.

RS is the stochastic optimiser used by the paper's MBRL baseline and by the
decision-dataset generator: it samples ``num_samples`` random action sequences
of length ``horizon``, rolls each sequence through the learned dynamics model
under the disturbance forecast, scores it with the discounted Eq. 2 reward and
executes the first action of the best sequence (Eq. 1 of the paper).

Because the candidate sequences are random, RS is itself a *stochastic policy*:
two calls on the same input can return different actions.  That stochasticity
is exactly the motivation experiment of the paper (Fig. 1), and the paper's
distillation step removes it by taking the most frequent action over repeated
RS runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.env.reward import comfort_violation_amount, setpoint_energy_proxy
from repro.env.spaces import SetpointSpace
from repro.utils.config import ActionSpaceConfig, RewardConfig
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs


@dataclass
class OptimizationResult:
    """Outcome of one RS planning call."""

    best_action_index: int
    best_sequence: np.ndarray
    best_return: float
    first_action_returns: Dict[int, float] = field(default_factory=dict)
    best_setpoints: Optional[Tuple[int, int]] = None


@dataclass
class BatchPlanResult:
    """Outcome of one :meth:`RandomShootingOptimizer.plan_batch` call.

    Arrays are indexed by planning problem; ``result(i)`` materialises the
    ``i``-th problem as an :class:`OptimizationResult` (without the per-action
    return table, which the batched path does not build).
    """

    best_action_indices: np.ndarray
    best_returns: np.ndarray
    best_sequences: np.ndarray
    best_setpoint_pairs: np.ndarray

    def __len__(self) -> int:
        return len(self.best_action_indices)

    def result(self, index: int) -> OptimizationResult:
        return OptimizationResult(
            best_action_index=int(self.best_action_indices[index]),
            best_sequence=self.best_sequences[index].copy(),
            best_return=float(self.best_returns[index]),
            best_setpoints=tuple(int(v) for v in self.best_setpoint_pairs[index]),
        )


class RandomShootingOptimizer:
    """Random-shooting planner over the discrete setpoint space."""

    def __init__(
        self,
        dynamics_model,
        action_space: SetpointSpace,
        reward_config: RewardConfig,
        action_config: Optional[ActionSpaceConfig] = None,
        num_samples: int = 1000,
        horizon: int = 20,
        discount: float = 0.99,
        seed: RNGLike = None,
    ):
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not (0.0 < discount <= 1.0):
            raise ValueError("discount must be in (0, 1]")
        self.dynamics_model = dynamics_model
        self.action_space = action_space
        self.reward_config = reward_config
        self.action_config = action_config or action_space.config
        self.num_samples = num_samples
        self.horizon = horizon
        self.discount = discount
        self._rng = ensure_rng(seed)
        # Pre-compute the (index -> setpoint pair) table as an array for fast lookup.
        self._pairs = np.array(action_space.pairs, dtype=float)

    # ----------------------------------------------------------------- reward
    def _step_rewards(
        self,
        next_states: np.ndarray,
        action_indices: np.ndarray,
        occupied: Union[bool, np.ndarray],
    ) -> np.ndarray:
        """Vectorised Eq. 2 over a batch of predicted next states and actions.

        ``occupied`` may be a scalar (one planning problem) or a per-row bool
        array (mixed problems inside one :meth:`plan_batch` call).
        """
        pairs = self._pairs[action_indices]
        off_heating, off_cooling = self.action_config.off_setpoints()
        energy = np.abs(pairs[:, 0] - off_heating) + np.abs(pairs[:, 1] - off_cooling)
        comfort = self.reward_config.comfort
        above = np.maximum(next_states - comfort.upper, 0.0)
        below = np.maximum(comfort.lower - next_states, 0.0)
        if isinstance(occupied, np.ndarray):
            w_e = self.reward_config.energy_weights(occupied)
        else:
            w_e = self.reward_config.energy_weight(occupied)
        return -w_e * energy - (1.0 - w_e) * (above + below)

    # ------------------------------------------------------------------- plan
    def plan(
        self,
        state: float,
        disturbance_forecast: np.ndarray,
        occupied_forecast: Sequence[bool],
        rng: RNGLike = None,
    ) -> OptimizationResult:
        """Run one random-shooting optimisation from ``state``.

        Parameters
        ----------
        state:
            Current controlled-zone temperature.
        disturbance_forecast:
            ``(H, 5)`` disturbances for the next ``H >= horizon`` steps.
        occupied_forecast:
            Occupied flags for the same steps (controls the reward weight).
        rng:
            Optional generator overriding the optimiser's own (used by the
            Monte-Carlo distillation, which needs independent repeated runs).
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        disturbance_forecast = np.atleast_2d(np.asarray(disturbance_forecast, dtype=float))
        horizon = min(self.horizon, len(disturbance_forecast))
        if horizon == 0:
            raise ValueError("disturbance_forecast must cover at least one step")
        occupied = list(occupied_forecast)
        if len(occupied) < horizon:
            raise ValueError("occupied_forecast must cover the planning horizon")

        sequences = generator.integers(0, self.action_space.n, size=(self.num_samples, horizon))
        states = np.full(self.num_samples, float(state), dtype=np.float64)
        returns = np.zeros(self.num_samples, dtype=np.float64)

        for t in range(horizon):
            action_indices = sequences[:, t]
            actions = self._pairs[action_indices]
            # A read-only broadcast view: no (num_samples, 5) copy per step.
            disturbances = np.broadcast_to(
                disturbance_forecast[t], (self.num_samples, disturbance_forecast.shape[1])
            )
            next_states = self._predict(states, disturbances, actions)
            returns += (self.discount**t) * self._step_rewards(
                next_states, action_indices, occupied[t]
            )
            states = next_states

        best = int(np.argmax(returns))
        first_actions = sequences[:, 0]
        first_action_returns: Dict[int, float] = {}
        for action in np.unique(first_actions):
            first_action_returns[int(action)] = float(returns[first_actions == action].max())
        best_index = int(sequences[best, 0])
        return OptimizationResult(
            best_action_index=best_index,
            best_sequence=sequences[best].copy(),
            best_return=float(returns[best]),
            first_action_returns=first_action_returns,
            best_setpoints=tuple(int(v) for v in self._pairs[best_index]),
        )

    # -------------------------------------------------------------- plan_batch
    def plan_batch(
        self,
        states: np.ndarray,
        disturbance_forecasts: np.ndarray,
        occupied_forecasts: np.ndarray,
        rngs: Optional[Sequence[np.random.Generator]] = None,
    ) -> BatchPlanResult:
        """Solve ``N`` independent planning problems with flat array ops.

        All ``N × num_samples`` candidate action sequences are rolled through
        the dynamics model together: at each horizon step one
        ``(N * num_samples,)`` model call replaces ``N`` separate
        ``(num_samples,)`` calls.  Each problem draws its candidate sequences
        from its own generator with exactly the calls :meth:`plan` would make,
        so given the same generators the batched results are bit-identical to
        ``N`` serial ``plan()`` calls (the per-row model arithmetic is
        independent of the batch size).

        Parameters
        ----------
        states:
            ``(N,)`` current controlled-zone temperatures, one per problem.
        disturbance_forecasts:
            ``(N, H, 5)`` per-problem forecasts, or ``(H, 5)`` shared by all.
        occupied_forecasts:
            ``(N, H)`` (or ``(H,)`` shared) occupied flags.
        rngs:
            One generator per problem; spawned from the optimiser's own
            generator when omitted.
        """
        states = np.atleast_1d(np.asarray(states, dtype=float))
        n_problems = len(states)
        forecasts = np.asarray(disturbance_forecasts, dtype=float)
        if forecasts.ndim == 2:
            forecasts = np.broadcast_to(forecasts, (n_problems,) + forecasts.shape)
        if forecasts.ndim != 3 or forecasts.shape[0] != n_problems:
            raise ValueError("disturbance_forecasts must have shape (N, H, 5) or (H, 5)")
        occupied = np.asarray(occupied_forecasts, dtype=bool)
        if occupied.ndim == 1:
            occupied = np.broadcast_to(occupied, (n_problems, occupied.shape[0]))
        horizon = min(self.horizon, forecasts.shape[1])
        if horizon == 0:
            raise ValueError("disturbance_forecasts must cover at least one step")
        if occupied.shape[1] < horizon:
            raise ValueError("occupied_forecasts must cover the planning horizon")
        if rngs is None:
            rngs = spawn_rngs(self._rng, n_problems)
        if len(rngs) != n_problems:
            raise ValueError(f"Expected {n_problems} generators, got {len(rngs)}")

        num_samples = self.num_samples
        sequences = np.empty((n_problems, num_samples, horizon), dtype=np.int64)
        for i, generator in enumerate(rngs):
            # The exact draw plan() makes, one problem at a time.
            sequences[i] = generator.integers(
                0, self.action_space.n, size=(num_samples, horizon)
            )
        flat_sequences = sequences.reshape(n_problems * num_samples, horizon)
        flat_states = np.repeat(states, num_samples)
        returns = np.zeros(n_problems * num_samples, dtype=np.float64)

        # Persistence forecasts (every step identical per problem) are a
        # broadcast view with a zero stride along the horizon axis — hoist
        # the per-step disturbance/occupancy gather out of the loop for them.
        persistent = forecasts.strides[1] == 0 and occupied.strides[1] == 0
        if persistent:
            shared_disturbances = np.repeat(forecasts[:, 0, :], num_samples, axis=0)
            shared_occupied = np.repeat(occupied[:, 0], num_samples)

        for t in range(horizon):
            action_indices = flat_sequences[:, t]
            actions = self._pairs[action_indices]
            if persistent:
                disturbances = shared_disturbances
                occupied_t = shared_occupied
            else:
                disturbances = np.repeat(forecasts[:, t, :], num_samples, axis=0)
                occupied_t = np.repeat(occupied[:, t], num_samples)
            next_states = self._predict(flat_states, disturbances, actions)
            returns += (self.discount**t) * self._step_rewards(
                next_states, action_indices, occupied_t
            )
            flat_states = next_states

        per_problem = returns.reshape(n_problems, num_samples)
        best = np.argmax(per_problem, axis=1)  # first max, matching plan()
        rows = np.arange(n_problems)
        best_sequences = sequences[rows, best]
        best_indices = best_sequences[:, 0]
        return BatchPlanResult(
            best_action_indices=best_indices.copy(),
            best_returns=per_problem[rows, best],
            best_sequences=best_sequences.copy(),
            best_setpoint_pairs=self._pairs[best_indices].astype(int),
        )

    def _predict(
        self, states: np.ndarray, disturbances: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Predict next states; ensemble models return (mean, std) tuples."""
        prediction = self.dynamics_model.predict(states, disturbances, actions)
        if isinstance(prediction, tuple):
            return prediction[0]
        return prediction
