"""The Random Shooting (RS) stochastic optimiser.

RS is the stochastic optimiser used by the paper's MBRL baseline and by the
decision-dataset generator: it samples ``num_samples`` random action sequences
of length ``horizon``, rolls each sequence through the learned dynamics model
under the disturbance forecast, scores it with the discounted Eq. 2 reward and
executes the first action of the best sequence (Eq. 1 of the paper).

Because the candidate sequences are random, RS is itself a *stochastic policy*:
two calls on the same input can return different actions.  That stochasticity
is exactly the motivation experiment of the paper (Fig. 1), and the paper's
distillation step removes it by taking the most frequent action over repeated
RS runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.env.reward import comfort_violation_amount, setpoint_energy_proxy
from repro.env.spaces import SetpointSpace
from repro.utils.config import ActionSpaceConfig, RewardConfig
from repro.utils.rng import RNGLike, ensure_rng


@dataclass
class OptimizationResult:
    """Outcome of one RS planning call."""

    best_action_index: int
    best_sequence: np.ndarray
    best_return: float
    first_action_returns: Dict[int, float] = field(default_factory=dict)

    @property
    def best_setpoints(self) -> Optional[Tuple[int, int]]:
        return None  # filled by callers that know the action space


class RandomShootingOptimizer:
    """Random-shooting planner over the discrete setpoint space."""

    def __init__(
        self,
        dynamics_model,
        action_space: SetpointSpace,
        reward_config: RewardConfig,
        action_config: Optional[ActionSpaceConfig] = None,
        num_samples: int = 1000,
        horizon: int = 20,
        discount: float = 0.99,
        seed: RNGLike = None,
    ):
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not (0.0 < discount <= 1.0):
            raise ValueError("discount must be in (0, 1]")
        self.dynamics_model = dynamics_model
        self.action_space = action_space
        self.reward_config = reward_config
        self.action_config = action_config or action_space.config
        self.num_samples = num_samples
        self.horizon = horizon
        self.discount = discount
        self._rng = ensure_rng(seed)
        # Pre-compute the (index -> setpoint pair) table as an array for fast lookup.
        self._pairs = np.array(action_space.pairs, dtype=float)

    # ----------------------------------------------------------------- reward
    def _step_rewards(
        self, next_states: np.ndarray, action_indices: np.ndarray, occupied: bool
    ) -> np.ndarray:
        """Vectorised Eq. 2 over a batch of predicted next states and actions."""
        pairs = self._pairs[action_indices]
        off_heating, off_cooling = self.action_config.off_setpoints()
        energy = np.abs(pairs[:, 0] - off_heating) + np.abs(pairs[:, 1] - off_cooling)
        comfort = self.reward_config.comfort
        above = np.maximum(next_states - comfort.upper, 0.0)
        below = np.maximum(comfort.lower - next_states, 0.0)
        w_e = self.reward_config.energy_weight(occupied)
        return -w_e * energy - (1.0 - w_e) * (above + below)

    # ------------------------------------------------------------------- plan
    def plan(
        self,
        state: float,
        disturbance_forecast: np.ndarray,
        occupied_forecast: Sequence[bool],
        rng: RNGLike = None,
    ) -> OptimizationResult:
        """Run one random-shooting optimisation from ``state``.

        Parameters
        ----------
        state:
            Current controlled-zone temperature.
        disturbance_forecast:
            ``(H, 5)`` disturbances for the next ``H >= horizon`` steps.
        occupied_forecast:
            Occupied flags for the same steps (controls the reward weight).
        rng:
            Optional generator overriding the optimiser's own (used by the
            Monte-Carlo distillation, which needs independent repeated runs).
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        disturbance_forecast = np.atleast_2d(np.asarray(disturbance_forecast, dtype=float))
        horizon = min(self.horizon, len(disturbance_forecast))
        if horizon == 0:
            raise ValueError("disturbance_forecast must cover at least one step")
        occupied = list(occupied_forecast)
        if len(occupied) < horizon:
            raise ValueError("occupied_forecast must cover the planning horizon")

        sequences = generator.integers(0, self.action_space.n, size=(self.num_samples, horizon))
        states = np.full(self.num_samples, float(state))
        returns = np.zeros(self.num_samples)

        for t in range(horizon):
            action_indices = sequences[:, t]
            actions = self._pairs[action_indices]
            disturbances = np.repeat(
                disturbance_forecast[t].reshape(1, -1), self.num_samples, axis=0
            )
            next_states = self._predict(states, disturbances, actions)
            returns += (self.discount**t) * self._step_rewards(
                next_states, action_indices, occupied[t]
            )
            states = next_states

        best = int(np.argmax(returns))
        first_actions = sequences[:, 0]
        first_action_returns: Dict[int, float] = {}
        for action in np.unique(first_actions):
            first_action_returns[int(action)] = float(returns[first_actions == action].max())
        return OptimizationResult(
            best_action_index=int(sequences[best, 0]),
            best_sequence=sequences[best].copy(),
            best_return=float(returns[best]),
            first_action_returns=first_action_returns,
        )

    def _predict(
        self, states: np.ndarray, disturbances: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Predict next states; ensemble models return (mean, std) tuples."""
        prediction = self.dynamics_model.predict(states, disturbances, actions)
        if isinstance(prediction, tuple):
            return prediction[0]
        return prediction
