"""The MBRL baseline agent (learned dynamics model + stochastic optimiser).

This is the conventional MBRL approach of the paper's reference [9] (Mb2C): at
every control step it queries the disturbance forecast, runs the random
shooting optimiser through the learned dynamics model and executes the first
action of the best sampled sequence.  Its per-step cost and decision
stochasticity are what the paper's Fig. 1 and Table 3 measure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.random_shooting import RandomShootingOptimizer
from repro.env.hvac_env import HVACEnvironment
from repro.nn.dynamics import ThermalDynamicsModel
from repro.utils.config import RewardConfig
from repro.utils.rng import RNGLike, ensure_rng


class MBRLAgent(BaseAgent):
    """Model-based RL agent using random shooting over a learned dynamics model."""

    name = "MBRL"

    def __init__(
        self,
        dynamics_model: ThermalDynamicsModel,
        reward_config: Optional[RewardConfig] = None,
        num_samples: int = 1000,
        horizon: int = 20,
        discount: float = 0.99,
        seed: RNGLike = None,
    ):
        self.dynamics_model = dynamics_model
        self.reward_config = reward_config or RewardConfig()
        self.num_samples = num_samples
        self.horizon = horizon
        self.discount = discount
        self._rng = ensure_rng(seed)
        self._optimizer: Optional[RandomShootingOptimizer] = None

    def _ensure_optimizer(self, environment: HVACEnvironment) -> RandomShootingOptimizer:
        if self._optimizer is None:
            self._optimizer = RandomShootingOptimizer(
                dynamics_model=self.dynamics_model,
                action_space=environment.action_space,
                reward_config=self.reward_config,
                action_config=environment.config.actions,
                num_samples=self.num_samples,
                horizon=self.horizon,
                discount=self.discount,
                seed=self._rng,
            )
        return self._optimizer

    def reset(self) -> None:
        # The optimiser is tied to the environment's action space; rebuilding it
        # on reset keeps the agent reusable across environments.
        self._optimizer = None

    def forecast_for(self, environment: HVACEnvironment, step: int) -> tuple:
        """The (disturbance, occupied-flag) forecast over the planning horizon."""
        horizon = min(self.horizon, environment.num_steps - step)
        horizon = max(horizon, 1)
        disturbances = environment.disturbance_forecast(step, horizon)
        occupied = [environment.occupied_at(step + k) for k in range(horizon)]
        return disturbances, occupied

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        optimizer = self._ensure_optimizer(environment)
        disturbances, occupied = self.forecast_for(environment, step)
        result = optimizer.plan(float(observation[0]), disturbances, occupied)
        return result.best_action_index
