"""The MBRL baseline agent (learned dynamics model + stochastic optimiser).

This is the conventional MBRL approach of the paper's reference [9] (Mb2C): at
every control step it queries the disturbance forecast, runs the random
shooting optimiser through the learned dynamics model and executes the first
action of the best sampled sequence.  Its per-step cost and decision
stochasticity are what the paper's Fig. 1 and Table 3 measure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.random_shooting import RandomShootingOptimizer
from repro.agents.registry import register_agent
from repro.env.hvac_env import HVACEnvironment, make_environment
from repro.nn.dynamics import EnsembleDynamicsModel, ThermalDynamicsModel
from repro.utils.config import RewardConfig
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs


def train_dynamics_from_environment(
    environment: HVACEnvironment,
    seed: RNGLike = None,
    hidden_sizes: Sequence[int] = (64, 64),
    training_epochs: int = 30,
    training_days: int = 2,
    exploration_probability: float = 0.3,
    ensemble_members: Optional[int] = None,
):
    """Train a dynamics model on data collected in a copy of ``environment``.

    The registry's config-driven construction path uses this when a
    model-based agent is requested without a pre-trained model: a *separate*
    environment with the same city, configuration and occupancy density is
    rolled out under the exploratory rule-based behaviour policy (so the
    target environment's episode state is untouched), and a dynamics model is
    fitted on the resulting transitions.
    """
    from repro.agents.rule_based import RuleBasedAgent
    from repro.env.dataset import collect_historical_data

    collect_rng, fit_rng = spawn_rngs(seed, 2)
    # The environment does not carry its occupancy schedule, only the realised
    # series; the observed peak recovers the schedule's peak_occupants closely
    # enough for training-data purposes.
    observed_peak = int(round(float(np.max(environment.occupancy.counts, initial=0.0))))
    source = make_environment(
        days=max(int(training_days), 1),
        config=environment.config,
        peak_occupants=max(observed_peak, 1),
    )
    behaviour = RuleBasedAgent(comfort=environment.config.reward.comfort)
    dataset = collect_historical_data(
        source,
        behaviour,
        exploration_probability=exploration_probability,
        seed=collect_rng,
    )
    if ensemble_members:
        model = EnsembleDynamicsModel(
            num_members=ensemble_members, hidden_sizes=hidden_sizes, seed=fit_rng
        )
    else:
        model = ThermalDynamicsModel(hidden_sizes=hidden_sizes, seed=fit_rng)
    model.fit(dataset, epochs=training_epochs, seed=fit_rng)
    return model


@register_agent("mbrl", aliases=("rs", "random_shooting"))
class MBRLAgent(BaseAgent):
    """Model-based RL agent using random shooting over a learned dynamics model."""

    name = "MBRL"

    def __init__(
        self,
        dynamics_model: ThermalDynamicsModel,
        reward_config: Optional[RewardConfig] = None,
        num_samples: int = 1000,
        horizon: int = 20,
        discount: float = 0.99,
        seed: RNGLike = None,
    ):
        self.dynamics_model = dynamics_model
        self.reward_config = reward_config or RewardConfig()
        self.num_samples = num_samples
        self.horizon = horizon
        self.discount = discount
        self._rng = ensure_rng(seed)
        self._optimizer: Optional[RandomShootingOptimizer] = None

    def _ensure_optimizer(self, environment: HVACEnvironment) -> RandomShootingOptimizer:
        if self._optimizer is None:
            self._optimizer = RandomShootingOptimizer(
                dynamics_model=self.dynamics_model,
                action_space=environment.action_space,
                reward_config=self.reward_config,
                action_config=environment.config.actions,
                num_samples=self.num_samples,
                horizon=self.horizon,
                discount=self.discount,
                seed=self._rng,
            )
        return self._optimizer

    def reset(self) -> None:
        # The optimiser is tied to the environment's action space; rebuilding it
        # on reset keeps the agent reusable across environments.
        self._optimizer = None

    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        dynamics_model: Optional[ThermalDynamicsModel] = None,
        hidden_sizes: Sequence[int] = (64, 64),
        training_epochs: int = 30,
        training_days: int = 2,
        exploration_probability: float = 0.3,
        **kwargs,
    ) -> "MBRLAgent":
        """Config hook: train a dynamics model from the environment when none is given."""
        train_rng, agent_rng = spawn_rngs(seed, 2)
        if dynamics_model is None:
            if environment is None:
                raise ValueError(
                    f"{cls.__name__} needs either a dynamics_model or an environment "
                    "to train one from"
                )
            dynamics_model = train_dynamics_from_environment(
                environment,
                seed=train_rng,
                hidden_sizes=hidden_sizes,
                training_epochs=training_epochs,
                training_days=training_days,
                exploration_probability=exploration_probability,
            )
        if environment is not None and "reward_config" not in kwargs:
            kwargs["reward_config"] = environment.config.reward
        return cls(dynamics_model=dynamics_model, seed=agent_rng, **kwargs)

    def forecast_for(self, environment: HVACEnvironment, step: int) -> tuple:
        """The (disturbance, occupied-flag) forecast over the planning horizon."""
        horizon = min(self.horizon, environment.num_steps - step)
        horizon = max(horizon, 1)
        disturbances = environment.disturbance_forecast(step, horizon)
        occupied = [environment.occupied_at(step + k) for k in range(horizon)]
        return disturbances, occupied

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        optimizer = self._ensure_optimizer(environment)
        disturbances, occupied = self.forecast_for(environment, step)
        result = optimizer.plan(float(observation[0]), disturbances, occupied)
        return result.best_action_index
