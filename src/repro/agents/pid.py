"""Classical PI(D) baseline controller.

A textbook proportional-integral-derivative loop around the comfort-band
midpoint, discretised per control step: the error is ``midpoint - zone``,
the integral term carries an anti-windup clamp (without it, a long night
setback would wind the integrator up and overshoot every morning), and the
derivative term is zero until one error sample has been seen.  The control
signal shifts a narrow setpoint band up or down around the midpoint, which
the action-space clip then snaps onto the discrete setpoint grid.

Patterned on hass-ufh-controller's ``core/pid.py`` (PAPERS.md related work)
— the same loop that runs real underfloor-heating zones — and registered as
a baseline agent so the robustness bench can compare it against the MPC
teacher and the distilled tree under faults.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.registry import register_agent
from repro.data import ActionBatch, ObservationBatch
from repro.env.hvac_env import HVACEnvironment
from repro.utils.config import ComfortConfig
from repro.utils.rng import RNGLike

#: Setpoint codes for the vectorised (heating, cooling) -> index lookup.
#: Setpoints are small integers, so ``h * _CODE_BASE + c`` is collision-free.
_CODE_BASE = 1024


@register_agent(
    "pid",
    aliases=("pi",),
    summary="classical PI(D) loop around the comfort midpoint with anti-windup",
)
class PIDAgent(BaseAgent):
    """Discrete-time PID controller tracking the comfort midpoint."""

    name = "pid"

    def __init__(
        self,
        comfort: Optional[ComfortConfig] = None,
        kp: float = 2.0,
        ki: float = 0.1,
        kd: float = 0.0,
        windup_limit: float = 3.0,
        band: float = 0.5,
    ):
        self.comfort = comfort or ComfortConfig.winter()
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.windup_limit = float(windup_limit)
        self.band = float(band)
        if self.windup_limit <= 0:
            raise ValueError("windup_limit must be positive")
        if self.band <= 0:
            raise ValueError("band must be positive")
        self._integral = 0.0
        self._prev_error = 0.0
        self._has_prev = False
        # (env-identity key, per-step cached arrays) for the batch fast path.
        self._batch_cache = None

    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        season: Optional[str] = None,
        **kwargs,
    ) -> "PIDAgent":
        """Config hook: default the comfort band to the environment's reward config."""
        if "comfort" not in kwargs:
            if season is not None:
                kwargs["comfort"] = ComfortConfig.for_season(season)
            elif environment is not None:
                kwargs["comfort"] = environment.config.reward.comfort
        return cls(**kwargs)

    def reset(self) -> None:
        self._integral = 0.0
        self._prev_error = 0.0
        self._has_prev = False

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        zone = float(np.asarray(observation, dtype=float).reshape(-1)[0])
        actions = environment.config.actions
        off_heating, off_cooling = actions.off_setpoints()
        if not environment.occupied_at(step):
            # Setback: release the plant and bleed the controller state so a
            # long unoccupied stretch cannot wind the integrator up.
            self.reset()
            return environment.action_space.to_index(
                *actions.clip(off_heating, off_cooling)
            )
        error = self.comfort.midpoint - zone
        self._integral = min(
            max(self._integral + error, -self.windup_limit), self.windup_limit
        )
        derivative = (error - self._prev_error) if self._has_prev else 0.0
        self._prev_error = error
        self._has_prev = True
        control = self.kp * error + self.ki * self._integral + self.kd * derivative
        center = self.comfort.midpoint + control
        heating, cooling = actions.clip(center - self.band, center + self.band)
        return environment.action_space.to_index(heating, cooling)

    # ------------------------------------------------------- batched selection
    @classmethod
    def for_environments(
        cls, environments: Sequence[HVACEnvironment], **kwargs
    ) -> List["PIDAgent"]:
        """One PID loop per environment."""
        return [cls.from_config(env, **kwargs) for env in environments]

    @classmethod
    def select_actions_batch(
        cls,
        agents: Sequence["PIDAgent"],
        observations: Union[ObservationBatch, np.ndarray],
        environments: Sequence[HVACEnvironment],
        step: int,
    ) -> ActionBatch:
        """Vectorised PID update over the whole batch.

        Per-agent gains and the action-space clip bounds are compiled once per
        (agents, environments) pairing; each tick is then pure array math plus
        a state gather/scatter on the agent instances, with the (heating,
        cooling) -> index lookup done by binary search over setpoint codes.
        Every operation mirrors :meth:`select_action` element-wise (python
        ``round``/``min``/``max`` and ``np.round``/``np.minimum``/
        ``np.maximum`` agree bit-for-bit on these values), so batched
        decisions equal the per-episode path exactly.  Falls back to the
        per-episode loop when the environments do not share an action space.
        """
        lead = agents[0]
        key = tuple(id(a) for a in agents) + tuple(id(e) for e in environments)
        cache = getattr(lead, "_batch_cache", None)
        if cache is None or cache[0] != key:
            cache = (key, _compile_batch(agents, environments))
            lead._batch_cache = cache
        compiled = cache[1]
        if compiled is None:
            return BaseAgent.select_actions_batch.__func__(
                cls, agents, observations, environments, step
            )
        (
            occupied,
            midpoint,
            kp,
            ki,
            kd,
            windup,
            band,
            off_idx,
            clip,
            indexer,
        ) = compiled

        count = len(agents)
        zone = np.asarray(observations, dtype=float)[:, 0]
        occ = occupied[:, step]
        integral = np.fromiter((a._integral for a in agents), dtype=float, count=count)
        prev_error = np.fromiter(
            (a._prev_error for a in agents), dtype=float, count=count
        )
        has_prev = np.fromiter((a._has_prev for a in agents), dtype=bool, count=count)

        error = midpoint - zone
        new_integral = np.minimum(np.maximum(integral + error, -windup), windup)
        derivative = np.where(has_prev, error - prev_error, 0.0)
        control = kp * error + ki * new_integral + kd * derivative
        center = midpoint + control
        heating, cooling = clip(center - band, center + band)
        indices = np.where(occ, indexer(heating, cooling), off_idx)

        for i, agent in enumerate(agents):
            if occ[i]:
                agent._integral = float(new_integral[i])
                agent._prev_error = float(error[i])
                agent._has_prev = True
            else:
                agent._integral = 0.0
                agent._prev_error = 0.0
                agent._has_prev = False
        return ActionBatch(indices)


def _compile_batch(
    agents: Sequence[PIDAgent], environments: Sequence[HVACEnvironment]
):
    """Per-step constants for the batch fast path (None -> fall back)."""
    first_pairs = environments[0].action_space.pairs
    if any(env.action_space.pairs != first_pairs for env in environments[1:]):
        return None
    count = len(agents)
    steps = min(env.num_steps for env in environments)
    occupied = np.stack(
        [np.asarray(env.occupancy.occupied[:steps], dtype=bool) for env in environments]
    )
    midpoint = np.empty(count, dtype=float)
    kp = np.empty(count, dtype=float)
    ki = np.empty(count, dtype=float)
    kd = np.empty(count, dtype=float)
    windup = np.empty(count, dtype=float)
    band = np.empty(count, dtype=float)
    off_idx = np.empty(count, dtype=np.int64)
    bounds = np.empty((count, 4), dtype=float)
    for i, (agent, env) in enumerate(zip(agents, environments)):
        actions = env.config.actions
        midpoint[i] = agent.comfort.midpoint
        kp[i] = agent.kp
        ki[i] = agent.ki
        kd[i] = agent.kd
        windup[i] = agent.windup_limit
        band[i] = agent.band
        off_idx[i] = env.action_space.to_index(
            *actions.clip(*actions.off_setpoints())
        )
        bounds[i] = (
            actions.heating_min,
            actions.heating_max,
            actions.cooling_min,
            actions.cooling_max,
        )
    hmin, hmax, cmin, cmax = bounds[:, 0], bounds[:, 1], bounds[:, 2], bounds[:, 3]

    def clip(heating: np.ndarray, cooling: np.ndarray):
        h = np.round(heating)
        c = np.round(cooling)
        h = np.minimum(np.maximum(h, hmin), hmax)
        c = np.minimum(np.maximum(c, cmin), cmax)
        bad = h > c
        c_fix = np.minimum(np.maximum(h, cmin), cmax)
        h_fix = np.minimum(h, c_fix)
        return np.where(bad, h_fix, h), np.where(bad, c_fix, c)

    pair_table = np.array(first_pairs, dtype=np.int64)
    codes = pair_table[:, 0] * _CODE_BASE + pair_table[:, 1]
    order = np.argsort(codes)
    sorted_codes = codes[order]

    def indexer(heating: np.ndarray, cooling: np.ndarray) -> np.ndarray:
        query = (
            heating.astype(np.int64) * _CODE_BASE + cooling.astype(np.int64)
        )
        slots = np.searchsorted(sorted_codes, query)
        if (slots >= len(sorted_codes)).any() or (
            sorted_codes[np.minimum(slots, len(sorted_codes) - 1)] != query
        ).any():
            raise ValueError("Clipped setpoint pair outside the action table")
        return order[slots]

    return (occupied, midpoint, kp, ki, kd, windup, band, off_idx, clip, indexer)
