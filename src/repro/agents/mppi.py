"""Model Predictive Path Integral (MPPI) optimiser.

The paper mentions MPPI as the other stochastic optimiser used by MBRL HVAC
controllers (its reference [1] uses it).  It is included both for completeness
and for the optimiser ablation benchmark: MPPI perturbs a nominal setpoint
sequence with Gaussian noise, weights the sampled sequences by the exponential
of their returns and updates the nominal sequence towards the weighted mean.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.agents.mbrl import MBRLAgent
from repro.agents.random_shooting import OptimizationResult
from repro.agents.registry import register_agent
from repro.env.spaces import SetpointSpace
from repro.utils.config import ActionSpaceConfig, RewardConfig
from repro.utils.rng import RNGLike, ensure_rng


class MPPIOptimizer:
    """MPPI planner over continuous setpoints, projected to the discrete space."""

    def __init__(
        self,
        dynamics_model,
        action_space: SetpointSpace,
        reward_config: RewardConfig,
        action_config: Optional[ActionSpaceConfig] = None,
        num_samples: int = 200,
        horizon: int = 20,
        num_iterations: int = 3,
        temperature: float = 1.0,
        noise_std: float = 2.0,
        discount: float = 0.99,
        seed: RNGLike = None,
    ):
        if num_samples <= 0 or horizon <= 0 or num_iterations <= 0:
            raise ValueError("num_samples, horizon and num_iterations must be positive")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.dynamics_model = dynamics_model
        self.action_space = action_space
        self.reward_config = reward_config
        self.action_config = action_config or action_space.config
        self.num_samples = num_samples
        self.horizon = horizon
        self.num_iterations = num_iterations
        self.temperature = temperature
        self.noise_std = noise_std
        self.discount = discount
        self._rng = ensure_rng(seed)

    def plan(
        self,
        state: float,
        disturbance_forecast: np.ndarray,
        occupied_forecast: Sequence[bool],
        rng: RNGLike = None,
    ) -> OptimizationResult:
        """Run MPPI from ``state`` and return the best first action."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        disturbance_forecast = np.atleast_2d(np.asarray(disturbance_forecast, dtype=float))
        horizon = min(self.horizon, len(disturbance_forecast))
        occupied = list(occupied_forecast)
        if len(occupied) < horizon:
            raise ValueError("occupied_forecast must cover the planning horizon")
        cfg = self.action_config

        # Nominal sequence: hold the comfort midpoint for heating, max cooling.
        nominal_heating = np.full(horizon, self.reward_config.comfort.midpoint, dtype=np.float64)
        nominal_cooling = np.full(horizon, float(cfg.cooling_max), dtype=np.float64)

        for _iteration in range(self.num_iterations):
            noise_h = generator.normal(0.0, self.noise_std, size=(self.num_samples, horizon))
            noise_c = generator.normal(0.0, self.noise_std, size=(self.num_samples, horizon))
            heating = np.clip(nominal_heating + noise_h, cfg.heating_min, cfg.heating_max)
            cooling = np.clip(nominal_cooling + noise_c, cfg.cooling_min, cfg.cooling_max)
            cooling = np.maximum(cooling, heating)

            states = np.full(self.num_samples, float(state), dtype=np.float64)
            returns = np.zeros(self.num_samples, dtype=np.float64)
            off_heating, off_cooling = cfg.off_setpoints()
            comfort = self.reward_config.comfort
            for t in range(horizon):
                actions = np.column_stack([heating[:, t], cooling[:, t]])
                disturbances = np.repeat(
                    disturbance_forecast[t].reshape(1, -1), self.num_samples, axis=0
                )
                next_states = self._predict(states, disturbances, actions)
                energy = np.abs(heating[:, t] - off_heating) + np.abs(cooling[:, t] - off_cooling)
                above = np.maximum(next_states - comfort.upper, 0.0)
                below = np.maximum(comfort.lower - next_states, 0.0)
                w_e = self.reward_config.energy_weight(occupied[t])
                returns += (self.discount**t) * (-w_e * energy - (1.0 - w_e) * (above + below))
                states = next_states

            weights = np.exp((returns - returns.max()) / self.temperature)
            weights /= weights.sum()
            nominal_heating = weights @ heating
            nominal_cooling = np.maximum(weights @ cooling, nominal_heating)

        best_pair = cfg.clip(nominal_heating[0], nominal_cooling[0])
        best_index = self.action_space.to_index(*best_pair)
        best_sequence = np.array(
            [
                self.action_space.to_index(*cfg.clip(h, c))
                for h, c in zip(nominal_heating, nominal_cooling)
            ],
            dtype=np.int64,
        )
        return OptimizationResult(
            best_action_index=best_index,
            best_sequence=best_sequence,
            best_return=float(returns.max()),
            first_action_returns={best_index: float(returns.max())},
            best_setpoints=tuple(int(v) for v in best_pair),
        )

    def _predict(
        self, states: np.ndarray, disturbances: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        prediction = self.dynamics_model.predict(states, disturbances, actions)
        if isinstance(prediction, tuple):
            return prediction[0]
        return prediction


@register_agent("mppi")
class MPPIAgent(MBRLAgent):
    """MBRL agent whose stochastic optimiser is MPPI instead of random shooting.

    Included for the paper's optimiser ablation: same learned dynamics model
    and reward, different planner.
    """

    name = "MPPI"

    def __init__(
        self,
        dynamics_model,
        reward_config: Optional[RewardConfig] = None,
        num_samples: int = 200,
        horizon: int = 20,
        num_iterations: int = 3,
        temperature: float = 1.0,
        noise_std: float = 2.0,
        discount: float = 0.99,
        seed: RNGLike = None,
    ):
        super().__init__(
            dynamics_model=dynamics_model,
            reward_config=reward_config,
            num_samples=num_samples,
            horizon=horizon,
            discount=discount,
            seed=seed,
        )
        self.num_iterations = num_iterations
        self.temperature = temperature
        self.noise_std = noise_std

    def _ensure_optimizer(self, environment) -> MPPIOptimizer:
        if self._optimizer is None:
            self._optimizer = MPPIOptimizer(
                dynamics_model=self.dynamics_model,
                action_space=environment.action_space,
                reward_config=self.reward_config,
                action_config=environment.config.actions,
                num_samples=self.num_samples,
                horizon=self.horizon,
                num_iterations=self.num_iterations,
                temperature=self.temperature,
                noise_std=self.noise_std,
                discount=self.discount,
                seed=self._rng,
            )
        return self._optimizer
