"""Agent interface and trivial reference agents."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.env.hvac_env import HVACEnvironment
from repro.utils.rng import RNGLike, ensure_rng


class BaseAgent:
    """Interface shared by every controller.

    ``select_action`` receives the current observation (the Table-1 vector),
    the environment (for disturbance forecasts and the action space) and the
    current step index, and returns a discrete action index of the
    environment's :class:`~repro.env.spaces.SetpointSpace`.
    """

    #: Human-readable name used in result tables.
    name: str = "base"

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Called at the start of every episode; stateless agents need not override."""

    def select_setpoints(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> Tuple[int, int]:
        """Convenience: the chosen action as a (heating, cooling) setpoint pair."""
        action = self.select_action(observation, environment, step)
        return environment.action_space.to_pair(action)


class RandomAgent(BaseAgent):
    """Uniformly random setpoints; used for exploration and as a sanity baseline."""

    name = "random"

    def __init__(self, seed: RNGLike = None):
        self._rng = ensure_rng(seed)

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        return environment.action_space.sample(self._rng)


class ConstantAgent(BaseAgent):
    """Always returns the same setpoint pair (useful in tests and ablations)."""

    name = "constant"

    def __init__(self, heating_setpoint: float, cooling_setpoint: float):
        self.heating_setpoint = heating_setpoint
        self.cooling_setpoint = cooling_setpoint

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        return environment.action_space.to_index(self.heating_setpoint, self.cooling_setpoint)
