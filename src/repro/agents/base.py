"""Agent interface and trivial reference agents."""

from __future__ import annotations

import inspect
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.agents.registry import register_agent
from repro.data import ActionBatch, ObservationBatch
from repro.env.hvac_env import HVACEnvironment
from repro.utils.rng import RNGLike, ensure_rng


class BaseAgent:
    """Interface shared by every controller.

    ``select_action`` receives the current observation (the Table-1 vector),
    the environment (for disturbance forecasts and the action space) and the
    current step index, and returns a discrete action index of the
    environment's :class:`~repro.env.spaces.SetpointSpace`.
    """

    #: Human-readable name used in result tables.
    name: str = "base"

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Called at the start of every episode; stateless agents need not override."""

    def select_setpoints(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> Tuple[int, int]:
        """Convenience: the chosen action as a (heating, cooling) setpoint pair."""
        action = self.select_action(observation, environment, step)
        return environment.action_space.to_pair(action)

    # ------------------------------------------------------- batched selection
    @classmethod
    def select_actions_batch(
        cls,
        agents: Sequence["BaseAgent"],
        observations: Union[ObservationBatch, np.ndarray],
        environments: Sequence[HVACEnvironment],
        step: int,
    ) -> ActionBatch:
        """Actions for a batch of per-episode agents at one step, columnar.

        ``agents[i]`` controls ``environments[i]`` and sees
        ``observations[i]`` — the layout of the batched experiment backend,
        which pairs one agent instance with one environment so per-episode
        seeding stays identical to the serial reference.  ``observations``
        is a columnar :class:`~repro.data.ObservationBatch` (a plain
        ``(B, F)`` array also works) and the result is an
        :class:`~repro.data.ActionBatch`, which numpy consumers can treat as
        the underlying ``(B,)`` index array.

        The default walks ``select_action`` per episode, so every agent is
        batch-callable with unchanged semantics.  Agents whose decisions
        vectorise override this with an array fast path: ``rule_based``
        precompiles its occupancy schedule into a per-step action plan and
        ``dt`` routes all rows through one
        :class:`~repro.serving.compiled.CompiledTreeForest` traversal.
        Overrides must return exactly the actions the per-episode calls
        would — the batched backend's bit-identical contract depends on it.
        """
        return ActionBatch(
            np.fromiter(
                (
                    agent.select_action(observations[i], environments[i], step)
                    for i, agent in enumerate(agents)
                ),
                dtype=np.int64,
                count=len(agents),
            )
        )

    # -------------------------------------------------- registry construction
    @classmethod
    def from_config(
        cls, environment: Optional[HVACEnvironment] = None, seed: RNGLike = None, **kwargs
    ) -> "BaseAgent":
        """Build this agent from a config dictionary (the registry hook).

        The default implementation forwards ``kwargs`` to the constructor and
        passes ``seed`` along when the constructor accepts one.  Agents that
        need the environment (to train a model or extract a policy) override
        this.
        """
        parameters = inspect.signature(cls.__init__).parameters
        if seed is not None and "seed" in parameters and "seed" not in kwargs:
            kwargs["seed"] = seed
        return cls(**kwargs)


@register_agent("random")
class RandomAgent(BaseAgent):
    """Uniformly random setpoints; used for exploration and as a sanity baseline."""

    name = "random"

    def __init__(self, seed: RNGLike = None):
        self._rng = ensure_rng(seed)

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        return environment.action_space.sample(self._rng)


@register_agent("constant", aliases=("fixed",))
class ConstantAgent(BaseAgent):
    """Always returns the same setpoint pair (useful in tests and ablations)."""

    name = "constant"

    def __init__(self, heating_setpoint: float = 20.0, cooling_setpoint: float = 23.0):
        self.heating_setpoint = heating_setpoint
        self.cooling_setpoint = cooling_setpoint

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        return environment.action_space.to_index(self.heating_setpoint, self.cooling_setpoint)
