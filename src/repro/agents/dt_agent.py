"""The decision-tree agent (the paper's contribution, deployment side).

The agent wraps a :class:`repro.core.tree_policy.TreePolicy` — an extracted
(and, typically, verified) decision tree — and evaluates it on the current
``(s, d)`` observation.  Evaluation is a handful of float comparisons, which is
where the 1000x-plus online-overhead reduction of Table 3 comes from, and the
mapping from input to action is exactly deterministic (Fig. 5).

Policies are resolved through the :class:`~repro.store.PolicyStore` by
default: the first ``from_config`` call for a configuration runs the
extract-verify pipeline and persists the artifact, every later call with the
same configuration is a pure cache hit.  In the batched experiment backend
the per-episode trees are fused into one
:class:`~repro.serving.compiled.CompiledTreeForest`, so a whole batch of
buildings decides in a few array operations per step.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.registry import register_agent
from repro.data import ActionBatch
from repro.env.hvac_env import HVACEnvironment
from repro.utils.rng import RNGLike


@register_agent("dt", aliases=("tree", "decision_tree"))
class DecisionTreeAgent(BaseAgent):
    """Deploys an extracted (verified) decision-tree policy in the environment."""

    name = "DT"

    def __init__(self, policy):
        # ``policy`` is a repro.core.tree_policy.TreePolicy; typed loosely to
        # avoid an import cycle between agents and core.
        self.policy = policy
        self._compiled = None
        self._lookup_cache = None

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        heating, cooling = self.policy.setpoints_for(np.asarray(observation, dtype=float))
        return environment.action_space.to_index(heating, cooling)

    # ------------------------------------------------------- batched selection
    def compiled_policy(self):
        """The policy flattened for vectorised serving (compiled once, cached)."""
        if self._compiled is None:
            self._compiled = self.policy.compiled()
        return self._compiled

    def _env_action_lookup(self, environment: HVACEnvironment) -> np.ndarray:
        """Policy action index -> environment action index, precomputed.

        The composition mirrors :meth:`select_action`: decode the tree label
        to a setpoint pair, then map the pair through the environment's
        action space.
        """
        if self._lookup_cache is not None and self._lookup_cache[0] is environment:
            return self._lookup_cache[1]
        lookup = np.fromiter(
            (
                environment.action_space.to_index(heating, cooling)
                for heating, cooling in self.policy.action_pairs
            ),
            dtype=np.int64,
            count=len(self.policy.action_pairs),
        )
        self._lookup_cache = (environment, lookup)
        return lookup

    @classmethod
    def select_actions_batch(
        cls,
        agents: Sequence["DecisionTreeAgent"],
        observations: np.ndarray,
        environments: Sequence[HVACEnvironment],
        step: int,
    ) -> ActionBatch:
        """Compiled fast path: all episodes through one forest traversal."""
        from repro.serving.compiled import CompiledTreeForest

        lead = agents[0]
        key = (
            tuple(id(agent) for agent in agents),
            tuple(id(env) for env in environments),
        )
        cache = getattr(lead, "_batch_forest_cache", None)
        if cache is None or cache[0] != key:
            forest = CompiledTreeForest([agent.compiled_policy() for agent in agents])
            lookups = np.stack(
                [agent._env_action_lookup(env) for agent, env in zip(agents, environments)]
            )
            cache = (key, forest, lookups)
            lead._batch_forest_cache = cache
        _, forest, lookups = cache
        tree_actions = forest.predict_rows(np.asarray(observations, dtype=np.float64))
        return ActionBatch(lookups[np.arange(len(agents)), tree_actions])

    # ----------------------------------------------------------- construction
    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        policy=None,
        policy_path: Optional[str] = None,
        pipeline: Optional[dict] = None,
        store=None,
        refresh: bool = False,
        **kwargs,
    ) -> "DecisionTreeAgent":
        """Config hook: load or extract-and-verify a tree policy.

        Resolution order: an in-memory ``policy``; a ``policy_path`` pointing
        at JSON written by :meth:`repro.core.pipeline.PipelineResult.save_policy`
        (or a bare ``TreePolicy.to_dict`` payload); otherwise the
        :class:`~repro.store.PolicyStore` keyed by the pipeline configuration
        — a hit deserialises the stored policy with zero re-extraction, a
        miss runs a :class:`~repro.core.pipeline.VerifiedPolicyPipeline` on a
        tiny configuration matched to the environment's city and season
        (overridden by the ``pipeline`` dictionary) and persists the result.

        ``store`` accepts ``False`` (bypass persistence entirely), a path or
        a :class:`~repro.store.PolicyStore` (use that store) or ``None`` (the
        default store, ``$REPRO_POLICY_STORE`` aware).  ``refresh=True``
        forces re-extraction and overwrites the stored artifact.
        """
        # Imported lazily: repro.core.pipeline itself imports agent modules.
        from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
        from repro.core.tree_policy import TreePolicy
        from repro.utils.serialization import load_json

        if kwargs:
            raise TypeError(f"Unexpected options for the dt agent: {sorted(kwargs)}")
        if policy is not None:
            return cls(policy)
        if policy_path is not None:
            payload = load_json(policy_path)
            payload = payload.get("policy", payload)
            return cls(TreePolicy.from_dict(payload))

        overrides = dict(pipeline or {})
        if environment is not None:
            overrides.setdefault("city", environment.config.city)
            comfort = environment.config.reward.comfort
            overrides.setdefault(
                "season", "summer" if comfort.lower >= 22.0 else "winter"
            )
        if seed is not None:
            if isinstance(seed, np.random.Generator):
                overrides.setdefault("seed", int(seed.integers(0, 2**31 - 1)))
            elif isinstance(seed, (int, np.integer)):
                overrides.setdefault("seed", int(seed))
        config = PipelineConfig.tiny(**overrides)
        result = VerifiedPolicyPipeline(
            config, store=True if store is None else store
        ).run(refresh=refresh)
        return cls(result.policy)
