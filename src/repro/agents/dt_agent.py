"""The decision-tree agent (the paper's contribution, deployment side).

The agent wraps a :class:`repro.core.tree_policy.TreePolicy` — an extracted
(and, typically, verified) decision tree — and evaluates it on the current
``(s, d)`` observation.  Evaluation is a handful of float comparisons, which is
where the 1000x-plus online-overhead reduction of Table 3 comes from, and the
mapping from input to action is exactly deterministic (Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import BaseAgent
from repro.env.hvac_env import HVACEnvironment


class DecisionTreeAgent(BaseAgent):
    """Deploys an extracted decision-tree policy in the environment."""

    name = "DT"

    def __init__(self, policy):
        # ``policy`` is a repro.core.tree_policy.TreePolicy; typed loosely to
        # avoid an import cycle between agents and core.
        self.policy = policy

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        heating, cooling = self.policy.setpoints_for(np.asarray(observation, dtype=float))
        return environment.action_space.to_index(heating, cooling)
