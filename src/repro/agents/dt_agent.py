"""The decision-tree agent (the paper's contribution, deployment side).

The agent wraps a :class:`repro.core.tree_policy.TreePolicy` — an extracted
(and, typically, verified) decision tree — and evaluates it on the current
``(s, d)`` observation.  Evaluation is a handful of float comparisons, which is
where the 1000x-plus online-overhead reduction of Table 3 comes from, and the
mapping from input to action is exactly deterministic (Fig. 5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import BaseAgent
from repro.agents.registry import register_agent
from repro.env.hvac_env import HVACEnvironment
from repro.utils.rng import RNGLike


@register_agent("dt", aliases=("tree", "decision_tree"))
class DecisionTreeAgent(BaseAgent):
    """Deploys an extracted (verified) decision-tree policy in the environment."""

    name = "DT"

    def __init__(self, policy):
        # ``policy`` is a repro.core.tree_policy.TreePolicy; typed loosely to
        # avoid an import cycle between agents and core.
        self.policy = policy

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        heating, cooling = self.policy.setpoints_for(np.asarray(observation, dtype=float))
        return environment.action_space.to_index(heating, cooling)

    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        policy=None,
        policy_path: Optional[str] = None,
        pipeline: Optional[dict] = None,
        **kwargs,
    ) -> "DecisionTreeAgent":
        """Config hook: load or extract-and-verify a tree policy.

        Resolution order: an in-memory ``policy``; a ``policy_path`` pointing
        at JSON written by :meth:`repro.core.pipeline.PipelineResult.save_policy`
        (or a bare ``TreePolicy.to_dict`` payload); otherwise a fresh
        :class:`~repro.core.pipeline.VerifiedPolicyPipeline` run on a tiny
        configuration matched to the environment's city and season, overridden
        by the ``pipeline`` dictionary.
        """
        # Imported lazily: repro.core.pipeline itself imports agent modules.
        from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
        from repro.core.tree_policy import TreePolicy
        from repro.utils.serialization import load_json

        if kwargs:
            raise TypeError(f"Unexpected options for the dt agent: {sorted(kwargs)}")
        if policy is not None:
            return cls(policy)
        if policy_path is not None:
            payload = load_json(policy_path)
            payload = payload.get("policy", payload)
            return cls(TreePolicy.from_dict(payload))

        overrides = dict(pipeline or {})
        if environment is not None:
            overrides.setdefault("city", environment.config.city)
            comfort = environment.config.reward.comfort
            overrides.setdefault(
                "season", "summer" if comfort.lower >= 22.0 else "winter"
            )
        if seed is not None:
            if isinstance(seed, np.random.Generator):
                overrides.setdefault("seed", int(seed.integers(0, 2**31 - 1)))
            elif isinstance(seed, (int, np.integer)):
                overrides.setdefault("seed", int(seed))
        config = PipelineConfig.tiny(**overrides)
        result = VerifiedPolicyPipeline(config).run()
        return cls(result.policy)
