"""CLUE-style agent: MBRL with an epistemic-uncertainty fallback.

CLUE (the paper's reference [1], its prior state of the art) augments the MBRL
controller with an ensemble dynamics model.  When the ensemble disagrees about
the consequence of the planned action — i.e. the controller is epistemically
uncertain, typically because the current state is outside the training
distribution — the agent falls back to the building's safe default rule-based
setpoints instead of trusting the model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from typing import Sequence

from repro.agents.base import BaseAgent
from repro.agents.mbrl import train_dynamics_from_environment
from repro.agents.random_shooting import RandomShootingOptimizer
from repro.agents.registry import register_agent
from repro.agents.rule_based import RuleBasedAgent
from repro.env.hvac_env import HVACEnvironment
from repro.nn.dynamics import EnsembleDynamicsModel
from repro.utils.config import RewardConfig
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs


@register_agent("clue", aliases=("ensemble",))
class CLUEAgent(BaseAgent):
    """Ensemble-MBRL agent with uncertainty-triggered fallback to the default controller."""

    name = "CLUE"

    def __init__(
        self,
        dynamics_model: EnsembleDynamicsModel,
        reward_config: Optional[RewardConfig] = None,
        uncertainty_threshold: float = 0.5,
        num_samples: int = 1000,
        horizon: int = 20,
        discount: float = 0.99,
        fallback_agent: Optional[BaseAgent] = None,
        seed: RNGLike = None,
    ):
        if uncertainty_threshold <= 0:
            raise ValueError("uncertainty_threshold must be positive")
        self.dynamics_model = dynamics_model
        self.reward_config = reward_config or RewardConfig()
        self.uncertainty_threshold = uncertainty_threshold
        self.num_samples = num_samples
        self.horizon = horizon
        self.discount = discount
        self.fallback_agent = fallback_agent or RuleBasedAgent(comfort=self.reward_config.comfort)
        self._rng = ensure_rng(seed)
        self._optimizer: Optional[RandomShootingOptimizer] = None
        #: Number of decisions delegated to the fallback controller (diagnostics).
        self.fallback_count = 0
        self.decision_count = 0

    def reset(self) -> None:
        self._optimizer = None
        self.fallback_count = 0
        self.decision_count = 0

    @classmethod
    def from_config(
        cls,
        environment: Optional[HVACEnvironment] = None,
        seed: RNGLike = None,
        dynamics_model: Optional[EnsembleDynamicsModel] = None,
        ensemble_members: int = 5,
        hidden_sizes: Sequence[int] = (64, 64),
        training_epochs: int = 30,
        training_days: int = 2,
        exploration_probability: float = 0.3,
        **kwargs,
    ) -> "CLUEAgent":
        """Config hook: train an ensemble dynamics model when none is given."""
        train_rng, agent_rng = spawn_rngs(seed, 2)
        if dynamics_model is None:
            if environment is None:
                raise ValueError(
                    "CLUEAgent needs either a dynamics_model or an environment "
                    "to train one from"
                )
            dynamics_model = train_dynamics_from_environment(
                environment,
                seed=train_rng,
                hidden_sizes=hidden_sizes,
                training_epochs=training_epochs,
                training_days=training_days,
                exploration_probability=exploration_probability,
                ensemble_members=ensemble_members,
            )
        if environment is not None and "reward_config" not in kwargs:
            kwargs["reward_config"] = environment.config.reward
        return cls(dynamics_model=dynamics_model, seed=agent_rng, **kwargs)

    def _ensure_optimizer(self, environment: HVACEnvironment) -> RandomShootingOptimizer:
        if self._optimizer is None:
            self._optimizer = RandomShootingOptimizer(
                dynamics_model=self.dynamics_model,
                action_space=environment.action_space,
                reward_config=self.reward_config,
                action_config=environment.config.actions,
                num_samples=self.num_samples,
                horizon=self.horizon,
                discount=self.discount,
                seed=self._rng,
            )
        return self._optimizer

    @property
    def fallback_rate(self) -> float:
        """Fraction of decisions delegated to the fallback controller so far."""
        if self.decision_count == 0:
            return 0.0
        return self.fallback_count / self.decision_count

    def select_action(
        self, observation: np.ndarray, environment: HVACEnvironment, step: int
    ) -> int:
        self.decision_count += 1
        optimizer = self._ensure_optimizer(environment)
        horizon = max(min(self.horizon, environment.num_steps - step), 1)
        disturbances = environment.disturbance_forecast(step, horizon)
        occupied = [environment.occupied_at(step + k) for k in range(horizon)]
        result = optimizer.plan(float(observation[0]), disturbances, occupied)

        # Epistemic uncertainty of the planned first action's consequence.
        heating, cooling = environment.action_space.to_pair(result.best_action_index)
        _mean, std = self.dynamics_model.predict_next_state(
            float(observation[0]), disturbances[0], (heating, cooling)
        )
        if std > self.uncertainty_threshold:
            self.fallback_count += 1
            return self.fallback_agent.select_action(observation, environment, step)
        return result.best_action_index
