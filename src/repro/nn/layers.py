"""Dense layers and activation functions with manual backpropagation."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import RNGLike, ensure_rng


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(float)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


def _identity(x: np.ndarray) -> np.ndarray:
    return x


def _identity_grad(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _sigmoid_grad(x: np.ndarray) -> np.ndarray:
    s = _sigmoid(x)
    return s * (1.0 - s)


#: Registry of activation name -> (function, derivative w.r.t. pre-activation).
ACTIVATIONS: Dict[str, Tuple[Callable, Callable]] = {
    "relu": (_relu, _relu_grad),
    "tanh": (_tanh, _tanh_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "identity": (_identity, _identity_grad),
    "linear": (_identity, _identity_grad),
}


class DenseLayer:
    """A fully-connected layer ``y = activation(x W + b)``."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        activation: str = "relu",
        seed: RNGLike = None,
    ):
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("Layer dimensions must be positive")
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"Unknown activation {activation!r}; available: {sorted(ACTIVATIONS)}"
            )
        rng = ensure_rng(seed)
        # He initialisation (good default for ReLU-family activations).
        scale = np.sqrt(2.0 / input_dim)
        self.weights = rng.normal(0.0, scale, size=(input_dim, output_dim))
        self.bias = np.zeros(output_dim, dtype=np.float64)
        self.activation_name = activation
        self._activation, self._activation_grad = ACTIVATIONS[activation]
        # Forward-pass caches used by backward().
        self._last_input: Optional[np.ndarray] = None
        self._last_preactivation: Optional[np.ndarray] = None
        # Gradient buffers.
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def input_dim(self) -> int:
        return self.weights.shape[0]

    @property
    def output_dim(self) -> int:
        return self.weights.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches intermediates for the backward pass."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._last_input = x
        self._last_preactivation = x @ self.weights + self.bias
        return self._activation(self._last_preactivation)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backward pass: accumulate parameter gradients, return input gradient."""
        if self._last_input is None or self._last_preactivation is None:
            raise RuntimeError("backward() called before forward()")
        grad_output = np.atleast_2d(grad_output)
        grad_pre = grad_output * self._activation_grad(self._last_preactivation)
        self.grad_weights = self._last_input.T @ grad_pre
        self.grad_bias = grad_pre.sum(axis=0)
        return grad_pre @ self.weights.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weights": self.grad_weights, "bias": self.grad_bias}

    def zero_grad(self) -> None:
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
