"""Minimal neural-network toolkit (PyTorch substitute).

The paper trains a small MLP thermal-dynamics model with Adam, MSE loss and
weight decay (epochs=150, lr=1e-3, weight_decay=1e-5).  This package implements
exactly that, in NumPy: dense layers with activations, forward/backward passes,
Adam and SGD optimisers, an MSE loss, a standardising data normaliser, a
mini-batch trainer and bootstrap ensembles (used by the CLUE-style baseline for
epistemic-uncertainty estimation).
"""

from repro.nn.layers import DenseLayer, ACTIVATIONS
from repro.nn.losses import mse_loss, mse_loss_gradient, mae_loss
from repro.nn.optim import SGD, Adam
from repro.nn.mlp import MLP
from repro.nn.training import Normalizer, TrainingHistory, train_regressor
from repro.nn.ensemble import BootstrapEnsemble
from repro.nn.dynamics import ThermalDynamicsModel, EnsembleDynamicsModel

__all__ = [
    "DenseLayer",
    "ACTIVATIONS",
    "mse_loss",
    "mse_loss_gradient",
    "mae_loss",
    "SGD",
    "Adam",
    "MLP",
    "Normalizer",
    "TrainingHistory",
    "train_regressor",
    "BootstrapEnsemble",
    "ThermalDynamicsModel",
    "EnsembleDynamicsModel",
]
