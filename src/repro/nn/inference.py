"""Dtype-cast inference-only networks (the float32 fast path).

The training :class:`~repro.nn.mlp.MLP` runs every forward pass in float64
and caches intermediates for backpropagation — exactly right for fitting,
pure overhead for the millions of forward passes the random-shooting planner
and the Monte-Carlo distiller make.  :class:`CompiledInferenceNetwork`
snapshots a fitted MLP's weights once, cast to a declared dtype, and runs a
cache-free forward pass in that dtype.

Under ``float32`` the matmuls that dominate paper-scale distillation move
half the bytes and use the wider SIMD lanes, which is where the 2–4× BLAS
win comes from; ``float64`` compilation is also supported (it still skips
the backprop caches).  The dtype policy itself lives in
:func:`repro.data.resolve_float_dtype` — ``float64`` stays the bit-exact
reference, ``float32`` is opt-in via ``PipelineConfig.dtype``.

A compiled network is a frozen snapshot: refitting the source MLP does not
update it.  Holders (the dynamics models) rebuild their compiled nets after
every ``fit``.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from repro.data import resolve_float_dtype
from repro.nn.layers import ACTIVATIONS
from repro.nn.mlp import MLP


class CompiledInferenceNetwork:
    """A fitted MLP flattened to dtype-cast weight arrays, forward-only.

    Optionally folds the caller's input/target standardisation into the
    weights (all folding arithmetic runs in float64 before the cast):

    * an input :class:`~repro.nn.training.Normalizer` becomes part of the
      first layer — ``act((x - μ)/σ · W + b)`` is ``act(x · W' + b')`` with
      ``W' = W/σ`` and ``b' = b - (μ/σ)·W`` — so the per-call normalisation
      pass disappears entirely,
    * a target normaliser becomes part of a *linear* output layer the same
      way (``W' = W·σ_t``, ``b' = b·σ_t + μ_t``), removing the
      de-normalisation pass.
    """

    def __init__(
        self,
        mlp: MLP,
        dtype: Union[str, np.dtype] = np.float32,
        input_normalizer=None,
        target_normalizer=None,
    ):
        self.dtype = resolve_float_dtype(dtype)
        self.input_dim = mlp.input_dim
        self.output_dim = mlp.output_dim
        self.folds_input = input_normalizer is not None
        self.folds_target = target_normalizer is not None
        layers = [
            [layer.weights.astype(np.float64), layer.bias.astype(np.float64), layer.activation_name]
            for layer in mlp.layers
        ]
        if input_normalizer is not None:
            mean = np.asarray(input_normalizer.mean, dtype=np.float64)
            std = np.asarray(input_normalizer.std, dtype=np.float64)
            weights, bias, _act = layers[0]
            layers[0][1] = bias - (mean / std) @ weights
            layers[0][0] = weights / std[:, np.newaxis]
        if target_normalizer is not None:
            if layers[-1][2] not in ("identity", "linear"):
                raise ValueError(
                    "Target normalisation can only be folded into a linear output layer"
                )
            mean = np.asarray(target_normalizer.mean, dtype=np.float64)
            std = np.asarray(target_normalizer.std, dtype=np.float64)
            layers[-1][0] = layers[-1][0] * std
            layers[-1][1] = layers[-1][1] * std + mean
        self._layers: List[Tuple[np.ndarray, np.ndarray, str]] = [
            (
                np.ascontiguousarray(weights, dtype=self.dtype),
                np.ascontiguousarray(bias, dtype=self.dtype),
                activation_name,
            )
            for weights, bias, activation_name in layers
        ]

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass in the compiled dtype; returns an array of that dtype.

        The input is cast once (a no-op when the caller already holds the
        right dtype); every intermediate stays in the compiled dtype and no
        backprop caches are written.
        """
        out = np.asarray(x, dtype=self.dtype)
        if out.ndim == 1:
            out = out.reshape(1, -1)
        for weights, bias, activation_name in self._layers:
            activation, _grad = ACTIVATIONS[activation_name]
            out = activation(out @ weights + bias)
        return out

    __call__ = forward
