"""Gradient-descent optimisers (SGD and Adam) with decoupled weight decay."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.layers import DenseLayer


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, layers: List[DenseLayer], learning_rate: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.layers = layers
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [
            {name: np.zeros_like(param) for name, param in layer.parameters().items()}
            for layer in layers
        ]

    def step(self) -> None:
        for layer, velocity in zip(self.layers, self._velocity):
            params = layer.parameters()
            grads = layer.gradients()
            for name in params:
                grad = grads[name]
                if self.weight_decay > 0 and name == "weights":
                    grad = grad + self.weight_decay * params[name]
                velocity[name] = self.momentum * velocity[name] - self.learning_rate * grad
                params[name] += velocity[name]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba) with decoupled weight decay.

    Matches the paper's training setup (Adam, lr=1e-3, weight_decay=1e-5).
    """

    def __init__(
        self,
        layers: List[DenseLayer],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.layers = layers
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [
            {name: np.zeros_like(param) for name, param in layer.parameters().items()}
            for layer in layers
        ]
        self._second_moment = [
            {name: np.zeros_like(param) for name, param in layer.parameters().items()}
            for layer in layers
        ]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for layer, m_buf, v_buf in zip(self.layers, self._first_moment, self._second_moment):
            params = layer.parameters()
            grads = layer.gradients()
            for name in params:
                grad = grads[name]
                if self.weight_decay > 0 and name == "weights":
                    grad = grad + self.weight_decay * params[name]
                m_buf[name] = self.beta1 * m_buf[name] + (1.0 - self.beta1) * grad
                v_buf[name] = self.beta2 * v_buf[name] + (1.0 - self.beta2) * grad**2
                m_hat = m_buf[name] / (1.0 - self.beta1**t)
                v_hat = v_buf[name] / (1.0 - self.beta2**t)
                params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()
