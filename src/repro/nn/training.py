"""Data normalisation and the mini-batch regression training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.losses import mae_loss, mse_loss, mse_loss_gradient
from repro.nn.mlp import MLP
from repro.nn.optim import Adam
from repro.utils.rng import RNGLike, ensure_rng


class Normalizer:
    """Per-feature standardisation fitted on training data."""

    def __init__(self):
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "Normalizer":
        data = np.atleast_2d(np.asarray(data, dtype=float))
        self.mean = data.mean(axis=0)
        self.std = data.std(axis=0)
        # Constant features would otherwise divide by zero.
        self.std = np.where(self.std < 1e-8, 1.0, self.std)
        return self

    @property
    def is_fitted(self) -> bool:
        return self.mean is not None

    def transform(self, data: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("Normalizer must be fitted before transform()")
        return (np.atleast_2d(np.asarray(data, dtype=float)) - self.mean) / self.std

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("Normalizer must be fitted before inverse_transform()")
        return np.atleast_2d(np.asarray(data, dtype=float)) * self.std + self.mean

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)


@dataclass
class TrainingHistory:
    """Loss curves recorded during training."""

    train_losses: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    validation_maes: List[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    @property
    def final_validation_loss(self) -> float:
        return self.validation_losses[-1] if self.validation_losses else float("nan")

    @property
    def epochs(self) -> int:
        return len(self.train_losses)


def train_regressor(
    model: MLP,
    inputs: np.ndarray,
    targets: np.ndarray,
    epochs: int = 150,
    learning_rate: float = 1e-3,
    weight_decay: float = 1e-5,
    batch_size: int = 64,
    validation_fraction: float = 0.1,
    seed: RNGLike = None,
    shuffle: bool = True,
) -> TrainingHistory:
    """Train ``model`` with Adam + MSE, mirroring the paper's hyper-parameters.

    ``inputs`` and ``targets`` are expected to be already normalised by the
    caller (see :class:`Normalizer`); this function only runs the optimisation
    loop and records train/validation losses.
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    targets = np.atleast_2d(np.asarray(targets, dtype=float))
    if len(inputs) != len(targets):
        raise ValueError("inputs and targets must have the same number of rows")
    if len(inputs) == 0:
        raise ValueError("Cannot train on an empty dataset")
    if epochs <= 0:
        raise ValueError("epochs must be positive")

    rng = ensure_rng(seed)
    n = len(inputs)
    n_val = int(round(validation_fraction * n)) if validation_fraction > 0 and n > 10 else 0
    permutation = rng.permutation(n)
    val_idx = permutation[:n_val]
    train_idx = permutation[n_val:]
    x_train, y_train = inputs[train_idx], targets[train_idx]
    x_val, y_val = inputs[val_idx], targets[val_idx]

    optimizer = Adam(model.layers, learning_rate=learning_rate, weight_decay=weight_decay)
    history = TrainingHistory()
    batch_size = max(1, min(batch_size, len(x_train)))

    for _epoch in range(epochs):
        order = rng.permutation(len(x_train)) if shuffle else np.arange(len(x_train))
        epoch_losses = []
        for start in range(0, len(x_train), batch_size):
            batch = order[start : start + batch_size]
            x_batch, y_batch = x_train[batch], y_train[batch]
            predictions = model.forward(x_batch)
            loss = mse_loss(predictions, y_batch)
            grad = mse_loss_gradient(predictions, y_batch)
            optimizer.zero_grad()
            model.backward(grad)
            optimizer.step()
            epoch_losses.append(loss)
        history.train_losses.append(float(np.mean(epoch_losses)))
        if n_val > 0:
            val_pred = model.forward(x_val)
            history.validation_losses.append(mse_loss(val_pred, y_val))
            history.validation_maes.append(mae_loss(val_pred, y_val))
    return history
