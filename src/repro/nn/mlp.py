"""A multi-layer perceptron regressor built from :class:`DenseLayer`."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.layers import DenseLayer
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs


class MLP:
    """A feed-forward network with configurable hidden layers.

    The default architecture (two hidden layers of 64 ReLU units) matches the
    small dynamics models used in MBRL-for-HVAC work; the dynamics-model input
    here is only 8-dimensional so a compact network suffices.
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden_sizes: Sequence[int] = (64, 64),
        activation: str = "relu",
        output_activation: str = "identity",
        seed: RNGLike = None,
    ):
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        sizes = [input_dim, *hidden_sizes, output_dim]
        rngs = spawn_rngs(ensure_rng(seed), len(sizes) - 1)
        self.layers: List[DenseLayer] = []
        for i in range(len(sizes) - 1):
            is_output = i == len(sizes) - 2
            self.layers.append(
                DenseLayer(
                    input_dim=sizes[i],
                    output_dim=sizes[i + 1],
                    activation=output_activation if is_output else activation,
                    seed=rngs[i],
                )
            )
        self.input_dim = input_dim
        self.output_dim = output_dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass over a batch (or a single vector)."""
        out = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    # predict() is an alias used by code that treats the MLP as a plain regressor.
    predict = forward

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate a loss gradient through all layers."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # -------------------------------------------------------------- serialise
    def get_parameters(self) -> List[Dict[str, np.ndarray]]:
        """Copies of all parameters (for checkpointing)."""
        return [
            {name: param.copy() for name, param in layer.parameters().items()}
            for layer in self.layers
        ]

    def set_parameters(self, parameters: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_parameters`."""
        if len(parameters) != len(self.layers):
            raise ValueError("Parameter list length does not match the number of layers")
        for layer, params in zip(self.layers, parameters):
            for name, value in params.items():
                target = layer.parameters()[name]
                if target.shape != np.asarray(value).shape:
                    raise ValueError(f"Shape mismatch for parameter {name!r}")
                target[...] = value

    def num_parameters(self) -> int:
        return int(sum(p.size for layer in self.layers for p in layer.parameters().values()))
