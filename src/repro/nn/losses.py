"""Regression losses used by the dynamics-model trainer."""

from __future__ import annotations

import numpy as np


def mse_loss(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error averaged over samples and output dimensions."""
    predictions = np.atleast_2d(predictions)
    targets = np.atleast_2d(targets)
    if predictions.shape != targets.shape:
        raise ValueError(f"Shape mismatch: {predictions.shape} vs {targets.shape}")
    return float(np.mean((predictions - targets) ** 2))


def mse_loss_gradient(predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of :func:`mse_loss` with respect to the predictions."""
    predictions = np.atleast_2d(predictions)
    targets = np.atleast_2d(targets)
    if predictions.shape != targets.shape:
        raise ValueError(f"Shape mismatch: {predictions.shape} vs {targets.shape}")
    return 2.0 * (predictions - targets) / predictions.size


def mae_loss(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute error (reported as a validation metric)."""
    predictions = np.atleast_2d(predictions)
    targets = np.atleast_2d(targets)
    if predictions.shape != targets.shape:
        raise ValueError(f"Shape mismatch: {predictions.shape} vs {targets.shape}")
    return float(np.mean(np.abs(predictions - targets)))
