"""Bootstrap ensembles of MLP regressors.

The CLUE baseline of the paper estimates epistemic uncertainty from an ensemble
of dynamics models.  Each member is trained on a bootstrap resample of the
training data from a different initialisation; the disagreement (standard
deviation) between member predictions is the uncertainty signal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.training import TrainingHistory, train_regressor
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs


class BootstrapEnsemble:
    """An ensemble of identically-shaped MLPs trained on bootstrap resamples."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        num_members: int = 5,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: RNGLike = None,
    ):
        if num_members <= 0:
            raise ValueError("num_members must be positive")
        rngs = spawn_rngs(ensure_rng(seed), num_members)
        self.members: List[MLP] = [
            MLP(input_dim, output_dim, hidden_sizes=hidden_sizes, seed=rng) for rng in rngs
        ]
        self.input_dim = input_dim
        self.output_dim = output_dim

    @property
    def num_members(self) -> int:
        return len(self.members)

    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int = 150,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        batch_size: int = 64,
        seed: RNGLike = None,
    ) -> List[TrainingHistory]:
        """Train every member on its own bootstrap resample of the data."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        rng = ensure_rng(seed)
        histories = []
        n = len(inputs)
        for member in self.members:
            resample = rng.integers(0, n, size=n)
            histories.append(
                train_regressor(
                    member,
                    inputs[resample],
                    targets[resample],
                    epochs=epochs,
                    learning_rate=learning_rate,
                    weight_decay=weight_decay,
                    batch_size=batch_size,
                    validation_fraction=0.0,
                    seed=rng,
                )
            )
        return histories

    def predict_all(self, inputs: np.ndarray) -> np.ndarray:
        """Predictions of every member, shape ``(num_members, n, output_dim)``."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        return np.stack([member.forward(inputs) for member in self.members])

    def predict(self, inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Ensemble mean and (epistemic) standard deviation per prediction."""
        all_predictions = self.predict_all(inputs)
        return all_predictions.mean(axis=0), all_predictions.std(axis=0)
