"""Learned thermal-dynamics models.

The dynamics model is the regression model ``f_hat(s, d, a) -> s'`` at the
centre of the MBRL pipeline: it is trained on the historical transition dataset
and then queried by the stochastic optimiser (random shooting / MPPI), by the
decision-dataset generator and by the probabilistic verifier.

Two variants are provided:

* :class:`ThermalDynamicsModel` — a single MLP (the paper's setup),
* :class:`EnsembleDynamicsModel` — a bootstrap ensemble exposing epistemic
  uncertainty, used by the CLUE-style baseline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data import resolve_float_dtype
from repro.env.dataset import TransitionDataset
from repro.nn.ensemble import BootstrapEnsemble
from repro.nn.inference import CompiledInferenceNetwork
from repro.nn.mlp import MLP
from repro.nn.training import Normalizer, TrainingHistory, train_regressor
from repro.utils.rng import RNGLike, ensure_rng

#: Dynamics-model input layout: [s, d_1..d_5, heating setpoint, cooling setpoint].
DYNAMICS_INPUT_DIM = 8
DYNAMICS_OUTPUT_DIM = 1


def _stack_model_inputs(
    states: np.ndarray, disturbances: np.ndarray, actions: np.ndarray
) -> np.ndarray:
    """Assemble (s, d, a) rows from separate arrays (broadcast-friendly)."""
    states = np.atleast_1d(np.asarray(states, dtype=float)).reshape(-1, 1)
    disturbances = np.atleast_2d(np.asarray(disturbances, dtype=float))
    actions = np.atleast_2d(np.asarray(actions, dtype=float))
    n = max(len(states), len(disturbances), len(actions))
    if len(states) == 1 and n > 1:
        states = np.repeat(states, n, axis=0)
    if len(disturbances) == 1 and n > 1:
        disturbances = np.repeat(disturbances, n, axis=0)
    if len(actions) == 1 and n > 1:
        actions = np.repeat(actions, n, axis=0)
    if not (len(states) == len(disturbances) == len(actions)):
        raise ValueError("states, disturbances and actions must have compatible lengths")
    return np.hstack([states, disturbances, actions])


class ThermalDynamicsModel:
    """MLP dynamics model with input/output standardisation.

    The model predicts the *change* in zone temperature (a standard residual
    parameterisation that improves accuracy for slow thermal dynamics) and adds
    it back to the current state at prediction time.

    Inference dtype policy: training always runs in float64, but prediction
    can be switched to a compiled float32 forward pass with
    :meth:`set_inference_dtype` — the opt-in fast path for the BLAS-bound
    planning/distillation workloads (``PipelineConfig.dtype``).  ``float64``
    (the default) keeps prediction bit-exact with the training network.
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: RNGLike = None,
        predict_delta: bool = True,
    ):
        self.network = MLP(DYNAMICS_INPUT_DIM, DYNAMICS_OUTPUT_DIM, hidden_sizes=hidden_sizes, seed=seed)
        self.input_normalizer = Normalizer()
        self.target_normalizer = Normalizer()
        self.predict_delta = predict_delta
        self.history: Optional[TrainingHistory] = None
        self._inference_dtype = np.dtype(np.float64)
        self._compiled_net: Optional[CompiledInferenceNetwork] = None

    @property
    def is_fitted(self) -> bool:
        return self.input_normalizer.is_fitted and self.target_normalizer.is_fitted

    # ------------------------------------------------------- inference dtype
    @property
    def inference_dtype(self) -> np.dtype:
        return self._inference_dtype

    def set_inference_dtype(self, dtype: Union[str, np.dtype]) -> "ThermalDynamicsModel":
        """Select the prediction dtype (``"float64"`` reference, ``"float32"`` fast).

        Returns ``self`` so callers can chain it after construction.  The
        compiled network is (re)built lazily on the next prediction, so the
        dtype can be set before or after :meth:`fit`.
        """
        self._inference_dtype = resolve_float_dtype(dtype)
        self._compiled_net = None
        return self

    def _inference_network(self) -> CompiledInferenceNetwork:
        if self._compiled_net is None or self._compiled_net.dtype != self._inference_dtype:
            # Both normalisation passes fold into the weights, so the fast
            # path is raw (s, d, a) rows straight through the matmuls.
            self._compiled_net = CompiledInferenceNetwork(
                self.network,
                dtype=self._inference_dtype,
                input_normalizer=self.input_normalizer,
                target_normalizer=self.target_normalizer,
            )
        return self._compiled_net

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        dataset: TransitionDataset,
        epochs: int = 150,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        batch_size: int = 64,
        seed: RNGLike = None,
    ) -> TrainingHistory:
        """Train on a historical transition dataset (paper hyper-parameters)."""
        if len(dataset) == 0:
            raise ValueError("Cannot fit a dynamics model on an empty dataset")
        inputs = dataset.model_inputs()
        next_states = dataset.model_targets()
        targets = next_states - dataset.states().reshape(-1, 1) if self.predict_delta else next_states

        x = self.input_normalizer.fit_transform(inputs)
        y = self.target_normalizer.fit_transform(targets)
        self.history = train_regressor(
            self.network,
            x,
            y,
            epochs=epochs,
            learning_rate=learning_rate,
            weight_decay=weight_decay,
            batch_size=batch_size,
            seed=seed,
        )
        self._compiled_net = None  # weights changed; recompile on next predict
        return self.history

    # ---------------------------------------------------------------- predict
    def predict(
        self,
        states: Union[float, np.ndarray],
        disturbances: np.ndarray,
        actions: np.ndarray,
    ) -> np.ndarray:
        """Predict next zone temperatures for a batch of (s, d, a) inputs.

        Under the default float64 policy this runs the training network
        (bit-exact with :meth:`fit`-time forward passes); under float32 the
        normalised inputs are cast once and flow through the compiled
        float32 network, with de-normalisation back in float64.
        """
        if not self.is_fitted:
            raise RuntimeError("Dynamics model must be fitted before prediction")
        raw_inputs = _stack_model_inputs(states, disturbances, actions)
        if self._inference_dtype == np.float64:
            x = self.input_normalizer.transform(raw_inputs)
            y = self.target_normalizer.inverse_transform(self.network.forward(x))
            predictions = y[:, 0]
        else:
            # Normalisation is folded into the compiled weights: one cast of
            # the raw rows, the matmuls, and the de-normalised result.
            predictions = self._inference_network().forward(raw_inputs)[:, 0].astype(
                np.float64
            )
        if self.predict_delta:
            predictions = predictions + raw_inputs[:, 0]
        return predictions

    def predict_next_state(
        self, state: float, disturbance: np.ndarray, action: Sequence[float]
    ) -> float:
        """Predict the next zone temperature for a single transition."""
        return float(
            self.predict(
                np.array([state]),
                np.asarray(disturbance, dtype=float).reshape(1, -1),
                np.asarray(action, dtype=float).reshape(1, -1),
            )[0]
        )

    def evaluate(self, dataset: TransitionDataset) -> Tuple[float, float]:
        """Return (RMSE, MAE) of next-state predictions on a dataset."""
        if len(dataset) == 0:
            raise ValueError("Cannot evaluate on an empty dataset")
        inputs = dataset.policy_inputs()
        predictions = self.predict(
            dataset.states(), inputs[:, 1:], dataset.actions().astype(float)
        )
        targets = dataset.model_targets()[:, 0]
        errors = predictions - targets
        return float(np.sqrt(np.mean(errors**2))), float(np.mean(np.abs(errors)))


class EnsembleDynamicsModel:
    """Bootstrap-ensemble dynamics model with epistemic uncertainty estimates.

    Supports the same inference dtype policy as
    :class:`ThermalDynamicsModel`: :meth:`set_inference_dtype` switches every
    member's forward pass to a compiled cast network (float32 fast path),
    while float64 remains the bit-exact reference.
    """

    def __init__(
        self,
        num_members: int = 5,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: RNGLike = None,
        predict_delta: bool = True,
    ):
        self.ensemble = BootstrapEnsemble(
            DYNAMICS_INPUT_DIM,
            DYNAMICS_OUTPUT_DIM,
            num_members=num_members,
            hidden_sizes=hidden_sizes,
            seed=seed,
        )
        self.input_normalizer = Normalizer()
        self.target_normalizer = Normalizer()
        self.predict_delta = predict_delta
        self._fitted = False
        self._inference_dtype = np.dtype(np.float64)
        self._compiled_members: Optional[List[CompiledInferenceNetwork]] = None

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # ------------------------------------------------------- inference dtype
    @property
    def inference_dtype(self) -> np.dtype:
        return self._inference_dtype

    def set_inference_dtype(self, dtype: Union[str, np.dtype]) -> "EnsembleDynamicsModel":
        """Select the prediction dtype for every ensemble member."""
        self._inference_dtype = resolve_float_dtype(dtype)
        self._compiled_members = None
        return self

    def _inference_members(self) -> List[CompiledInferenceNetwork]:
        if self._compiled_members is None:
            # Members share one input/target normaliser (fitted at this
            # level), folded into each compiled member's weights.
            self._compiled_members = [
                CompiledInferenceNetwork(
                    member,
                    dtype=self._inference_dtype,
                    input_normalizer=self.input_normalizer,
                    target_normalizer=self.target_normalizer,
                )
                for member in self.ensemble.members
            ]
        return self._compiled_members

    def fit(
        self,
        dataset: TransitionDataset,
        epochs: int = 150,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        batch_size: int = 64,
        seed: RNGLike = None,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("Cannot fit a dynamics model on an empty dataset")
        inputs = dataset.model_inputs()
        next_states = dataset.model_targets()
        targets = next_states - dataset.states().reshape(-1, 1) if self.predict_delta else next_states
        x = self.input_normalizer.fit_transform(inputs)
        y = self.target_normalizer.fit_transform(targets)
        self.ensemble.fit(
            x,
            y,
            epochs=epochs,
            learning_rate=learning_rate,
            weight_decay=weight_decay,
            batch_size=batch_size,
            seed=seed,
        )
        self._fitted = True
        self._compiled_members = None  # weights changed; recompile on next predict

    def predict(
        self,
        states: Union[float, np.ndarray],
        disturbances: np.ndarray,
        actions: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (mean next state, epistemic std) for a batch of inputs."""
        if not self._fitted:
            raise RuntimeError("Dynamics model must be fitted before prediction")
        raw_inputs = _stack_model_inputs(states, disturbances, actions)
        if self._inference_dtype == np.float64:
            x = self.input_normalizer.transform(raw_inputs)
            member_outputs = self.ensemble.predict_all(x)  # (members, n, 1)
            member_outputs = np.stack(
                [self.target_normalizer.inverse_transform(out) for out in member_outputs]
            )
        else:
            # Folded members consume raw rows and emit de-normalised outputs.
            member_outputs = np.stack(
                [member.forward(raw_inputs) for member in self._inference_members()]
            )
        mean = member_outputs.mean(axis=0)[:, 0].astype(np.float64)
        std = member_outputs.std(axis=0)[:, 0].astype(np.float64)
        if self.predict_delta:
            mean = mean + raw_inputs[:, 0]
        return mean, std

    def predict_next_state(
        self, state: float, disturbance: np.ndarray, action: Sequence[float]
    ) -> Tuple[float, float]:
        mean, std = self.predict(
            np.array([state]),
            np.asarray(disturbance, dtype=float).reshape(1, -1),
            np.asarray(action, dtype=float).reshape(1, -1),
        )
        return float(mean[0]), float(std[0])
