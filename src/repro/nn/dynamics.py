"""Learned thermal-dynamics models.

The dynamics model is the regression model ``f_hat(s, d, a) -> s'`` at the
centre of the MBRL pipeline: it is trained on the historical transition dataset
and then queried by the stochastic optimiser (random shooting / MPPI), by the
decision-dataset generator and by the probabilistic verifier.

Two variants are provided:

* :class:`ThermalDynamicsModel` — a single MLP (the paper's setup),
* :class:`EnsembleDynamicsModel` — a bootstrap ensemble exposing epistemic
  uncertainty, used by the CLUE-style baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.env.dataset import TransitionDataset
from repro.nn.ensemble import BootstrapEnsemble
from repro.nn.mlp import MLP
from repro.nn.training import Normalizer, TrainingHistory, train_regressor
from repro.utils.rng import RNGLike, ensure_rng

#: Dynamics-model input layout: [s, d_1..d_5, heating setpoint, cooling setpoint].
DYNAMICS_INPUT_DIM = 8
DYNAMICS_OUTPUT_DIM = 1


def _stack_model_inputs(
    states: np.ndarray, disturbances: np.ndarray, actions: np.ndarray
) -> np.ndarray:
    """Assemble (s, d, a) rows from separate arrays (broadcast-friendly)."""
    states = np.atleast_1d(np.asarray(states, dtype=float)).reshape(-1, 1)
    disturbances = np.atleast_2d(np.asarray(disturbances, dtype=float))
    actions = np.atleast_2d(np.asarray(actions, dtype=float))
    n = max(len(states), len(disturbances), len(actions))
    if len(states) == 1 and n > 1:
        states = np.repeat(states, n, axis=0)
    if len(disturbances) == 1 and n > 1:
        disturbances = np.repeat(disturbances, n, axis=0)
    if len(actions) == 1 and n > 1:
        actions = np.repeat(actions, n, axis=0)
    if not (len(states) == len(disturbances) == len(actions)):
        raise ValueError("states, disturbances and actions must have compatible lengths")
    return np.hstack([states, disturbances, actions])


class ThermalDynamicsModel:
    """MLP dynamics model with input/output standardisation.

    The model predicts the *change* in zone temperature (a standard residual
    parameterisation that improves accuracy for slow thermal dynamics) and adds
    it back to the current state at prediction time.
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: RNGLike = None,
        predict_delta: bool = True,
    ):
        self.network = MLP(DYNAMICS_INPUT_DIM, DYNAMICS_OUTPUT_DIM, hidden_sizes=hidden_sizes, seed=seed)
        self.input_normalizer = Normalizer()
        self.target_normalizer = Normalizer()
        self.predict_delta = predict_delta
        self.history: Optional[TrainingHistory] = None

    @property
    def is_fitted(self) -> bool:
        return self.input_normalizer.is_fitted and self.target_normalizer.is_fitted

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        dataset: TransitionDataset,
        epochs: int = 150,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        batch_size: int = 64,
        seed: RNGLike = None,
    ) -> TrainingHistory:
        """Train on a historical transition dataset (paper hyper-parameters)."""
        if len(dataset) == 0:
            raise ValueError("Cannot fit a dynamics model on an empty dataset")
        inputs = dataset.model_inputs()
        next_states = dataset.model_targets()
        targets = next_states - dataset.states().reshape(-1, 1) if self.predict_delta else next_states

        x = self.input_normalizer.fit_transform(inputs)
        y = self.target_normalizer.fit_transform(targets)
        self.history = train_regressor(
            self.network,
            x,
            y,
            epochs=epochs,
            learning_rate=learning_rate,
            weight_decay=weight_decay,
            batch_size=batch_size,
            seed=seed,
        )
        return self.history

    # ---------------------------------------------------------------- predict
    def predict(
        self,
        states: Union[float, np.ndarray],
        disturbances: np.ndarray,
        actions: np.ndarray,
    ) -> np.ndarray:
        """Predict next zone temperatures for a batch of (s, d, a) inputs."""
        if not self.is_fitted:
            raise RuntimeError("Dynamics model must be fitted before prediction")
        raw_inputs = _stack_model_inputs(states, disturbances, actions)
        x = self.input_normalizer.transform(raw_inputs)
        y = self.target_normalizer.inverse_transform(self.network.forward(x))
        predictions = y[:, 0]
        if self.predict_delta:
            predictions = predictions + raw_inputs[:, 0]
        return predictions

    def predict_next_state(
        self, state: float, disturbance: np.ndarray, action: Sequence[float]
    ) -> float:
        """Predict the next zone temperature for a single transition."""
        return float(
            self.predict(
                np.array([state]),
                np.asarray(disturbance, dtype=float).reshape(1, -1),
                np.asarray(action, dtype=float).reshape(1, -1),
            )[0]
        )

    def evaluate(self, dataset: TransitionDataset) -> Tuple[float, float]:
        """Return (RMSE, MAE) of next-state predictions on a dataset."""
        if len(dataset) == 0:
            raise ValueError("Cannot evaluate on an empty dataset")
        inputs = dataset.policy_inputs()
        predictions = self.predict(
            dataset.states(), inputs[:, 1:], dataset.actions().astype(float)
        )
        targets = dataset.model_targets()[:, 0]
        errors = predictions - targets
        return float(np.sqrt(np.mean(errors**2))), float(np.mean(np.abs(errors)))


class EnsembleDynamicsModel:
    """Bootstrap-ensemble dynamics model with epistemic uncertainty estimates."""

    def __init__(
        self,
        num_members: int = 5,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: RNGLike = None,
        predict_delta: bool = True,
    ):
        self.ensemble = BootstrapEnsemble(
            DYNAMICS_INPUT_DIM,
            DYNAMICS_OUTPUT_DIM,
            num_members=num_members,
            hidden_sizes=hidden_sizes,
            seed=seed,
        )
        self.input_normalizer = Normalizer()
        self.target_normalizer = Normalizer()
        self.predict_delta = predict_delta
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(
        self,
        dataset: TransitionDataset,
        epochs: int = 150,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        batch_size: int = 64,
        seed: RNGLike = None,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("Cannot fit a dynamics model on an empty dataset")
        inputs = dataset.model_inputs()
        next_states = dataset.model_targets()
        targets = next_states - dataset.states().reshape(-1, 1) if self.predict_delta else next_states
        x = self.input_normalizer.fit_transform(inputs)
        y = self.target_normalizer.fit_transform(targets)
        self.ensemble.fit(
            x,
            y,
            epochs=epochs,
            learning_rate=learning_rate,
            weight_decay=weight_decay,
            batch_size=batch_size,
            seed=seed,
        )
        self._fitted = True

    def predict(
        self,
        states: Union[float, np.ndarray],
        disturbances: np.ndarray,
        actions: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (mean next state, epistemic std) for a batch of inputs."""
        if not self._fitted:
            raise RuntimeError("Dynamics model must be fitted before prediction")
        raw_inputs = _stack_model_inputs(states, disturbances, actions)
        x = self.input_normalizer.transform(raw_inputs)
        member_outputs = self.ensemble.predict_all(x)  # (members, n, 1)
        member_outputs = np.stack(
            [self.target_normalizer.inverse_transform(out) for out in member_outputs]
        )
        mean = member_outputs.mean(axis=0)[:, 0]
        std = member_outputs.std(axis=0)[:, 0]
        if self.predict_delta:
            mean = mean + raw_inputs[:, 0]
        return mean, std

    def predict_next_state(
        self, state: float, disturbance: np.ndarray, action: Sequence[float]
    ) -> Tuple[float, float]:
        mean, std = self.predict(
            np.array([state]),
            np.asarray(disturbance, dtype=float).reshape(1, -1),
            np.asarray(action, dtype=float).reshape(1, -1),
        )
        return float(mean[0]), float(std[0])
