"""Shadow evaluation: serve a candidate policy without applying it.

During a canary the fleet serves the candidate for real on the canary slice
only; the :class:`ShadowEvaluator` additionally serves the candidate on the
*rest* of the fleet every tick — same observations, actions computed but never
applied — and compares them with the incumbent actions that were applied.

Three per-tick signals come out of the comparison, each windowed in a ring
buffer:

* **disagreement** — fraction of shadowed rows where the candidate chose a
  different (heating, cooling) pair than the incumbent;
* **energy-proxy delta** — mean difference of the reward model's energy
  proxy (setpoint distance from the off pair, the Eq. 2 term) between
  candidate and incumbent actions: positive means the candidate conditions
  harder;
* **comfort-risk delta** — mean difference of the *setpoint comfort risk*
  (how far the commanded band sits outside the comfort band,
  ``max(lower − h, 0) + max(c − upper, 0)``): positive means the candidate
  leaves the zone less protected.

The deltas are first-order counterfactuals: they compare what the two
policies *command* on identical states, without running a second simulation.
That is exactly the quantity a rollout gate can act on in real time — the
full counterfactual trajectory is unknowable without forking the fleet.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np


class ShadowEvaluator:
    """Windowed incumbent-vs-candidate comparison on identical observations."""

    def __init__(
        self,
        comfort_lower: float,
        comfort_upper: float,
        off_heating: float,
        off_cooling: float,
        window: int = 16,
        max_disagreement: float = 0.35,
        max_energy_delta: float = 1.0,
        max_comfort_delta: float = 0.25,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        self.comfort_lower = float(comfort_lower)
        self.comfort_upper = float(comfort_upper)
        self.off_heating = float(off_heating)
        self.off_cooling = float(off_cooling)
        self.window = int(window)
        self.max_disagreement = float(max_disagreement)
        self.max_energy_delta = float(max_energy_delta)
        self.max_comfort_delta = float(max_comfort_delta)
        #: Ticks observed (ring cursor = ``observed % window``).
        self.observed = 0
        #: Total shadowed row-decisions compared.
        self.rows_compared = 0
        self._ring_disagreement = np.zeros(self.window)
        self._ring_energy_delta = np.zeros(self.window)
        self._ring_comfort_delta = np.zeros(self.window)
        self._ring_rows = np.zeros(self.window)

    # -------------------------------------------------------------- helpers
    def _energy_proxy(self, pairs: np.ndarray) -> np.ndarray:
        """Eq. 2's energy proxy of commanded ``(N, 2)`` setpoint pairs."""
        return np.abs(pairs[:, 0] - self.off_heating) + np.abs(
            pairs[:, 1] - self.off_cooling
        )

    def _comfort_risk(self, pairs: np.ndarray) -> np.ndarray:
        """Exposure the commanded band leaves outside the comfort band."""
        return np.maximum(self.comfort_lower - pairs[:, 0], 0.0) + np.maximum(
            pairs[:, 1] - self.comfort_upper, 0.0
        )

    # ------------------------------------------------------------- observing
    def observe(self, applied_pairs: np.ndarray, candidate_pairs: np.ndarray) -> None:
        """Fold one tick of shadowed decisions into the windows.

        ``applied_pairs`` are the incumbent actions that were really applied
        on the shadowed rows, ``candidate_pairs`` the candidate's actions on
        the same observations; both ``(N, 2)`` int arrays in the same row
        order.  An empty tick (``N == 0``) still advances the window.
        """
        applied = np.asarray(applied_pairs, dtype=float)
        candidate = np.asarray(candidate_pairs, dtype=float)
        if applied.shape != candidate.shape:
            raise ValueError(
                f"applied {applied.shape} and candidate {candidate.shape} pairs "
                "must have identical shapes"
            )
        cursor = self.observed % self.window
        rows = len(applied)
        if rows:
            mismatch = np.any(applied != candidate, axis=1)
            self._ring_disagreement[cursor] = float(np.mean(mismatch))
            self._ring_energy_delta[cursor] = float(
                np.mean(self._energy_proxy(candidate) - self._energy_proxy(applied))
            )
            self._ring_comfort_delta[cursor] = float(
                np.mean(self._comfort_risk(candidate) - self._comfort_risk(applied))
            )
        else:
            self._ring_disagreement[cursor] = 0.0
            self._ring_energy_delta[cursor] = 0.0
            self._ring_comfort_delta[cursor] = 0.0
        self._ring_rows[cursor] = rows
        self.observed += 1
        self.rows_compared += rows

    # ------------------------------------------------------------- reporting
    def _window_filled(self) -> int:
        return min(self.observed, self.window)

    def _windowed(self, ring: np.ndarray) -> float:
        """Row-weighted mean of a ring over the filled part of the window."""
        filled = self._window_filled()
        if filled == 0:
            return 0.0
        weights = self._ring_rows[:filled]
        total = float(np.sum(weights))
        if total == 0.0:
            return 0.0
        return float(np.sum(ring[:filled] * weights) / total)

    @property
    def disagreement(self) -> float:
        """Windowed fraction of shadowed rows where the policies disagreed."""
        return self._windowed(self._ring_disagreement)

    @property
    def energy_delta(self) -> float:
        """Windowed mean candidate-minus-incumbent energy-proxy delta."""
        return self._windowed(self._ring_energy_delta)

    @property
    def comfort_delta(self) -> float:
        """Windowed mean candidate-minus-incumbent comfort-risk delta."""
        return self._windowed(self._ring_comfort_delta)

    def healthy(self) -> bool:
        """Whether every windowed signal is inside its promotion gate."""
        return (
            self.disagreement <= self.max_disagreement
            and self.energy_delta <= self.max_energy_delta
            and self.comfort_delta <= self.max_comfort_delta
        )

    def report(self) -> Dict[str, Any]:
        """JSON-friendly summary of the current windows and gate state."""
        return {
            "observed_ticks": self.observed,
            "rows_compared": self.rows_compared,
            "disagreement": self.disagreement,
            "energy_delta": self.energy_delta,
            "comfort_delta": self.comfort_delta,
            "max_disagreement": self.max_disagreement,
            "max_energy_delta": self.max_energy_delta,
            "max_comfort_delta": self.max_comfort_delta,
            "healthy": self.healthy(),
        }
