"""Online drift detection: served tree actions vs the MPC teacher.

A distilled tree is only as good as its agreement with the teacher that
labelled it.  The :class:`DriftDetector` re-asks the teacher online: every
tick it samples a handful of the states the fleet actually visited, labels
them with a teacher, and compares the label with the action the serving stack
returned for that row.  Disagreement is windowed *per served policy version*,
and the alarm is **baseline-relative**: a version alarms when its windowed
disagreement exceeds the incumbent's by more than ``threshold``.  That makes
the alarm robust to the teacher's own imperfection — an imperfect teacher
disagrees with the incumbent and the candidate alike, and only the *excess*
is evidence of drift.

Two teachers are provided:

* :class:`MPCTeacher` — the real thing: the paper's
  :class:`~repro.agents.random_shooting.RandomShootingOptimizer` under the
  same Monte-Carlo vote used at distillation time
  (:meth:`~repro.core.decision_dataset.DecisionDatasetGenerator.distill_decisions`),
  with persistence forecasts built from the sampled observation itself.
* :class:`TreePolicyTeacher` — a frozen reference tree (typically the
  verified incumbent artifact); cheap and fully deterministic, used by the
  smoke/CI paths where training a dynamics model per run would dominate.

Both label deterministically for a fixed seed and call order, which is what
keeps the whole closed loop bit-reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.agents.random_shooting import RandomShootingOptimizer
from repro.core.tree_policy import TreePolicy
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs

#: Column of the Table-1 observation vector holding the occupant count.
_OCCUPANT_COUNT_FEATURE = 5


class TreePolicyTeacher:
    """A frozen reference tree as the drift oracle (deterministic, cheap)."""

    def __init__(self, policy: TreePolicy):
        self._compiled = policy.compiled()
        self._pairs = np.asarray(policy.action_pairs, dtype=np.int64)

    def label_pairs(self, inputs: np.ndarray) -> np.ndarray:
        """Reference ``(N, 2)`` setpoint pairs for ``(N, F)`` observations."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        return self._pairs[self._compiled.predict_batch(inputs)]


class MPCTeacher:
    """The random-shooting MPC teacher under the distillation-time MC vote.

    Mirrors
    :meth:`~repro.core.decision_dataset.DecisionDatasetGenerator.distill_decisions`:
    each sampled observation becomes ``monte_carlo_runs`` planning problems
    with a persistence forecast (the observed disturbance held over the
    horizon), solved in one
    :meth:`~repro.agents.random_shooting.RandomShootingOptimizer.plan_batch`
    call, and the vote over runs is the label.  The vote is what makes a
    stochastic optimizer usable as an online oracle: label noise that would
    swamp a single-shot comparison mostly cancels in the vote, and whatever
    residual noise remains hits incumbent and candidate symmetrically — which
    the detector's baseline-relative alarm then subtracts out.
    """

    def __init__(
        self,
        optimizer: RandomShootingOptimizer,
        action_pairs: Sequence[Tuple[int, int]],
        monte_carlo_runs: int = 3,
        planning_horizon: int = 5,
        occupancy_threshold: float = 0.5,
        seed: RNGLike = 0,
    ):
        if monte_carlo_runs <= 0:
            raise ValueError("monte_carlo_runs must be positive")
        if planning_horizon <= 0:
            raise ValueError("planning_horizon must be positive")
        self.optimizer = optimizer
        self._pairs = np.asarray(list(action_pairs), dtype=np.int64)
        self.monte_carlo_runs = int(monte_carlo_runs)
        self.planning_horizon = int(planning_horizon)
        self.occupancy_threshold = float(occupancy_threshold)
        self._rng = ensure_rng(seed)

    def label_pairs(self, inputs: np.ndarray) -> np.ndarray:
        """Teacher ``(N, 2)`` setpoint pairs for ``(N, 6)`` observations."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        num_inputs = len(inputs)
        runs = self.monte_carlo_runs
        run_rngs: List = []
        for _ in range(num_inputs):
            run_rngs.extend(spawn_rngs(self._rng, runs))

        states = np.repeat(inputs[:, 0], runs)
        disturbances = np.repeat(inputs[:, 1:], runs, axis=0)
        occupied = disturbances[:, _OCCUPANT_COUNT_FEATURE - 1] > self.occupancy_threshold
        n_problems = num_inputs * runs
        forecasts = np.broadcast_to(
            disturbances[:, np.newaxis, :],
            (n_problems, self.planning_horizon, disturbances.shape[1]),
        )
        occupied_forecasts = np.broadcast_to(
            occupied[:, np.newaxis], (n_problems, self.planning_horizon)
        )
        plan = self.optimizer.plan_batch(
            states, forecasts, occupied_forecasts, rngs=run_rngs
        )
        best_first = np.asarray(plan.best_action_indices, dtype=np.int64).reshape(
            num_inputs, runs
        )
        num_actions = len(self._pairs)
        offsets = np.arange(num_inputs)[:, np.newaxis] * num_actions
        counts = np.bincount(
            (best_first + offsets).ravel(), minlength=num_inputs * num_actions
        ).reshape(num_inputs, num_actions)
        return self._pairs[np.argmax(counts, axis=1)]


class _VersionWindow:
    """Ring buffers of one policy version's sampled disagreement."""

    __slots__ = ("mismatches", "rows", "ticks_seen", "first_alarm_tick")

    def __init__(self, window: int):
        self.mismatches = np.zeros(window)
        self.rows = np.zeros(window)
        self.ticks_seen = 0
        self.first_alarm_tick: Optional[int] = None


class DriftDetector:
    """Windowed per-version teacher-disagreement with a baseline-relative alarm."""

    def __init__(
        self,
        teacher,
        sample_size: int = 32,
        window: int = 16,
        threshold: float = 0.25,
        min_ticks: int = 8,
        baseline_policy_id: Optional[str] = None,
        seed: RNGLike = 0,
    ):
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        if min_ticks <= 0:
            raise ValueError("min_ticks must be positive")
        self.teacher = teacher
        self.sample_size = int(sample_size)
        self.window = int(window)
        self.threshold = float(threshold)
        self.min_ticks = int(min_ticks)
        self.baseline_policy_id = baseline_policy_id
        self._rng = ensure_rng(seed)
        self._versions: Dict[str, _VersionWindow] = {}
        #: Ticks folded in so far (the ring cursor).
        self.observed = 0
        #: Total sampled rows labelled by the teacher.
        self.rows_sampled = 0

    # -------------------------------------------------------------- sampling
    def sample_rows(self, total_rows: int) -> np.ndarray:
        """Deterministically sample which fleet rows to audit this tick."""
        if total_rows <= 0:
            raise ValueError("total_rows must be positive")
        count = min(self.sample_size, total_rows)
        return np.sort(self._rng.choice(total_rows, size=count, replace=False))

    # ------------------------------------------------------------- observing
    def observe(
        self,
        tick: int,
        policy_ids: np.ndarray,
        served_pairs: np.ndarray,
        inputs: np.ndarray,
    ) -> None:
        """Label the sampled rows with the teacher and fold in the mismatches.

        ``policy_ids`` names the policy version that *actually served* each
        sampled row (candidate on canary rows, incumbent elsewhere), so the
        mismatch statistics attribute each disagreement to the version that
        produced it.
        """
        policy_ids = np.asarray(policy_ids)
        served = np.asarray(served_pairs, dtype=np.int64)
        teacher_pairs = np.asarray(self.teacher.label_pairs(inputs), dtype=np.int64)
        if served.shape != teacher_pairs.shape:
            raise ValueError(
                f"served pairs {served.shape} and teacher pairs "
                f"{teacher_pairs.shape} must have identical shapes"
            )
        mismatch = np.any(served != teacher_pairs, axis=1)
        cursor = self.observed % self.window
        # Versions absent from this tick's sample advance with zero weight so
        # their window keeps sliding.
        for state in self._versions.values():
            state.mismatches[cursor] = 0.0
            state.rows[cursor] = 0.0
        unique, codes = np.unique(policy_ids, return_inverse=True)
        for slot in range(len(unique)):  # policy *versions* (2-3), not rows
            version = str(unique[slot])
            state = self._versions.get(version)
            if state is None:
                state = _VersionWindow(self.window)
                self._versions[version] = state
            mask = codes == slot
            state.mismatches[cursor] = float(np.sum(mismatch[mask]))
            state.rows[cursor] = float(np.sum(mask))
            state.ticks_seen += 1
        self.observed += 1
        self.rows_sampled += len(served)
        # Latch first-alarm ticks for alarm-latency reporting.
        for version in self._versions:
            if version == self.baseline_policy_id:
                continue
            state = self._versions[version]
            if state.first_alarm_tick is None and self._is_alarmed(version):
                state.first_alarm_tick = tick

    # ------------------------------------------------------------- reporting
    def disagreement(self, policy_id: str) -> float:
        """Windowed teacher-disagreement rate of one served version."""
        state = self._versions.get(str(policy_id))
        if state is None:
            return 0.0
        total = float(np.sum(state.rows))
        if total == 0.0:
            return 0.0
        return float(np.sum(state.mismatches) / total)

    def excess(self, policy_id: str) -> float:
        """Disagreement of a version over the baseline (0 with no baseline)."""
        base = (
            self.disagreement(self.baseline_policy_id)
            if self.baseline_policy_id is not None
            else 0.0
        )
        return self.disagreement(policy_id) - base

    def _is_alarmed(self, policy_id: str) -> bool:
        state = self._versions.get(str(policy_id))
        if state is None or state.ticks_seen < self.min_ticks:
            return False
        return self.excess(policy_id) > self.threshold

    def alarms(self) -> Dict[str, float]:
        """Every alarmed version (excluding the baseline) with its excess."""
        return {
            version: self.excess(version)
            for version in self._versions
            if version != self.baseline_policy_id and self._is_alarmed(version)
        }

    def first_alarm_tick(self, policy_id: str) -> Optional[int]:
        """The tick a version first alarmed (None if it never did)."""
        state = self._versions.get(str(policy_id))
        return state.first_alarm_tick if state is not None else None

    def report(self) -> Dict[str, Any]:
        """JSON-friendly summary of every tracked version."""
        return {
            "observed_ticks": self.observed,
            "rows_sampled": self.rows_sampled,
            "threshold": self.threshold,
            "baseline_policy_id": self.baseline_policy_id,
            "versions": {
                version: {
                    "disagreement": self.disagreement(version),
                    "excess": self.excess(version),
                    "alarmed": self._is_alarmed(version),
                    "first_alarm_tick": state.first_alarm_tick,
                }
                for version, state in self._versions.items()
            },
        }
