"""Columnar per-building fleet telemetry.

Every accumulator in here is a ``(B,)`` array indexed by the fleet's global
building order (groups are contiguous slices of it), updated with one scatter
per group per tick — no per-building python objects, no dict-of-scalars rows
(reprolint REP007 keeps it that way).  Windowed statistics live in
``(window, B)`` ring buffers written at ``tick % window``, so "the last N
ticks" is a mean over a fixed-size buffer regardless of how long the loop has
been running.

Because the serving stack is action-exact (sharded responses are bit-identical
to the in-process server, through worker kills included), telemetry is
bit-identical across serving topologies — the determinism suite compares these
arrays directly with ``np.array_equal``.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.data import InfoBatch


class FleetTelemetry:
    """Windowed, columnar comfort/energy accounting for one fleet."""

    def __init__(self, building_ids: np.ndarray, step_hours: float, window: int = 96):
        if window <= 0:
            raise ValueError("window must be positive")
        self.building_ids = np.asarray(building_ids)
        self.step_hours = float(step_hours)
        self.window = int(window)
        count = len(self.building_ids)
        if count == 0:
            raise ValueError("A fleet needs at least one building")
        #: Completed ticks (one tick = one synchronized step of every group).
        self.ticks = 0
        #: Ticks served by the degraded-mode fallback controller.
        self.fallback_ticks = 0
        #: Ticks where no actions could be produced at all (floor: zero).
        self.lost_ticks = 0
        #: Episode boundaries crossed (groups auto-reset and keep running).
        self.episodes_completed = 0
        self.energy_kwh = np.zeros(count)
        self.energy_proxy = np.zeros(count)
        self.reward_sum = np.zeros(count)
        self.comfort_violation_degree_hours = np.zeros(count)
        self.comfort_violated_ticks = np.zeros(count)
        self.occupied_ticks = np.zeros(count)
        self._ring_reward = np.zeros((self.window, count))
        self._ring_energy = np.zeros((self.window, count))
        self._ring_violation = np.zeros((self.window, count))

    def __len__(self) -> int:
        return len(self.building_ids)

    # ------------------------------------------------------------- recording
    def record_group(self, offset: int, rewards: np.ndarray, info: InfoBatch) -> None:
        """Fold one group's step result into the fleet accumulators.

        ``offset`` is the group's starting row in the fleet's global building
        order; the group occupies ``offset : offset + len(rewards)``.  Call
        once per group, then :meth:`advance_tick` once per tick.
        """
        rewards = np.asarray(rewards, dtype=float)
        hi = offset + len(rewards)
        energy = np.asarray(info["hvac_electric_energy_kwh"], dtype=float)
        proxy = np.asarray(info["energy_proxy"], dtype=float)
        violation = np.asarray(info["comfort_violation"], dtype=float)
        violated = np.asarray(info["comfort_violated"], dtype=float)
        occupied = np.asarray(info["occupied"], dtype=float)
        self.energy_kwh[offset:hi] += energy
        self.energy_proxy[offset:hi] += proxy
        self.reward_sum[offset:hi] += rewards
        self.comfort_violation_degree_hours[offset:hi] += violation * self.step_hours
        self.comfort_violated_ticks[offset:hi] += violated
        self.occupied_ticks[offset:hi] += occupied
        cursor = self.ticks % self.window
        self._ring_reward[cursor, offset:hi] = rewards
        self._ring_energy[cursor, offset:hi] = energy
        self._ring_violation[cursor, offset:hi] = violation

    def advance_tick(self, fallback: bool = False, lost: bool = False) -> None:
        """Close the current tick (after every group recorded its slice)."""
        self.ticks += 1
        if fallback:
            self.fallback_ticks += 1
        if lost:
            self.lost_ticks += 1

    # ------------------------------------------------------------- windowed
    def _window_filled(self) -> int:
        return min(self.ticks, self.window)

    def windowed_mean_reward(self) -> np.ndarray:
        """Per-building mean reward over the last ``window`` ticks, ``(B,)``."""
        filled = self._window_filled()
        if filled == 0:
            return np.zeros(len(self))
        return self._ring_reward[:filled].mean(axis=0)

    def windowed_mean_energy_kwh(self) -> np.ndarray:
        """Per-building mean electric energy per tick over the window, ``(B,)``."""
        filled = self._window_filled()
        if filled == 0:
            return np.zeros(len(self))
        return self._ring_energy[:filled].mean(axis=0)

    def windowed_mean_violation(self) -> np.ndarray:
        """Per-building mean comfort violation (°C) over the window, ``(B,)``."""
        filled = self._window_filled()
        if filled == 0:
            return np.zeros(len(self))
        return self._ring_violation[:filled].mean(axis=0)

    # -------------------------------------------------------------- summary
    def snapshot(self) -> Dict[str, Any]:
        """Fleet-level aggregate summary (JSON-friendly scalars only)."""
        buildings = len(self)
        ticks = max(self.ticks, 1)
        return {
            "buildings": buildings,
            "ticks": self.ticks,
            "fallback_ticks": self.fallback_ticks,
            "lost_ticks": self.lost_ticks,
            "episodes_completed": self.episodes_completed,
            "total_energy_kwh": float(np.sum(self.energy_kwh)),
            "mean_energy_kwh_per_building_tick": float(
                np.sum(self.energy_kwh) / (buildings * ticks)
            ),
            "mean_reward_per_building_tick": float(
                np.sum(self.reward_sum) / (buildings * ticks)
            ),
            "comfort_violation_degree_hours": float(
                np.sum(self.comfort_violation_degree_hours)
            ),
            "comfort_violated_tick_fraction": float(
                np.sum(self.comfort_violated_ticks) / (buildings * ticks)
            ),
            "windowed_mean_reward": float(np.mean(self.windowed_mean_reward())),
            "windowed_mean_energy_kwh": float(np.mean(self.windowed_mean_energy_kwh())),
            "windowed_mean_violation": float(np.mean(self.windowed_mean_violation())),
        }

    def equals(self, other: "FleetTelemetry") -> bool:
        """Bit-identical comparison of every accumulator (determinism tests)."""
        return (
            self.ticks == other.ticks
            and self.fallback_ticks == other.fallback_ticks
            and self.lost_ticks == other.lost_ticks
            and self.episodes_completed == other.episodes_completed
            and np.array_equal(self.building_ids, other.building_ids)
            and np.array_equal(self.energy_kwh, other.energy_kwh)
            and np.array_equal(self.energy_proxy, other.energy_proxy)
            and np.array_equal(self.reward_sum, other.reward_sum)
            and np.array_equal(
                self.comfort_violation_degree_hours,
                other.comfort_violation_degree_hours,
            )
            and np.array_equal(self.comfort_violated_ticks, other.comfort_violated_ticks)
            and np.array_equal(self._ring_reward, other._ring_reward)
            and np.array_equal(self._ring_energy, other._ring_energy)
            and np.array_equal(self._ring_violation, other._ring_violation)
        )
