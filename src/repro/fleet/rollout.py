"""Canary → promote → rollback over the store's content-addressed versions.

The :class:`RolloutManager` moves one (incumbent, candidate) pair of policy
ids through a four-state machine:

``idle`` → (:meth:`RolloutManager.begin_canary`) → ``canary`` →
``promoted`` | ``rolled_back``

* **canary** — a fixed fraction of buildings serve the candidate, everyone
  else keeps the incumbent.  Membership is a *stable hash* of the building
  id (CRC-32, the same family the serving tier uses for policy routing), so
  the slice is identical across runs, processes and restarts — no RNG, no
  ordering dependence.
* **promoted** — after ``min_canary_ticks`` healthy ticks (shadow gate green,
  no drift alarm) every building serves the candidate.  Because store
  versions are content-addressed, "promote" is just serving a different key;
  nothing is overwritten.
* **rolled_back** — the moment a drift alarm fires, or the shadow gate is red
  when the canary window closes, every building — canary slice included —
  reverts to the incumbent key.  The incumbent artifact was never mutated,
  so rollback is exact by construction; the fleet loop's telemetry then
  shows the canary slice's actions coming back bit-identical to a fleet that
  never canaried.

Transitions are recorded as :class:`RolloutEvent`s (tick, from, to, reason)
for the operator log and the test suite.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

IDLE = "idle"
CANARY = "canary"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"

#: Hash-space resolution of the canary fraction (0.01% granularity).
_HASH_BUCKETS = 10_000


def canary_mask(building_ids: np.ndarray, fraction: float, salt: str = "") -> np.ndarray:
    """Stable-hash canary membership for a building-id column.

    ``crc32(salt + id) % 10_000 < fraction * 10_000`` — deterministic across
    runs and independent of fleet ordering, so adding or removing groups
    never reshuffles which buildings are canaries.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    cutoff = int(round(fraction * _HASH_BUCKETS))
    prefix = salt.encode()
    # One-time per-rollout setup over the id column; every per-tick decision
    # downstream is pure array ops on the resulting mask.
    return np.fromiter(
        (
            zlib.crc32(prefix + str(building_id).encode()) % _HASH_BUCKETS < cutoff
            for building_id in building_ids  # reprolint: disable=REP007 -- one-shot hashing of the id column at canary setup, never on the tick path
        ),
        dtype=bool,
        count=len(building_ids),
    )


@dataclass
class RolloutEvent:
    """One state-machine transition, for the operator log."""

    tick: int
    previous: str
    state: str
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form."""
        return {
            "tick": self.tick,
            "previous": self.previous,
            "state": self.state,
            "reason": self.reason,
        }


class RolloutManager:
    """State machine gating one candidate version behind shadow/drift health."""

    def __init__(
        self,
        incumbent_id: str,
        candidate_id: str,
        canary_fraction: float = 0.1,
        min_canary_ticks: int = 16,
        salt: str = "",
    ):
        if incumbent_id == candidate_id:
            raise ValueError("candidate must differ from the incumbent")
        if not 0.0 < canary_fraction <= 1.0:
            raise ValueError(f"canary_fraction must be in (0, 1], got {canary_fraction}")
        if min_canary_ticks <= 0:
            raise ValueError("min_canary_ticks must be positive")
        self.incumbent_id = str(incumbent_id)
        self.candidate_id = str(candidate_id)
        self.canary_fraction = float(canary_fraction)
        self.min_canary_ticks = int(min_canary_ticks)
        self.salt = salt
        self.state = IDLE
        self.canary_started_tick: Optional[int] = None
        self.events: List[RolloutEvent] = []

    # ------------------------------------------------------------ membership
    def canary_mask(self, building_ids: np.ndarray) -> np.ndarray:
        """Stable canary membership for a group's building-id column."""
        return canary_mask(building_ids, self.canary_fraction, salt=self.salt)

    def serving_ids(self, incumbent_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """The policy-id column to serve this tick for one group.

        ``incumbent_ids`` is the group's incumbent id broadcast over its rows
        and ``mask`` its canary membership; rows outside the rollout's
        incumbent are passed through untouched.
        """
        incumbent_ids = np.asarray(incumbent_ids)
        managed = incumbent_ids == self.incumbent_id
        if self.state == CANARY:
            return np.where(managed & mask, self.candidate_id, incumbent_ids)
        if self.state == PROMOTED:
            return np.where(managed, self.candidate_id, incumbent_ids)
        return incumbent_ids.copy()

    # ------------------------------------------------------------ transitions
    def _transition(self, tick: int, state: str, reason: str) -> None:
        self.events.append(
            RolloutEvent(tick=tick, previous=self.state, state=state, reason=reason)
        )
        self.state = state

    def begin_canary(self, tick: int) -> None:
        """Start serving the candidate on the canary slice."""
        if self.state != IDLE:
            raise RuntimeError(f"Cannot begin a canary from state {self.state!r}")
        self.canary_started_tick = tick
        self._transition(
            tick,
            CANARY,
            f"canary {self.candidate_id} at {self.canary_fraction:.0%} of "
            f"{self.incumbent_id} buildings",
        )

    def on_tick(self, tick: int, shadow_healthy: bool, drift_alarmed: bool) -> str:
        """Advance the machine one tick; returns the (possibly new) state.

        A drift alarm rolls back immediately; the shadow gate is consulted
        when the canary window closes (``min_canary_ticks`` after the canary
        began): green promotes, red rolls back.
        """
        if self.state != CANARY:
            return self.state
        if drift_alarmed:
            self._transition(tick, ROLLED_BACK, "drift alarm on the candidate")
            return self.state
        assert self.canary_started_tick is not None
        elapsed = tick - self.canary_started_tick + 1
        if elapsed >= self.min_canary_ticks:
            if shadow_healthy:
                self._transition(
                    tick, PROMOTED, f"shadow gate green after {elapsed} canary ticks"
                )
            else:
                self._transition(
                    tick, ROLLED_BACK, f"shadow gate red after {elapsed} canary ticks"
                )
        return self.state

    # ------------------------------------------------------------- reporting
    @property
    def active(self) -> bool:
        """Whether the candidate is still being canaried."""
        return self.state == CANARY

    def report(self) -> Dict[str, Any]:
        """JSON-friendly state + transition log."""
        return {
            "incumbent": self.incumbent_id,
            "candidate": self.candidate_id,
            "canary_fraction": self.canary_fraction,
            "min_canary_ticks": self.min_canary_ticks,
            "state": self.state,
            "canary_started_tick": self.canary_started_tick,
            "events": [event.to_dict() for event in self.events],
        }
