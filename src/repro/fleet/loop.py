"""The closed fleet loop: observations out of the sim, actions out of the server.

One :class:`FleetLoop` tick is a full SCADA-style telemetry round trip for
every building in the fleet:

1. gather the current :class:`~repro.data.ObservationBatch` of every
   :class:`FleetGroup` (a batched environment under one scenario and one
   incumbent policy) into a single columnar request;
2. route it through the serving stack (a
   :class:`~repro.serving.ShardedPolicyServer` fleet or an in-process
   :class:`~repro.serving.PolicyServer`) in one ``serve_columnar`` call;
3. map the served (heating, cooling) pairs onto each group's environment
   action table and step every group;
4. fold rewards/energy/comfort into the columnar
   :class:`~repro.fleet.telemetry.FleetTelemetry`;
5. drive the optional rollout machinery: shadow-serve the candidate
   (:class:`~repro.fleet.shadow.ShadowEvaluator`), audit sampled rows against
   the teacher (:class:`~repro.fleet.drift.DriftDetector`), and advance the
   :class:`~repro.fleet.rollout.RolloutManager` state machine.

The loop never stops on a serving failure: if the shard fleet exhausts its
retry budget mid-tick, the tick is served by a bank of per-building
:class:`~repro.agents.hysteresis.HysteresisAgent` thermostats (the
degraded-mode controller) and counted in ``telemetry.fallback_ticks``; with
the fallback bank disabled the tick is counted as *lost* and the buildings
hold their off setpoints — the physics never pause.  CI floors assert
``lost_ticks == 0`` through injected worker kills.

Everything on the tick path is columnar (reprolint REP007): one request, one
response, one scatter per group.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.agents.hysteresis import HysteresisAgent
from repro.data import ActionBatch, ObservationBatch, PolicyRequestBatch
from repro.env.vector_env import BatchedHVACEnvironment
from repro.fleet.drift import DriftDetector
from repro.fleet.rollout import RolloutManager
from repro.fleet.shadow import ShadowEvaluator
from repro.fleet.telemetry import FleetTelemetry
from repro.serving import ShardedServingError


class _ActionIndexer:
    """Vectorised (heating, cooling) → environment-action-index lookup.

    Served responses carry setpoint pairs from the *policy's* action table;
    the environment wants indices into *its* setpoint table.  Both tables are
    tiny, so each pair is encoded into one integer code and resolved with a
    binary search over the sorted code table — one ``searchsorted`` per
    group per tick, no python per-row work.
    """

    #: Code base; setpoints are small positive integers, far below this.
    _BASE = 1024

    def __init__(self, action_space):
        pairs = np.asarray(action_space.pairs, dtype=np.int64)
        codes = pairs[:, 0] * self._BASE + pairs[:, 1]
        self._order = np.argsort(codes)
        self._sorted = codes[self._order]

    def __call__(self, setpoint_pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(setpoint_pairs, dtype=np.int64)
        codes = pairs[:, 0] * self._BASE + pairs[:, 1]
        positions = np.clip(
            np.searchsorted(self._sorted, codes), 0, len(self._sorted) - 1
        )
        if not np.all(self._sorted[positions] == codes):
            raise ValueError(
                "Served setpoint pair outside the environment's action table"
            )
        return self._order[positions]


class FleetGroup:
    """One scenario's slice of the fleet: a batched env + ids + incumbent."""

    def __init__(
        self,
        name: str,
        env: BatchedHVACEnvironment,
        building_ids: np.ndarray,
        policy_id: str,
    ):
        if len(building_ids) != env.batch_size:
            raise ValueError(
                f"{len(building_ids)} building ids for a batch of {env.batch_size}"
            )
        self.name = str(name)
        self.env = env
        self.building_ids = np.asarray(building_ids)
        self.policy_id = str(policy_id)
        self.indexer = _ActionIndexer(env.environments[0].action_space)
        #: Current (pre-step) observations; maintained by the loop.
        self.observations: Optional[ObservationBatch] = None

    @classmethod
    def from_scenario(
        cls,
        scenario: Union[str, Any],
        policy_id: str,
        num_buildings: int,
        base_seed: int = 0,
        distinct: int = 16,
        days: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "FleetGroup":
        """Build a group of ``num_buildings`` from one scenario.

        ``distinct`` controls how many *distinct* disturbance traces are
        simulated (seeds ``base_seed .. base_seed + distinct - 1``); the
        traces are tiled across the group, which makes thousand-building
        groups cheap to construct while every serving-side code path still
        sees the full row count.  ``scenario`` is a grid name
        (``city/season[/building]``) or a prepared ``ScenarioSpec``.
        """
        from repro.experiments.scenarios import ScenarioSpec

        if num_buildings <= 0:
            raise ValueError("num_buildings must be positive")
        if distinct <= 0:
            raise ValueError("distinct must be positive")
        if isinstance(scenario, str):
            kwargs = {"days": days} if days is not None else {}
            spec = ScenarioSpec.from_name(scenario, **kwargs)
        else:
            spec = scenario
        distinct = min(int(distinct), int(num_buildings))
        base_envs = [spec.build_environment(base_seed + i) for i in range(distinct)]
        tiled = [base_envs[i % distinct] for i in range(num_buildings)]
        group_name = name or spec.name
        ids = np.array([f"{group_name}/b{i:05d}" for i in range(num_buildings)])
        return cls(
            name=group_name,
            env=BatchedHVACEnvironment(tiled),
            building_ids=ids,
            policy_id=policy_id,
        )


class FleetLoop:
    """Tick-driven closed loop over one or more fleet groups."""

    def __init__(
        self,
        server,
        groups: Sequence[FleetGroup],
        telemetry_window: int = 96,
        rollout: Optional[RolloutManager] = None,
        shadow: Optional[ShadowEvaluator] = None,
        drift: Optional[DriftDetector] = None,
        fallback: bool = True,
        fallback_deadband: float = 0.5,
    ):
        if not groups:
            raise ValueError("A fleet needs at least one group")
        self.server = server
        self.groups: List[FleetGroup] = list(groups)
        durations = {g.env.step_duration_seconds for g in self.groups}
        if len(durations) != 1:
            raise ValueError("All groups must share the control-step duration")
        self.rollout = rollout
        self.shadow = shadow
        self.drift = drift

        self._slices: List[Tuple[int, int]] = []
        offset = 0
        for group in self.groups:
            self._slices.append((offset, offset + group.env.batch_size))
            offset += group.env.batch_size
        self.total_buildings = offset
        building_ids = np.concatenate([g.building_ids for g in self.groups])
        self._incumbent_ids = np.concatenate(
            [np.full(g.env.batch_size, g.policy_id) for g in self.groups]
        )
        if rollout is not None:
            self._canary_mask = rollout.canary_mask(building_ids)
            self._managed = self._incumbent_ids == rollout.incumbent_id
        else:
            self._canary_mask = np.zeros(self.total_buildings, dtype=bool)
            self._managed = np.zeros(self.total_buildings, dtype=bool)

        step_hours = self.groups[0].env.step_duration_seconds / 3600.0
        self.telemetry = FleetTelemetry(
            building_ids, step_hours=step_hours, window=telemetry_window
        )
        if fallback:
            self._fallback_banks = [
                HysteresisAgent.for_environments(
                    g.env.environments, deadband=fallback_deadband
                )
                for g in self.groups
            ]
        else:
            self._fallback_banks = None
        self.tick_index = 0
        self.tick_seconds: List[float] = []
        self.serve_seconds: List[float] = []
        self.reset()

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        """Reset every group (and the fallback latches) to tick zero state."""
        for group in self.groups:
            observations, _ = group.env.reset()
            group.observations = observations
        if self._fallback_banks is not None:
            for bank in self._fallback_banks:
                for agent in bank:
                    agent.reset()
        self.tick_index = 0

    # ------------------------------------------------------------------- tick
    def _serving_ids(self) -> np.ndarray:
        if self.rollout is None:
            return self._incumbent_ids
        return self.rollout.serving_ids(self._incumbent_ids, self._canary_mask)

    def tick(self) -> None:
        """One synchronized observe → serve → act round trip for the fleet."""
        tick_start = time.perf_counter()
        observation_matrix = np.concatenate(
            [np.asarray(g.observations, dtype=float) for g in self.groups]
        )
        serving_ids = self._serving_ids()

        serve_start = time.perf_counter()
        served_pairs: Optional[np.ndarray] = None
        try:
            response = self.server.serve_columnar(
                PolicyRequestBatch(
                    policy_ids=serving_ids, observations=observation_matrix
                )
            )
            served_pairs = response.setpoint_pairs()
        except ShardedServingError:
            # Retry budget exhausted: this tick is served by the degraded-mode
            # thermostats (or held at off setpoints and counted as lost).
            pass
        self.serve_seconds.append(time.perf_counter() - serve_start)

        for index, group in enumerate(self.groups):
            lo, hi = self._slices[index]
            if served_pairs is not None:
                actions = ActionBatch(group.indexer(served_pairs[lo:hi]))
            elif self._fallback_banks is not None:
                actions = HysteresisAgent.select_actions_batch(
                    self._fallback_banks[index],
                    group.observations,
                    group.env.environments,
                    group.env.step_index,
                )
            else:
                off_pair = group.env.environments[0].config.actions.off_setpoints()
                off_index = group.env.environments[0].action_space.to_index(*off_pair)
                actions = ActionBatch(
                    np.full(group.env.batch_size, off_index, dtype=np.int64)
                )
            result = group.env.step(actions)
            self.telemetry.record_group(lo, result.rewards, result.info)
            if result.truncated:
                # Continuous operation: the episode ends, the building does
                # not — re-enter the trace from the start.
                observations, _ = group.env.reset()
                group.observations = observations
                self.telemetry.episodes_completed += 1
                if self._fallback_banks is not None:
                    for agent in self._fallback_banks[index]:
                        agent.reset()
            else:
                group.observations = result.observations

        if served_pairs is not None:
            self._observe_shadow(observation_matrix, serving_ids, served_pairs)
            self._observe_drift(observation_matrix, serving_ids, served_pairs)
        self._advance_rollout()
        self.telemetry.advance_tick(
            fallback=served_pairs is None and self._fallback_banks is not None,
            lost=served_pairs is None and self._fallback_banks is None,
        )
        self.tick_index += 1
        self.tick_seconds.append(time.perf_counter() - tick_start)

    def run(self, ticks: int) -> FleetTelemetry:
        """Drive the loop ``ticks`` ticks and return the fleet telemetry."""
        if ticks <= 0:
            raise ValueError("ticks must be positive")
        for _ in range(ticks):
            self.tick()
        return self.telemetry

    # ------------------------------------------------------ rollout machinery
    def _observe_shadow(
        self,
        observation_matrix: np.ndarray,
        serving_ids: np.ndarray,
        served_pairs: np.ndarray,
    ) -> None:
        if self.shadow is None or self.rollout is None or not self.rollout.active:
            return
        rows = self._managed & ~self._canary_mask
        if not np.any(rows):
            self.shadow.observe(np.empty((0, 2)), np.empty((0, 2)))
            return
        count = int(np.sum(rows))
        try:
            candidate = self.server.serve_columnar(
                PolicyRequestBatch(
                    policy_ids=np.full(count, self.rollout.candidate_id),
                    observations=observation_matrix[rows],
                )
            )
        except ShardedServingError:
            # Shadow traffic is advisory; a failed shadow serve skips the
            # tick's comparison rather than degrading the real fleet.
            return
        self.shadow.observe(served_pairs[rows], candidate.setpoint_pairs())

    def _observe_drift(
        self,
        observation_matrix: np.ndarray,
        serving_ids: np.ndarray,
        served_pairs: np.ndarray,
    ) -> None:
        if self.drift is None:
            return
        sample = self.drift.sample_rows(self.total_buildings)
        self.drift.observe(
            self.tick_index,
            serving_ids[sample],
            served_pairs[sample],
            observation_matrix[sample],
        )

    def _advance_rollout(self) -> None:
        if self.rollout is None or not self.rollout.active:
            return
        drift_alarmed = (
            self.drift is not None
            and self.rollout.candidate_id in self.drift.alarms()
        )
        shadow_healthy = self.shadow.healthy() if self.shadow is not None else True
        self.rollout.on_tick(self.tick_index, shadow_healthy, drift_alarmed)

    # --------------------------------------------------------------- reporting
    def _latency_percentiles(self, seconds: Sequence[float]) -> Dict[str, float]:
        if not seconds:
            return {"p50": 0.0, "p99": 0.0, "mean": 0.0}
        values = np.asarray(seconds)
        return {
            "p50": float(np.percentile(values, 50)),
            "p99": float(np.percentile(values, 99)),
            "mean": float(np.mean(values)),
        }

    def report(self) -> Dict[str, Any]:
        """Operator summary: telemetry, latency, rollout/shadow/drift state."""
        wall = float(np.sum(self.tick_seconds)) if self.tick_seconds else 0.0
        ticks = len(self.tick_seconds)
        summary: Dict[str, Any] = {
            "groups": [
                {
                    "name": g.name,
                    "buildings": g.env.batch_size,
                    "policy_id": g.policy_id,
                }
                for g in self.groups
            ],
            "buildings": self.total_buildings,
            "ticks": ticks,
            "wall_seconds": wall,
            "ticks_per_second": ticks / wall if wall > 0 else 0.0,
            "building_ticks_per_second": (
                ticks * self.total_buildings / wall if wall > 0 else 0.0
            ),
            "tick_latency_seconds": self._latency_percentiles(self.tick_seconds),
            "serve_latency_seconds": self._latency_percentiles(self.serve_seconds),
            "telemetry": self.telemetry.snapshot(),
        }
        if self.rollout is not None:
            summary["rollout"] = self.rollout.report()
        if self.shadow is not None:
            summary["shadow"] = self.shadow.report()
        if self.drift is not None:
            summary["drift"] = self.drift.report()
        return summary
