"""Closed-loop fleet operations over the serving stack.

This package connects the repo's two halves: thousands of simulated buildings
(:class:`~repro.env.vector_env.BatchedHVACEnvironment` groups) stream
observations into the policy-serving tier and apply the returned actions,
tick by tick, like a SCADA telemetry loop — with the operational safeguards a
real fleet needs around policy changes:

* :class:`FleetLoop` / :class:`FleetGroup` — the tick loop and its per-scenario
  building groups, with a hysteresis-thermostat degraded mode
  (:mod:`repro.fleet.loop`);
* :class:`FleetTelemetry` — columnar, windowed per-building comfort/energy
  accounting (:mod:`repro.fleet.telemetry`);
* :class:`ShadowEvaluator` — candidate-vs-incumbent comparison on live
  observations without applying candidate actions (:mod:`repro.fleet.shadow`);
* :class:`DriftDetector` / :class:`MPCTeacher` / :class:`TreePolicyTeacher` —
  online audit of served actions against the MPC teacher on sampled states
  (:mod:`repro.fleet.drift`);
* :class:`RolloutManager` — the canary → promote → rollback state machine over
  content-addressed policy versions (:mod:`repro.fleet.rollout`).

Everything on the tick path is columnar; reprolint's REP007 rule enforces
that no per-building python loops or dict-of-scalars telemetry creep in.
"""

from repro.fleet.drift import DriftDetector, MPCTeacher, TreePolicyTeacher
from repro.fleet.loop import FleetGroup, FleetLoop
from repro.fleet.rollout import (
    CANARY,
    IDLE,
    PROMOTED,
    ROLLED_BACK,
    RolloutEvent,
    RolloutManager,
    canary_mask,
)
from repro.fleet.shadow import ShadowEvaluator
from repro.fleet.telemetry import FleetTelemetry

__all__ = [
    "CANARY",
    "DriftDetector",
    "FleetGroup",
    "FleetLoop",
    "FleetTelemetry",
    "IDLE",
    "MPCTeacher",
    "PROMOTED",
    "ROLLED_BACK",
    "RolloutEvent",
    "RolloutManager",
    "ShadowEvaluator",
    "TreePolicyTeacher",
    "canary_mask",
]
