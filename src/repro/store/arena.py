"""The packed policy arena: many compiled trees in one mmap'able artifact.

The JSON store (:mod:`repro.store.store`) optimises for provenance: one
human-readable artifact per policy, content-hashed and independently
verifiable.  That is the right shape for *writing* policies and the wrong
shape for *serving* 10\N{SUPERSCRIPT FIVE}–10\N{SUPERSCRIPT SIX} of them —
every cold load pays a JSON parse, a recursive ``TreePolicy`` rebuild and a
re-flatten into :class:`~repro.serving.compiled.CompiledTreePolicy` arrays.

The arena is the serving-shaped mirror of the store: the compiled arrays
(``feature``/``threshold``/``left``/``right``/``leaf_action``/
``action_pairs``) of *every* packed policy concatenated into one versioned
binary file with a per-policy offset index.  Servers ``mmap`` the file once
and wrap offset slices in read-only numpy views — cold-loading a policy is a
dictionary lookup plus six zero-copy slices (O(1), no parse, no compile),
and because ``mmap`` pages are shared, N shard processes serving the same
arena map the same physical memory.

On-disk layout (little-endian, every data section 64-byte aligned)::

    offset 0    header   magic "RPARENA\\x01", version u32, flags u32,
                         meta_offset u64, meta_size u64, file_size u64
                         (zero-padded to 64 bytes)
    aligned     index    int64 (P, 6): node_start, node_count,
                         action_start, action_count, n_features, depth
    aligned     feature  int32  (N,)   concatenated node features (-1 = leaf)
    aligned     threshold float64 (N,) split thresholds
    aligned     left     int32  (N,)   left-child offsets (policy-local)
    aligned     right    int32  (N,)   right-child offsets (policy-local)
    aligned     leaf_action int64 (N,) leaf action indices
    aligned     action_pairs int64 (A, 2) concatenated setpoint tables
    tail        meta     canonical JSON: policy ids, per-section table
                         {name, offset, nbytes, dtype, shape, crc32}

The file is written atomically (temp file + ``os.replace``), so readers only
ever see a complete arena; per-section CRC-32s make corruption detectable
without hashing the whole file on open (:meth:`PolicyArena.verify`).
:func:`resolve_arena` is the polymorphic front door the serving stack uses —
a corrupt or truncated arena resolves to "no arena" plus a reason, never an
outage, so callers fall back to the JSON path.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serving.compiled import CompiledTreePolicy
    from repro.store.store import PolicyStore

#: First 8 bytes of every arena file.
ARENA_MAGIC = b"RPARENA\x01"

#: Format version; readers refuse anything else.
ARENA_VERSION = 1

#: Alignment (bytes) of every data section — one cache line, and a multiple
#: of every section itemsize, so views never straddle element boundaries.
ARENA_ALIGN = 64

#: Default arena filename inside a store root.
ARENA_FILENAME = "policies.arena"

#: ``<`` magic, version u32, flags u32, meta_offset u64, meta_size u64,
#: file_size u64 — 40 bytes used, zero-padded to :data:`ARENA_ALIGN`.
_HEADER = struct.Struct("<8sIIQQQ")

#: Data sections in file order with their declared dtypes (numpy str codes).
_SECTION_DTYPES: Dict[str, str] = {
    "index": "<i8",
    "feature": "<i4",
    "threshold": "<f8",
    "left": "<i4",
    "right": "<i4",
    "leaf_action": "<i8",
    "action_pairs": "<i8",
}

#: Columns of the per-policy offset index (``index`` section).
IDX_NODE_START = 0
IDX_NODE_COUNT = 1
IDX_ACTION_START = 2
IDX_ACTION_COUNT = 3
IDX_N_FEATURES = 4
IDX_DEPTH = 5

__all__ = [
    "ARENA_ALIGN",
    "ARENA_FILENAME",
    "ARENA_MAGIC",
    "ARENA_VERSION",
    "ArenaIntegrityError",
    "ArenaLike",
    "ArenaSection",
    "PolicyArena",
    "resolve_arena",
    "write_arena",
]


class ArenaIntegrityError(RuntimeError):
    """A packed arena failed header, bounds or CRC validation."""


@dataclass(frozen=True)
class ArenaSection:
    """One data section's entry in the arena's metadata table."""

    name: str
    offset: int
    nbytes: int
    dtype: str
    shape: Tuple[int, ...]
    crc32: int


def _align_up(offset: int) -> int:
    """The next :data:`ARENA_ALIGN` boundary at or above ``offset``."""
    return (offset + ARENA_ALIGN - 1) // ARENA_ALIGN * ARENA_ALIGN


def _shared_feature_names(
    policies: Sequence[Tuple[str, "CompiledTreePolicy"]]
) -> Optional[List[str]]:
    """The one feature-name list all packed policies agree on, else ``None``."""
    names: Optional[List[str]] = None
    for _, compiled in policies:
        if compiled.feature_names is None:
            return None
        if names is None:
            names = list(compiled.feature_names)
        elif names != list(compiled.feature_names):
            return None
    return names


def write_arena(
    path: Union[str, Path],
    policies: Sequence[Tuple[str, "CompiledTreePolicy"]],
) -> Path:
    """Pack compiled policies into one arena file, atomically.

    ``policies`` is a sequence of ``(policy_id, CompiledTreePolicy)`` pairs;
    ids must be unique (they are the serving lookup keys).  The file appears
    at ``path`` via temp-file + ``os.replace``, so concurrent readers never
    observe a partial arena.  Returns the final path.
    """
    target = Path(path)
    if not policies:
        raise ValueError("cannot pack an empty arena (no policies given)")
    ids = [policy_id for policy_id, _ in policies]
    if len(set(ids)) != len(ids):
        counts: Dict[str, int] = {}
        for policy_id in ids:
            counts[policy_id] = counts.get(policy_id, 0) + 1
        dupes = sorted(i for i, c in counts.items() if c > 1)
        raise ValueError(f"duplicate policy ids in arena pack: {dupes[:5]}")

    compiled = [entry for _, entry in policies]
    node_counts = np.array([p.node_count for p in compiled], dtype=np.int64)
    action_counts = np.array([p.num_actions for p in compiled], dtype=np.int64)
    node_starts = np.zeros(len(compiled), dtype=np.int64)
    action_starts = np.zeros(len(compiled), dtype=np.int64)
    np.cumsum(node_counts[:-1], out=node_starts[1:])
    np.cumsum(action_counts[:-1], out=action_starts[1:])

    index = np.empty((len(compiled), 6), dtype=np.int64)
    index[:, IDX_NODE_START] = node_starts
    index[:, IDX_NODE_COUNT] = node_counts
    index[:, IDX_ACTION_START] = action_starts
    index[:, IDX_ACTION_COUNT] = action_counts
    index[:, IDX_N_FEATURES] = np.array([p.n_features for p in compiled], dtype=np.int64)
    index[:, IDX_DEPTH] = np.array([p.depth for p in compiled], dtype=np.int64)

    sections: List[Tuple[str, NDArray[Any]]] = [
        ("index", index),
        ("feature", np.concatenate([np.ascontiguousarray(p.feature, dtype=np.int32) for p in compiled])),
        ("threshold", np.concatenate([np.ascontiguousarray(p.threshold, dtype=np.float64) for p in compiled])),
        ("left", np.concatenate([np.ascontiguousarray(p.left, dtype=np.int32) for p in compiled])),
        ("right", np.concatenate([np.ascontiguousarray(p.right, dtype=np.int32) for p in compiled])),
        ("leaf_action", np.concatenate([np.ascontiguousarray(p.leaf_action, dtype=np.int64) for p in compiled])),
        ("action_pairs", np.concatenate([np.ascontiguousarray(p.action_pairs, dtype=np.int64) for p in compiled])),
    ]

    specs: List[Dict[str, Any]] = []
    blobs: List[bytes] = []
    offset = ARENA_ALIGN  # the header block owns the first 64 bytes
    for name, array in sections:
        data = array.tobytes()
        specs.append(
            {
                "name": name,
                "offset": offset,
                "nbytes": len(data),
                "dtype": _SECTION_DTYPES[name],
                "shape": list(array.shape),
                "crc32": zlib.crc32(data) & 0xFFFFFFFF,
            }
        )
        blobs.append(data)
        offset = _align_up(offset + len(data))
    meta_offset = offset
    meta = {
        "format": "repro-policy-arena",
        "created_at": datetime.now(timezone.utc).isoformat(timespec="microseconds"),
        "policy_count": len(ids),
        "policy_ids": ids,
        "feature_names": _shared_feature_names(policies),
        "sections": specs,
    }
    meta_bytes = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode("utf-8")
    file_size = meta_offset + len(meta_bytes)
    header = _HEADER.pack(
        ARENA_MAGIC, ARENA_VERSION, 0, meta_offset, len(meta_bytes), file_size
    )

    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(f"{target.name}.tmp{os.getpid()}")
    try:
        with open(scratch, "wb") as handle:
            handle.write(header)
            handle.write(b"\x00" * (ARENA_ALIGN - len(header)))
            position = ARENA_ALIGN
            for spec, blob in zip(specs, blobs):
                handle.write(b"\x00" * (int(spec["offset"]) - position))
                handle.write(blob)
                position = int(spec["offset"]) + len(blob)
            handle.write(b"\x00" * (meta_offset - position))
            handle.write(meta_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
    finally:
        if scratch.exists():  # pragma: no cover - only on a failed write
            scratch.unlink()
    return target


class PolicyArena:
    """Read-only mmap view over one packed arena of compiled tree policies.

    Opening validates the cheap invariants (magic, version, size, metadata
    bounds, section bounds/dtypes, offset-index bounds) and maps the file;
    per-section CRCs are checked by :meth:`verify` (or ``verify=True``) since
    hashing hundreds of megabytes does not belong on the server start path.

    Ownership: the arena owns the file handle and the mapping; compiled
    policies handed out by :meth:`get` hold zero-copy **views** into the
    mapping and stay valid until the arena (and every view) is released.
    :meth:`close` drops the arena's own references; the OS unmaps the pages
    once the last outstanding view is garbage-collected.
    """

    def __init__(self, path: Union[str, Path], verify: bool = False):
        self.path = Path(path)
        handle = open(self.path, "rb")
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            handle.close()
            raise ArenaIntegrityError(f"{self.path}: cannot map arena: {exc}") from exc
        self._file = handle
        self._mm = mapped
        self._handles: Dict[str, "CompiledTreePolicy"] = {}
        self._views: Dict[str, NDArray[Any]] = {}
        self._sections: Dict[str, ArenaSection] = {}
        self._ids: List[str] = []
        self._rows: Dict[str, int] = {}
        self._feature_names: Optional[List[str]] = None
        self._index: NDArray[Any] = np.empty((0, 6), dtype=np.int64)
        try:
            self._parse()
            if verify:
                self.verify()
        except ArenaIntegrityError:
            self.close()
            raise

    @classmethod
    def open(cls, path: Union[str, Path], verify: bool = False) -> "PolicyArena":
        """Open an arena file (alias of the constructor, reads aloud better)."""
        return cls(path, verify=verify)

    # ------------------------------------------------------------ validation
    def _fail(self, message: str) -> "ArenaIntegrityError":
        return ArenaIntegrityError(
            f"{self.path}: {message} — the arena is corrupt or truncated; "
            "re-run 'repro policies pack' (serving falls back to the JSON store)"
        )

    def _parse(self) -> None:
        """Validate header, metadata and bounds; build the section views."""
        size = len(self._mm)
        if size < ARENA_ALIGN:
            raise self._fail(f"file is {size} bytes, smaller than the arena header")
        magic, version, _flags, meta_offset, meta_size, file_size = _HEADER.unpack_from(
            self._mm, 0
        )
        if magic != ARENA_MAGIC:
            raise self._fail("bad magic (not a packed policy arena)")
        if version != ARENA_VERSION:
            raise ArenaIntegrityError(
                f"{self.path}: unsupported arena version {version} "
                f"(this build reads version {ARENA_VERSION}); re-pack the store"
            )
        if file_size != size:
            raise self._fail(f"header says {file_size} bytes but the file has {size}")
        if meta_offset + meta_size > size or meta_offset < ARENA_ALIGN:
            raise self._fail("metadata block out of bounds")
        try:
            meta = json.loads(bytes(self._mm[meta_offset : meta_offset + meta_size]))
        except (ValueError, UnicodeDecodeError) as exc:
            raise self._fail(f"metadata block is not valid JSON ({exc})") from exc

        ids = meta.get("policy_ids")
        raw_sections = meta.get("sections")
        if not isinstance(ids, list) or not isinstance(raw_sections, list):
            raise self._fail("metadata is missing policy_ids or sections")
        self._ids = [str(policy_id) for policy_id in ids]
        self._rows = {policy_id: row for row, policy_id in enumerate(self._ids)}
        names = meta.get("feature_names")
        self._feature_names = [str(n) for n in names] if isinstance(names, list) else None

        for raw in raw_sections:
            section = ArenaSection(
                name=str(raw["name"]),
                offset=int(raw["offset"]),
                nbytes=int(raw["nbytes"]),
                dtype=str(raw["dtype"]),
                shape=tuple(int(d) for d in raw["shape"]),
                crc32=int(raw["crc32"]),
            )
            self._sections[section.name] = section
        missing = sorted(set(_SECTION_DTYPES) - set(self._sections))
        if missing:
            raise self._fail(f"metadata is missing sections {missing}")

        for name, declared in _SECTION_DTYPES.items():
            section = self._sections[name]
            if section.dtype != declared:
                raise self._fail(
                    f"section {name!r} declares dtype {section.dtype!r}, expected {declared!r}"
                )
            dtype = np.dtype(declared)
            elements = 1
            for dim in section.shape:
                if dim < 0:
                    raise self._fail(f"section {name!r} has a negative shape {section.shape}")
                elements *= dim
            if elements * dtype.itemsize != section.nbytes:
                raise self._fail(
                    f"section {name!r} shape {section.shape} disagrees with its byte size"
                )
            if section.offset % ARENA_ALIGN != 0:
                raise self._fail(f"section {name!r} offset {section.offset} is unaligned")
            if section.offset + section.nbytes > meta_offset:
                raise self._fail(f"section {name!r} runs past the metadata block")
            view: NDArray[Any] = np.frombuffer(
                self._mm, dtype=dtype, count=elements, offset=section.offset
            ).reshape(section.shape)
            self._views[name] = view

        self._index = self._views["index"]
        self._check_index()

    def _check_index(self) -> None:
        """Bounds-check the offset index against the data sections."""
        index = self._index
        policy_count = len(self._ids)
        if index.shape != (policy_count, 6):
            raise self._fail(
                f"offset index shape {index.shape} disagrees with "
                f"{policy_count} policy ids"
            )
        total_nodes = len(self._views["feature"])
        for name in ("threshold", "left", "right", "leaf_action"):
            if len(self._views[name]) != total_nodes:
                raise self._fail(f"section {name!r} length disagrees with 'feature'")
        total_actions = len(self._views["action_pairs"])
        if policy_count == 0:
            return
        node_starts = index[:, IDX_NODE_START]
        node_counts = index[:, IDX_NODE_COUNT]
        action_starts = index[:, IDX_ACTION_START]
        action_counts = index[:, IDX_ACTION_COUNT]
        if (
            bool(np.any(node_starts < 0))
            or bool(np.any(node_counts < 1))
            or bool(np.any(node_starts + node_counts > total_nodes))
        ):
            raise self._fail("offset index node ranges out of bounds")
        if (
            bool(np.any(action_starts < 0))
            or bool(np.any(action_counts < 1))
            or bool(np.any(action_starts + action_counts > total_actions))
        ):
            raise self._fail("offset index action ranges out of bounds")
        if bool(np.any(index[:, IDX_N_FEATURES] < 1)) or bool(np.any(index[:, IDX_DEPTH] < 1)):
            raise self._fail("offset index carries non-positive n_features or depth")

    def verify(self) -> None:
        """Recompute every section's CRC-32; raises on any mismatch."""
        if self._mm.closed:
            raise ArenaIntegrityError(f"{self.path}: arena is closed")
        for section in self._sections.values():
            actual = (
                zlib.crc32(self._mm[section.offset : section.offset + section.nbytes])
                & 0xFFFFFFFF
            )
            if actual != section.crc32:
                raise ArenaIntegrityError(
                    f"{self.path}: section {section.name!r} CRC mismatch "
                    f"(stored {section.crc32:#010x}, computed {actual:#010x}) — "
                    "the arena is corrupt; re-run 'repro policies pack'"
                )

    # --------------------------------------------------------------- lookups
    @property
    def policy_count(self) -> int:
        """How many policies the arena packs."""
        return len(self._ids)

    @property
    def nbytes_mapped(self) -> int:
        """Size of the mapping in bytes (the whole arena file)."""
        return 0 if self._mm.closed else len(self._mm)

    @property
    def feature_names(self) -> Optional[List[str]]:
        """The feature-name list shared by every packed policy, if any."""
        return list(self._feature_names) if self._feature_names is not None else None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the mapping."""
        return self._mm.closed

    def policy_ids(self) -> List[str]:
        """Every packed policy id, in pack order."""
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, policy_id: object) -> bool:
        return policy_id in self._rows

    def get(self, policy_id: str) -> Optional["CompiledTreePolicy"]:
        """The compiled policy for an id, or ``None`` when not packed.

        The first lookup wraps the six mmap slices in a zero-copy
        :meth:`~repro.serving.compiled.CompiledTreePolicy.from_views` handle;
        repeats return the cached handle.  No bytes are copied either way —
        the kernel pages the arrays in on first traversal.
        """
        handle = self._handles.get(policy_id)
        if handle is not None:
            return handle
        row = self._rows.get(policy_id)
        if row is None:
            return None
        if self._mm.closed:
            raise ArenaIntegrityError(f"{self.path}: arena is closed")
        from repro.serving.compiled import CompiledTreePolicy

        node_lo = int(self._index[row, IDX_NODE_START])
        node_hi = node_lo + int(self._index[row, IDX_NODE_COUNT])
        action_lo = int(self._index[row, IDX_ACTION_START])
        action_hi = action_lo + int(self._index[row, IDX_ACTION_COUNT])
        compiled = CompiledTreePolicy.from_views(
            feature=self._views["feature"][node_lo:node_hi],
            threshold=self._views["threshold"][node_lo:node_hi],
            left=self._views["left"][node_lo:node_hi],
            right=self._views["right"][node_lo:node_hi],
            leaf_action=self._views["leaf_action"][node_lo:node_hi],
            action_pairs=self._views["action_pairs"][action_lo:action_hi],
            n_features=int(self._index[row, IDX_N_FEATURES]),
            depth=int(self._index[row, IDX_DEPTH]),
            feature_names=self._feature_names,
        )
        self._handles[policy_id] = compiled
        return compiled

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the arena's own references and the mapping (idempotent).

        Views already handed out keep their pages alive: ``mmap`` refuses to
        close under exported buffers, so the actual unmap happens when the
        last view is garbage-collected.
        """
        self._handles.clear()
        self._views.clear()
        self._index = np.empty((0, 6), dtype=np.int64)
        if not self._mm.closed:
            try:
                self._mm.close()
            except BufferError:
                # Outstanding zero-copy views still reference the map; the
                # OS reclaims it once they are garbage-collected.
                pass
        self._file.close()

    def __enter__(self) -> "PolicyArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PolicyArena(path={str(self.path)!r}, policies={self.policy_count}, "
            f"bytes={self.nbytes_mapped})"
        )


#: What the serving stack accepts as an ``arena`` argument.
ArenaLike = Union["PolicyArena", str, Path, bool, None]


def resolve_arena(
    arena: ArenaLike, store: Optional["PolicyStore"]
) -> Tuple[Optional["PolicyArena"], Optional[str]]:
    """Coerce the polymorphic ``arena`` argument used across the serving stack.

    Returns ``(arena_or_none, fallback_reason_or_none)``:

    * ``False`` — arena disabled, ``(None, None)``.
    * ``None`` — auto mode: open the store's packed arena when one exists,
      otherwise serve from JSON silently.
    * ``True`` — require the store's arena; a *missing* file raises
      ``FileNotFoundError`` (a configuration error), but a corrupt one still
      falls back.
    * path — open that file (missing file raises, corrupt file falls back).
    * :class:`PolicyArena` — passed through (caller keeps ownership).

    A truncated or corrupted arena never takes serving down: it resolves to
    ``(None, reason)`` and the caller serves from the JSON store instead.
    """
    if arena is False:
        return None, None
    if arena is None or arena is True:
        if store is None:
            if arena is True:
                raise ValueError("arena=True requires a policy store to locate the arena")
            return None, None
        path = store.arena_path
        if not path.exists():
            if arena is True:
                raise FileNotFoundError(
                    f"no packed arena at {path}; run 'repro policies pack' first"
                )
            return None, None
    elif isinstance(arena, PolicyArena):
        return arena, None
    else:
        path = Path(arena)
        if not path.exists():
            raise FileNotFoundError(
                f"no packed arena at {path}; run 'repro policies pack' first"
            )
    try:
        return PolicyArena(path), None
    except ArenaIntegrityError as exc:
        return None, str(exc)
