"""The content-addressed, versioned policy store.

The paper's end product is a verified decision-tree policy deployed to a
building — a *persistent artifact*, not something re-derived on every control
query.  :class:`PolicyStore` is that persistence layer: every
extract-verify-deploy run is filed under a deterministic :class:`PolicyKey`
(city, season, building preset, seed, pipeline-config hash) as a
schema-versioned JSON artifact carrying the policy, its verification report
and integrity hashes.  A second run with an identical configuration resolves
to the stored artifact instead of re-running the pipeline, and the serving
subsystem (:mod:`repro.serving`) compiles policies straight out of the store.

On-disk layout (one artifact per file, human-readable JSON)::

    <root>/
      <city>/<season>/<building>-seed<seed>-<hash12>.json

Artifact envelope::

    {
      "schema_version": 1,
      "kind": "verified-tree-policy",
      "key": {city, season, building, seed, config_hash},
      "content": {pipeline_config, policy, verification,
                  fidelity, model_rmse, model_mae},
      "provenance": {created_at, stage_seconds, repro_version},
      "integrity": {algorithm, content_sha256, policy_sha256}
    }

``content_sha256`` covers exactly the ``content`` block (canonical JSON), so
identical pipeline runs produce identical hashes regardless of wall-clock
provenance, and :meth:`PolicyStore.get` detects any on-disk corruption or
hand-editing before a policy reaches a building.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import os

from repro.core.verification import VerificationSummary
from repro.utils.serialization import (
    atomic_save_json,
    content_hash,
    load_json,
    to_jsonable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.pipeline import PipelineConfig, PipelineResult
    from repro.core.tree_policy import TreePolicy

#: Version of the store artifact envelope.  Mismatching artifacts are refused.
STORE_SCHEMA_VERSION = 1

#: The ``kind`` tag every artifact carries.
ARTIFACT_KIND = "verified-tree-policy"

#: Environment variable overriding the default store root.
STORE_ENV_VAR = "REPRO_POLICY_STORE"


class StoreIntegrityError(RuntimeError):
    """A stored artifact failed its integrity (or schema) validation."""


def default_store_root() -> Path:
    """The default on-disk store location (override with ``REPRO_POLICY_STORE``)."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro" / "policy-store"


def building_label(peak_occupants: int) -> str:
    """Map a pipeline's occupancy level to the matching building preset name.

    The pipeline is parameterised by ``peak_occupants`` while the scenario
    grid names building variants; the store key uses the preset name when one
    matches so store listings read like scenario names.
    """
    from repro.experiments.scenarios import BUILDINGS

    for name, spec in BUILDINGS.items():
        if spec.peak_occupants == int(peak_occupants):
            return name
    return f"occupants{int(peak_occupants)}"


@dataclass(frozen=True)
class PolicyKey:
    """The deterministic identity of one stored policy.

    ``config_hash`` is the SHA-256 of the *entire* canonical pipeline
    configuration, so any knob change — optimizer samples, comfort thresholds,
    tree depth — yields a distinct key even when the headline coordinates
    (city, season, building, seed) coincide.
    """

    city: str
    season: str
    building: str
    seed: int
    config_hash: str

    @classmethod
    def from_config(cls, config: "PipelineConfig") -> "PolicyKey":
        from dataclasses import asdict

        return cls(
            city=config.city,
            season=config.season,
            building=building_label(config.peak_occupants),
            seed=int(config.seed),
            config_hash=content_hash(asdict(config)),
        )

    @property
    def key_id(self) -> str:
        """Short human-readable identifier (unique: includes the config hash)."""
        return f"{self.building}-seed{self.seed}-{self.config_hash[:12]}"

    @property
    def name(self) -> str:
        """Full path-style name, ``city/season/key_id``."""
        return f"{self.city}/{self.season}/{self.key_id}"

    def relative_path(self) -> Path:
        return Path(self.city) / self.season / f"{self.key_id}.json"

    def to_dict(self) -> Dict[str, object]:
        return {
            "city": self.city,
            "season": self.season,
            "building": self.building,
            "seed": self.seed,
            "config_hash": self.config_hash,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PolicyKey":
        return cls(
            city=str(data["city"]),
            season=str(data["season"]),
            building=str(data["building"]),
            seed=int(data["seed"]),
            config_hash=str(data["config_hash"]),
        )


@dataclass(frozen=True)
class StoreEntry:
    """Metadata view of one stored artifact (no policy deserialisation)."""

    key: PolicyKey
    path: Path
    created_at: str
    content_sha256: str
    policy_sha256: str
    tree_nodes: int
    tree_leaves: int
    verified: bool
    fidelity: float

    def as_row(self) -> List[object]:
        """One row of the ``repro policies`` listing."""
        return [
            self.key.name,
            self.tree_nodes,
            self.tree_leaves,
            self.verified,
            round(self.fidelity, 4),
            self.created_at,
            self.policy_sha256[:12],
        ]

    #: Header matching :meth:`as_row`.
    ROW_HEADER = ["policy", "nodes", "leaves", "verified", "fidelity", "created", "sha256"]


@dataclass
class StoredPolicy:
    """A fully deserialised store artifact."""

    entry: StoreEntry
    policy: "TreePolicy"
    verification: Optional[VerificationSummary]
    pipeline_config: Dict[str, Any]
    fidelity: float
    model_rmse: float
    model_mae: float
    stage_seconds: Dict[str, float]


def resolve_store(store: Union["PolicyStore", str, Path, bool, None]) -> Optional["PolicyStore"]:
    """Coerce the polymorphic ``store`` argument used across the library.

    ``None``/``False`` disable the store, ``True`` means "the default store",
    a path opens a store rooted there, and an existing :class:`PolicyStore`
    passes through.
    """
    if store is None or store is False:
        return None
    if store is True:
        return PolicyStore()
    if isinstance(store, PolicyStore):
        return store
    return PolicyStore(store)


class PolicyStore:
    """Content-addressed persistence for extracted+verified tree policies."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root).expanduser() if root is not None else default_store_root()

    def __repr__(self) -> str:
        return f"PolicyStore(root={str(self.root)!r})"

    # ---------------------------------------------------------------- paths
    def path_for(self, key: PolicyKey) -> Path:
        return self.root / key.relative_path()

    @property
    def arena_path(self) -> Path:
        """Where :meth:`pack` writes the packed arena (and servers look for it)."""
        from repro.store.arena import ARENA_FILENAME

        return self.root / ARENA_FILENAME

    @staticmethod
    def _as_key(key_or_config) -> PolicyKey:
        if isinstance(key_or_config, PolicyKey):
            return key_or_config
        return PolicyKey.from_config(key_or_config)

    # ------------------------------------------------------------------ put
    def put(self, result: "PipelineResult") -> StoreEntry:
        """Persist one pipeline result; returns the (content-hashed) entry.

        Writing is idempotent: the same result always lands at the same path
        with the same content hash, so re-running an identical pipeline only
        refreshes provenance.
        """
        from repro import __version__

        key = PolicyKey.from_config(result.config)
        policy_payload = to_jsonable(result.policy.to_dict())
        from dataclasses import asdict

        content = {
            "pipeline_config": to_jsonable(asdict(result.config)),
            "policy": policy_payload,
            "verification": to_jsonable(result.verification),
            "fidelity": float(result.fidelity),
            "model_rmse": float(result.model_rmse),
            "model_mae": float(result.model_mae),
        }
        artifact = {
            "schema_version": STORE_SCHEMA_VERSION,
            "kind": ARTIFACT_KIND,
            "key": key.to_dict(),
            "content": content,
            "provenance": {
                # Microsecond resolution: prune()'s newest-first ordering must
                # distinguish artifacts written within the same second.
                "created_at": datetime.now(timezone.utc).isoformat(timespec="microseconds"),
                "stage_seconds": to_jsonable(result.stage_seconds),
                "repro_version": __version__,
            },
            "integrity": {
                "algorithm": "sha256",
                "content_sha256": content_hash(content),
                "policy_sha256": content_hash(policy_payload),
            },
        }
        path = atomic_save_json(artifact, self.path_for(key))
        return self._entry_from_artifact(artifact, path)

    def put_policy(
        self,
        key: PolicyKey,
        policy: "TreePolicy",
        fidelity: float = 1.0,
        verification: Optional[VerificationSummary] = None,
        pipeline_config: Optional[Dict[str, Any]] = None,
        model_rmse: float = 0.0,
        model_mae: float = 0.0,
    ) -> StoreEntry:
        """Persist a bare policy under an explicit key (no pipeline run).

        The lower-level sibling of :meth:`put` for policies that did not come
        out of a local extract-verify run — synthetic fleets, imports,
        benchmark corpora.  The artifact carries the same schema-versioned
        envelope and integrity hashes; verification metadata is whatever the
        caller supplies (``None`` means unverified).
        """
        from repro import __version__

        policy_payload = to_jsonable(policy.to_dict())
        content = {
            "pipeline_config": to_jsonable(pipeline_config or {}),
            "policy": policy_payload,
            "verification": to_jsonable(verification),
            "fidelity": float(fidelity),
            "model_rmse": float(model_rmse),
            "model_mae": float(model_mae),
        }
        artifact = {
            "schema_version": STORE_SCHEMA_VERSION,
            "kind": ARTIFACT_KIND,
            "key": key.to_dict(),
            "content": content,
            "provenance": {
                "created_at": datetime.now(timezone.utc).isoformat(timespec="microseconds"),
                "stage_seconds": {},
                "repro_version": __version__,
            },
            "integrity": {
                "algorithm": "sha256",
                "content_sha256": content_hash(content),
                "policy_sha256": content_hash(policy_payload),
            },
        }
        path = atomic_save_json(artifact, self.path_for(key))
        return self._entry_from_artifact(artifact, path)

    # ----------------------------------------------------------------- pack
    def pack(
        self,
        path: Union[str, Path, None] = None,
        city: Optional[str] = None,
        season: Optional[str] = None,
    ) -> Path:
        """Pack every stored policy's compiled arrays into one mmap'able arena.

        Loads (and integrity-checks) each matching artifact, compiles its
        tree once, and writes the concatenated arrays atomically to ``path``
        (default :attr:`arena_path`).  Servers opened against this store pick
        the arena up automatically — cold loads become O(1) mmap slices and
        shard processes share the compiled pages.  Returns the arena path.
        """
        from repro.serving.compiled import CompiledTreePolicy
        from repro.store.arena import write_arena

        entries = self.entries(city=city, season=season)
        if not entries:
            raise ValueError(f"no stored policies under {self.root} to pack")
        packed = []
        # entries() sorts newest first; pack oldest-first so arena order is
        # stable as new policies append.
        for entry in reversed(entries):
            stored = self._load(entry.path)
            packed.append((entry.key.name, CompiledTreePolicy.from_policy(stored.policy)))
        target = Path(path) if path is not None else self.arena_path
        return write_arena(target, packed)

    # ------------------------------------------------------------------ get
    def get(self, key_or_config) -> Optional[StoredPolicy]:
        """Load (and integrity-check) the artifact for a key or pipeline config.

        Returns ``None`` on a miss; raises :class:`StoreIntegrityError` when
        an artifact exists but fails schema or hash validation.
        """
        key = self._as_key(key_or_config)
        path = self.path_for(key)
        if not path.exists():
            return None
        return self._load(path)

    def get_policy(self, key_or_config) -> Optional["TreePolicy"]:
        """Convenience: just the deployable policy (or ``None`` on a miss)."""
        stored = self.get(key_or_config)
        return stored.policy if stored is not None else None

    def contains(self, key_or_config) -> bool:
        return self.path_for(self._as_key(key_or_config)).exists()

    def find(self, name: str) -> Optional[StoredPolicy]:
        """Look an artifact up by ``key_id`` or full ``city/season/key_id`` name.

        Both forms map straight onto the on-disk layout (the ``key_id`` is
        the file stem), so resolution is one stat / one glob — this sits on
        the :class:`~repro.serving.server.PolicyServer` cache-miss path.
        """
        parts = [p for p in name.strip().split("/") if p]
        if len(parts) == 3:
            path = self.root / parts[0] / parts[1] / f"{parts[2]}.json"
            return self._load(path) if path.exists() else None
        if len(parts) == 1 and self.root.exists():
            matches = sorted(self.root.glob(f"*/*/{parts[0]}.json"))
            if matches:
                return self._load(matches[0])
        return None

    # ----------------------------------------------------------------- list
    def entries(
        self, city: Optional[str] = None, season: Optional[str] = None
    ) -> List[StoreEntry]:
        """Metadata for every stored artifact (optionally filtered), newest first."""
        if not self.root.exists():
            return []
        pattern = f"{city or '*'}/{season or '*'}/*.json"
        entries = []
        for path in sorted(self.root.glob(pattern)):
            try:
                entries.append(self._entry_from_artifact(load_json(path), path))
            except (ValueError, KeyError, OSError):
                continue  # foreign or partial files never break a listing
        entries.sort(key=lambda e: e.created_at, reverse=True)
        return entries

    # ---------------------------------------------------------------- prune
    def delete(self, key_or_config) -> bool:
        """Remove one artifact; returns whether anything was deleted."""
        path = self.path_for(self._as_key(key_or_config))
        if not path.exists():
            return False
        path.unlink()
        return True

    def prune(
        self,
        keep: int = 0,
        city: Optional[str] = None,
        season: Optional[str] = None,
    ) -> List[Path]:
        """Delete all but the ``keep`` newest matching artifacts."""
        if keep < 0:
            raise ValueError("keep must be non-negative")
        doomed = self.entries(city=city, season=season)[keep:]
        for entry in doomed:
            entry.path.unlink(missing_ok=True)
        return [entry.path for entry in doomed]

    def verify(self) -> Dict[str, bool]:
        """Integrity-check every artifact; maps artifact name -> ok.

        Covers the JSON artifacts (schema + content hashes) *and* any packed
        arena in the store root (header magic/version, offset-index bounds,
        per-section CRC-32), reported under ``arena:<filename>``.
        """
        report: Dict[str, bool] = {}
        for entry in self.entries():
            try:
                self._load(entry.path)
                report[entry.key.name] = True
            except (StoreIntegrityError, ValueError, KeyError):
                # Hash-valid but undeserialisable (e.g. a policy/tree schema
                # bump) counts as corrupt; one bad artifact must not stop the
                # sweep.
                report[entry.key.name] = False
        from repro.store.arena import ArenaIntegrityError, PolicyArena

        arena_paths = sorted(self.root.glob("*.arena")) if self.root.exists() else []
        for arena_path in arena_paths:
            name = f"arena:{arena_path.name}"
            try:
                PolicyArena(arena_path, verify=True).close()
                report[name] = True
            except (ArenaIntegrityError, OSError):
                report[name] = False
        return report

    # ------------------------------------------------------------- internals
    @staticmethod
    def _entry_from_artifact(artifact: Dict[str, Any], path: Path) -> StoreEntry:
        if artifact.get("kind") != ARTIFACT_KIND:
            raise ValueError(f"{path} is not a policy-store artifact")
        verification = artifact["content"].get("verification") or {}
        formal = verification.get("formal_report") or {}
        verified = bool(
            verification.get("criterion_1_passed")
            and formal.get("violations_criterion_2", 0) == formal.get("corrected_criterion_2", 0)
            and formal.get("violations_criterion_3", 0) == formal.get("corrected_criterion_3", 0)
        )
        return StoreEntry(
            key=PolicyKey.from_dict(artifact["key"]),
            path=path,
            created_at=str(artifact.get("provenance", {}).get("created_at", "")),
            content_sha256=str(artifact["integrity"]["content_sha256"]),
            policy_sha256=str(artifact["integrity"]["policy_sha256"]),
            tree_nodes=int(verification.get("total_nodes", 0)),
            tree_leaves=int(verification.get("leaf_nodes", 0)),
            verified=verified,
            fidelity=float(artifact["content"].get("fidelity", 0.0)),
        )

    def _load(self, path: Path) -> StoredPolicy:
        from repro.core.tree_policy import TreePolicy

        artifact = load_json(path)
        version = artifact.get("schema_version")
        if version != STORE_SCHEMA_VERSION:
            raise StoreIntegrityError(
                f"{path}: unsupported store schema_version {version!r} "
                f"(this build reads version {STORE_SCHEMA_VERSION})"
            )
        if artifact.get("kind") != ARTIFACT_KIND:
            raise StoreIntegrityError(f"{path}: unexpected artifact kind {artifact.get('kind')!r}")
        content = artifact["content"]
        integrity = artifact.get("integrity", {})
        actual = content_hash(content)
        if actual != integrity.get("content_sha256"):
            raise StoreIntegrityError(
                f"{path}: content hash mismatch — stored "
                f"{integrity.get('content_sha256')!r}, recomputed {actual!r}. "
                "The artifact is corrupt or was edited by hand; delete and re-extract."
            )
        entry = self._entry_from_artifact(artifact, path)
        verification = content.get("verification")
        return StoredPolicy(
            entry=entry,
            policy=TreePolicy.from_dict(content["policy"]),
            verification=VerificationSummary.from_dict(verification) if verification else None,
            pipeline_config=dict(content.get("pipeline_config", {})),
            fidelity=float(content.get("fidelity", 0.0)),
            model_rmse=float(content.get("model_rmse", float("nan"))),
            model_mae=float(content.get("model_mae", float("nan"))),
            stage_seconds=dict(artifact.get("provenance", {}).get("stage_seconds", {})),
        )
