"""Persistent, content-addressed storage of verified tree policies.

See :mod:`repro.store.store` for the artifact format and layout.  The usual
entry points::

    from repro.store import PolicyStore

    store = PolicyStore()                      # default root (or $REPRO_POLICY_STORE)
    result = VerifiedPolicyPipeline(cfg, store=store).run()   # writes through
    policy = store.get_policy(cfg)             # later: pure cache hit
"""

from repro.store.store import (
    ARTIFACT_KIND,
    STORE_ENV_VAR,
    STORE_SCHEMA_VERSION,
    PolicyKey,
    PolicyStore,
    StoreEntry,
    StoredPolicy,
    StoreIntegrityError,
    building_label,
    default_store_root,
    resolve_store,
)

__all__ = [
    "ARTIFACT_KIND",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
    "PolicyKey",
    "PolicyStore",
    "StoreEntry",
    "StoredPolicy",
    "StoreIntegrityError",
    "building_label",
    "default_store_root",
    "resolve_store",
]
