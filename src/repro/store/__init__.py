"""Persistent, content-addressed storage of verified tree policies.

See :mod:`repro.store.store` for the artifact format and layout, and
:mod:`repro.store.arena` for the packed serving-side mirror (many compiled
trees in one mmap'able arena).  The usual entry points::

    from repro.store import PolicyStore

    store = PolicyStore()                      # default root (or $REPRO_POLICY_STORE)
    result = VerifiedPolicyPipeline(cfg, store=store).run()   # writes through
    policy = store.get_policy(cfg)             # later: pure cache hit
    store.pack()                               # emit policies.arena for serving
"""

from repro.store.arena import (
    ARENA_FILENAME,
    ARENA_MAGIC,
    ARENA_VERSION,
    ArenaIntegrityError,
    ArenaLike,
    ArenaSection,
    PolicyArena,
    resolve_arena,
    write_arena,
)
from repro.store.store import (
    ARTIFACT_KIND,
    STORE_ENV_VAR,
    STORE_SCHEMA_VERSION,
    PolicyKey,
    PolicyStore,
    StoreEntry,
    StoredPolicy,
    StoreIntegrityError,
    building_label,
    default_store_root,
    resolve_store,
)

__all__ = [
    "ARENA_FILENAME",
    "ARENA_MAGIC",
    "ARENA_VERSION",
    "ARTIFACT_KIND",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
    "ArenaIntegrityError",
    "ArenaLike",
    "ArenaSection",
    "PolicyArena",
    "PolicyKey",
    "PolicyStore",
    "StoreEntry",
    "StoredPolicy",
    "StoreIntegrityError",
    "building_label",
    "default_store_root",
    "resolve_arena",
    "resolve_store",
    "write_arena",
]
