"""Array-compiled decision-tree policies.

A recursive :class:`~repro.core.tree_policy.TreePolicy` walk costs a python
call per node per request — fine for one thermostat, hopeless for serving a
fleet of buildings.  :class:`CompiledTreePolicy` flattens the tree once into
contiguous numpy arrays (feature index, threshold, child pointers, leaf
action) and answers whole request batches with a handful of vectorised
gathers per tree level: ``depth`` array operations instead of ``rows ×
depth`` python comparisons.

:class:`CompiledTreeForest` extends the same kernel to heterogeneous batches
— B rows routed through B *different* trees (one per building/episode) in a
single traversal over the concatenated node arrays — which is what lets the
batched experiment backend and the :class:`~repro.serving.server.PolicyServer`
keep every request in numpy.

Both are verified action-for-action against the recursive traversal in
``tests/test_serving.py``; the decision semantics are identical
(``x[feature] <= threshold`` routes left).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.core.tree_policy import TreePolicy

#: Sentinel feature index marking a leaf in the flattened arrays.
LEAF = -1

#: Declared serving dtypes of the flattened arrays.  ``from_views`` requires
#: them exactly; ``__init__`` converts anything else (with a copy only when
#: the input's dtype actually differs).
ARRAY_DTYPES: "dict[str, np.dtype[Any]]" = {
    "feature": np.dtype(np.int32),
    "threshold": np.dtype(np.float64),
    "left": np.dtype(np.int32),
    "right": np.dtype(np.int32),
    "leaf_action": np.dtype(np.int64),
    "action_pairs": np.dtype(np.int64),
}


def _as_typed(values: Any, dtype: "np.dtype[Any]") -> NDArray[Any]:
    """Coerce to an ndarray of ``dtype`` without copying matching inputs.

    An ndarray that already carries the declared dtype is returned *as the
    same object* — no allocation, and flags like ``writeable=False`` on
    arena-backed mmap views survive.  Anything else (lists, mismatched
    dtypes) goes through ``np.asarray`` and may copy.
    """
    if isinstance(values, np.ndarray) and values.dtype == dtype:
        return values
    return np.asarray(values, dtype=dtype)


def _descend(
    feature: NDArray[Any],
    threshold: NDArray[Any],
    left: NDArray[Any],
    right: NDArray[Any],
    inputs: NDArray[Any],
    nodes: NDArray[Any],
    max_depth: int,
) -> NDArray[Any]:
    """Route every row of ``inputs`` from its start node down to a leaf.

    One iteration advances the still-internal rows one level.  The working
    set shrinks as rows reach their leaves, so a level only pays for the rows
    actually still descending — on real policies most rows resolve well above
    the maximum depth, which is where the bulk of the speedup over a fixed
    full-width sweep comes from.
    """
    nodes = nodes.copy()
    alive = np.flatnonzero(feature[nodes] != LEAF)
    for _ in range(max_depth):
        if alive.size == 0:
            break
        current = nodes[alive]
        go_left = inputs[alive, feature[current]] <= threshold[current]
        descended = np.where(go_left, left[current], right[current])
        nodes[alive] = descended
        alive = alive[feature[descended] != LEAF]
    return nodes


class CompiledTreePolicy:
    """A :class:`TreePolicy` flattened into contiguous arrays for serving."""

    def __init__(
        self,
        feature: NDArray[Any],
        threshold: NDArray[Any],
        left: NDArray[Any],
        right: NDArray[Any],
        leaf_action: NDArray[Any],
        action_pairs: NDArray[Any],
        n_features: int,
        depth: int,
        feature_names: Optional[Sequence[str]] = None,
        city: Optional[str] = None,
    ):
        self.feature = _as_typed(feature, ARRAY_DTYPES["feature"])
        self.threshold = _as_typed(threshold, ARRAY_DTYPES["threshold"])
        self.left = _as_typed(left, ARRAY_DTYPES["left"])
        self.right = _as_typed(right, ARRAY_DTYPES["right"])
        self.leaf_action = _as_typed(leaf_action, ARRAY_DTYPES["leaf_action"])
        self.action_pairs = _as_typed(action_pairs, ARRAY_DTYPES["action_pairs"])
        self.n_features = int(n_features)
        self.depth = int(depth)
        self.feature_names = list(feature_names) if feature_names is not None else None
        self.city = city

    # ------------------------------------------------------------- building
    @classmethod
    def from_policy(cls, policy: TreePolicy) -> "CompiledTreePolicy":
        """Flatten a (fitted) tree policy via pre-order traversal."""
        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        leaf_action: List[int] = []

        def _flatten(node) -> int:
            index = len(feature)
            if node.is_leaf:
                feature.append(LEAF)
                threshold.append(0.0)
                left.append(LEAF)
                right.append(LEAF)
                leaf_action.append(int(node.prediction))
            else:
                feature.append(int(node.feature_index))
                threshold.append(float(node.threshold))
                left.append(0)  # patched below once the subtree is laid out
                right.append(0)
                leaf_action.append(LEAF)
                left[index] = _flatten(node.left)
                right[index] = _flatten(node.right)
            return index

        _flatten(policy.tree.root)
        return cls(
            feature=np.array(feature, dtype=np.int32),
            threshold=np.array(threshold, dtype=np.float64),
            left=np.array(left, dtype=np.int32),
            right=np.array(right, dtype=np.int32),
            leaf_action=np.array(leaf_action, dtype=np.int64),
            action_pairs=np.array(
                [list(pair) for pair in policy.action_pairs], dtype=np.int64
            ),
            n_features=policy.input_dim,
            depth=max(policy.depth, 1),
            feature_names=policy.feature_names,
            city=policy.city,
        )

    @classmethod
    def from_views(
        cls,
        feature: NDArray[Any],
        threshold: NDArray[Any],
        left: NDArray[Any],
        right: NDArray[Any],
        leaf_action: NDArray[Any],
        action_pairs: NDArray[Any],
        n_features: int,
        depth: int,
        feature_names: Optional[Sequence[str]] = None,
        city: Optional[str] = None,
    ) -> "CompiledTreePolicy":
        """Wrap existing typed array views with zero copies (arena serving).

        Every array must already be an ndarray of its declared serving dtype
        (:data:`ARRAY_DTYPES`) — the constructor then adopts the objects
        as-is, so an arena-backed mmap slice stays an mmap slice.  All six
        arrays on the returned policy are ``writeable=False``: mmap views
        arrive read-only already, and in-memory arrays are frozen through a
        zero-copy view, so no serving-path bug can ever scribble on pages
        shared across shard processes.
        """
        arrays = {
            "feature": feature,
            "threshold": threshold,
            "left": left,
            "right": right,
            "leaf_action": leaf_action,
            "action_pairs": action_pairs,
        }
        for name, array in arrays.items():
            expected = ARRAY_DTYPES[name]
            if not isinstance(array, np.ndarray) or array.dtype != expected:
                got = getattr(array, "dtype", type(array).__name__)
                raise ValueError(
                    f"from_views requires a {expected} ndarray for {name!r}, "
                    f"got {got} (use the regular constructor to convert)"
                )
        policy = cls(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            leaf_action=leaf_action,
            action_pairs=action_pairs,
            n_features=n_features,
            depth=depth,
            feature_names=feature_names,
            city=city,
        )
        for name in arrays:
            array = getattr(policy, name)
            if array.flags.writeable:
                frozen = array.view()
                frozen.flags.writeable = False
                setattr(policy, name, frozen)
        return policy

    # -------------------------------------------------------------- serving
    @property
    def node_count(self) -> int:
        """Total flattened nodes (internal + leaves)."""
        return len(self.feature)

    @property
    def leaf_count(self) -> int:
        """Leaves in the flattened tree (``feature == LEAF`` entries)."""
        return int(np.count_nonzero(self.feature == LEAF))

    @property
    def num_actions(self) -> int:
        """Rows of the ``(A, 2)`` (heating, cooling) action-pair table."""
        return len(self.action_pairs)

    def _check_inputs(self, inputs: NDArray[Any]) -> NDArray[Any]:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.ndim != 2 or inputs.shape[1] != self.n_features:
            raise ValueError(
                f"Expected policy inputs of shape (rows, {self.n_features}), "
                f"got {inputs.shape}"
            )
        return inputs

    def predict_batch(self, inputs: NDArray[Any]) -> NDArray[Any]:
        """Action indices for a batch of policy inputs, fully vectorised."""
        inputs = self._check_inputs(inputs)
        nodes = _descend(
            self.feature,
            self.threshold,
            self.left,
            self.right,
            inputs,
            np.zeros(len(inputs), dtype=np.int64),
            self.depth,
        )
        return self.leaf_action[nodes]

    def setpoints_batch(self, inputs: NDArray[Any]) -> NDArray[Any]:
        """(heating, cooling) setpoint pairs for a batch, shape ``(rows, 2)``."""
        return self.action_pairs[self.predict_batch(inputs)]

    def predict_action_index(self, policy_input: NDArray[Any]) -> int:
        """Single-request convenience mirroring ``TreePolicy.predict_action_index``."""
        return int(self.predict_batch(np.asarray(policy_input, dtype=float).reshape(1, -1))[0])


class CompiledTreeForest:
    """Several compiled trees traversed together, one tree per input row.

    The node arrays of all trees are concatenated and each row starts at its
    own tree's root offset, so a batch of B episodes — each controlled by a
    *different* verified policy — still resolves in ``max_depth`` vectorised
    steps.
    """

    def __init__(self, policies: Sequence[CompiledTreePolicy]):
        if not policies:
            raise ValueError("CompiledTreeForest needs at least one compiled policy")
        dims = {p.n_features for p in policies}
        if len(dims) != 1:
            raise ValueError(f"All trees must share one input dimension, got {sorted(dims)}")
        self.policies = list(policies)
        self.n_features = policies[0].n_features
        offsets = np.cumsum([0] + [p.node_count for p in policies[:-1]])
        self.roots = offsets.astype(np.int64)

        def _shift(arrays: List[NDArray[Any]]) -> NDArray[Any]:
            shifted = [
                np.where(arr == LEAF, LEAF, arr + offset)
                for arr, offset in zip(arrays, offsets)
            ]
            return np.concatenate(shifted)

        self.feature = np.concatenate([p.feature for p in policies])
        self.threshold = np.concatenate([p.threshold for p in policies])
        self.left = _shift([p.left for p in policies])
        self.right = _shift([p.right for p in policies])
        self.leaf_action = np.concatenate([p.leaf_action for p in policies])
        self.depth = max(p.depth for p in policies)

    @classmethod
    def from_policies(cls, policies: Sequence[TreePolicy]) -> "CompiledTreeForest":
        """Compile and fuse a sequence of (fitted) tree policies."""
        return cls([CompiledTreePolicy.from_policy(p) for p in policies])

    @property
    def size(self) -> int:
        """Tree count B (``predict_rows`` expects ``(B, n_features)`` inputs)."""
        return len(self.policies)

    def predict_rows(self, inputs: NDArray[Any]) -> NDArray[Any]:
        """Row ``i`` of ``inputs`` through tree ``i``; returns action indices."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape != (self.size, self.n_features):
            raise ValueError(
                f"Expected inputs of shape ({self.size}, {self.n_features}), "
                f"got {inputs.shape}"
            )
        nodes = _descend(
            self.feature,
            self.threshold,
            self.left,
            self.right,
            inputs,
            self.roots.copy(),
            self.depth,
        )
        return self.leaf_action[nodes]
