"""Self-healing supervision for the sharded policy-serving fleet.

:class:`~repro.serving.sharded.ShardedPolicyServer` routes rows; this module
keeps the workers it routes to *alive*.  :class:`ShardSupervisor` owns every
per-shard operating-system resource — the worker process, its duplex control
pipe, and its request/response shared-memory rings — plus the three
mechanisms that turn a worker crash into latency instead of an outage:

* **Restart with generation fencing.**  When a worker dies (or stops
  answering), :meth:`ShardSupervisor.restart` reaps the old process
  (``join`` → ``terminate`` → ``kill`` escalation), unlinks its rings, and
  spawns a replacement with fresh rings created under ``generation + 1``.
  Every :class:`~repro.data.shm.ShmBatchHeader` carries its ring's
  generation, and rings refuse headers from any other generation — so a
  reply built against a dead generation's ring layout is *rejected*, never
  mis-read (see ``read_batch`` in :mod:`repro.data.shm`).

* **Registration journal.**  Cross-process ``register`` calls are recorded
  parent-side (:meth:`ShardSupervisor.record_registration`) and replayed
  into every replacement worker, so in-memory registered policies survive
  restarts exactly like store-resolved ones (workers re-open the store
  themselves).

* **Heartbeat monitor.**  A daemon thread sweeps the fleet every
  ``heartbeat_interval`` seconds: dead workers are restarted proactively,
  and workers idle past the interval are pinged with a bounded timeout —
  an unresponsive worker is restarted, not waited on.  The sweep takes the
  supervisor lock non-blockingly, so it never contends with serving traffic
  (which supervises as it goes).

The wire protocol (sequence-stamped messages over the control pipe, replies
collected with :func:`multiprocessing.connection.wait`) also lives here, as
does :func:`shard_worker_main`, the worker entry point — the supervised unit
and its supervisor share one module so the protocol has one home.  Every
blocking receive on these control paths carries a timeout (the worker loop
polls its pipe; the parent bounds every ``wait``/``join``), which reprolint's
REP006 timeout-discipline rule enforces.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.data import PolicyRequestBatch
from repro.data.shm import SharedMemoryColumnarBuffer
from repro.serving.faults import KILL_EXIT_CODE, Fault, FaultState
from repro.serving.server import PolicyServer


class ShardedServingError(RuntimeError):
    """A worker failed (died, timed out, or raised while serving)."""


#: Seconds a worker blocks on its control pipe per poll — the timeout
#: discipline's bound on the worker side of the protocol.
WORKER_POLL_SECONDS = 0.25

#: Seconds between heartbeat-monitor sweeps (and the idle age that triggers
#: an active ping); ``heartbeat_interval=None`` disables the monitor.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Seconds an active heartbeat ping may take before the worker counts as
#: unresponsive and is restarted.
DEFAULT_HEARTBEAT_TIMEOUT = 2.0

#: Seconds each stage of the reap escalation (join → terminate → kill) may
#: take before moving to the next, harsher one.
REAP_GRACE_SECONDS = 5.0

#: Seconds a registration replay into a freshly restarted worker may take.
REPLAY_TIMEOUT_SECONDS = 30.0


def _sigterm_to_exit(signum: int, frame: Any) -> None:  # pragma: no cover - workers
    """Turn SIGTERM into SystemExit so worker ``finally`` blocks run."""
    raise SystemExit(0)


def shard_worker_main(
    shard_index: int,
    store_root: Optional[str],
    cache_size: int,
    arena_spec: Union[str, bool],
    request_ring_name: str,
    response_ring_name: str,
    generation: int,
    connection: Connection,
) -> None:
    """Worker entry point: one ``PolicyServer`` shard behind two shm rings.

    ``arena_spec`` is either the path of the packed arena every shard mmaps
    (the OS shares the compiled pages across the fleet, and a respawned
    worker warms up by *reopening the mapping* — no JSON parse, no
    recompile) or ``False`` for the plain JSON-store path.

    Control traffic runs over one duplex ``Pipe`` connection, polled with a
    bounded timeout (never a bare blocking ``recv``).  Every request carries
    a parent-assigned sequence number that the reply echoes, so a reply that
    arrives after the parent timed out and moved on can never be mistaken
    for the answer to a later request.  Protocol (messages received on
    ``connection``):

    * ``("serve", seq, header)`` — map the request batch out of the request
      ring (zero-copy), serve it, park the response in the response ring,
      reply ``("ok", shard, seq, response_header)``.
    * ``("register", seq, policy_id, policy_dict)`` — pin an in-memory
      policy (control plane; this is the one place a policy payload crosses
      the pipe, by design), reply ``("ok", shard, seq, None)``.
    * ``("inject", seq, fault_dict)`` — arm a :class:`~repro.serving.faults.
      Fault` to fire on a later ``serve`` (chaos testing), reply ``ok``.
    * ``("ping", seq)`` — reply ``("pong", shard, seq, {pid, generation,
      pending_faults, stats})``.
    * ``("stop",)`` or ``None`` — clean shutdown.

    Any exception while serving is reported as
    ``("error", shard, seq, message)`` rather than killing the worker.
    SIGTERM triggers the same cleanup path as ``stop`` (close both ring
    attachments; the parent owns and unlinks the segments).  Armed faults
    fire here, in the real serve path: ``kill`` hard-exits with
    :data:`~repro.serving.faults.KILL_EXIT_CODE` before touching the rings,
    ``hang``/``late`` sleep first, and ``stale_header`` stamps the previous
    ring generation into an otherwise-correct reply.
    """
    signal.signal(signal.SIGTERM, _sigterm_to_exit)
    request_ring = SharedMemoryColumnarBuffer.attach(
        request_ring_name, generation=generation
    )
    response_ring = SharedMemoryColumnarBuffer.attach(
        response_ring_name, generation=generation
    )
    server = PolicyServer(
        store=store_root if store_root is not None else False,
        cache_size=cache_size,
        arena=arena_spec,
    )
    faults = FaultState()
    try:
        while True:
            if not connection.poll(WORKER_POLL_SECONDS):
                continue
            try:
                message = connection.recv()
            except EOFError:  # parent went away
                break
            if message is None or message[0] == "stop":
                break
            kind, seq = message[0], message[1]
            if kind == "serve":
                fault = faults.on_serve()
                if fault is not None and fault.kind == "kill":
                    os._exit(KILL_EXIT_CODE)
                if fault is not None and fault.kind in ("hang", "late"):
                    time.sleep(fault.sleep_seconds)
                try:
                    header = message[2]
                    request = PolicyRequestBatch.from_shm(request_ring, header)
                    response = server.serve_columnar(request)
                    del request  # release the ring views before the next batch
                    out = response.to_shm(response_ring)
                    if fault is not None and fault.kind == "stale_header":
                        out = dataclasses.replace(out, generation=generation - 1)
                    out.assert_zero_copy()
                    connection.send(("ok", shard_index, seq, out))
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    connection.send(
                        ("error", shard_index, seq, f"{type(exc).__name__}: {exc}")
                    )
            elif kind == "register":
                try:
                    from repro.core.tree_policy import TreePolicy

                    _, _, policy_id, payload = message
                    server.register(policy_id, TreePolicy.from_dict(payload))
                    connection.send(("ok", shard_index, seq, None))
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    connection.send(
                        ("error", shard_index, seq, f"{type(exc).__name__}: {exc}")
                    )
            elif kind == "inject":
                try:
                    faults.arm(Fault.from_wire(message[2]))
                    connection.send(("ok", shard_index, seq, None))
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    connection.send(
                        ("error", shard_index, seq, f"{type(exc).__name__}: {exc}")
                    )
            elif kind == "ping":
                connection.send(
                    (
                        "pong",
                        shard_index,
                        seq,
                        {
                            "pid": os.getpid(),
                            "generation": generation,
                            "pending_faults": faults.pending,
                            "stats": server.stats.to_dict(),
                        },
                    )
                )
            else:
                connection.send(("error", shard_index, seq, f"unknown message {kind!r}"))
    except SystemExit:  # pragma: no cover - SIGTERM path
        pass
    finally:
        request_ring.close()
        response_ring.close()
        connection.close()


@dataclass
class ShardState:
    """Parent-side record of one live shard worker and its resources."""

    index: int
    process: BaseProcess
    connection: Connection
    request_ring: SharedMemoryColumnarBuffer
    response_ring: SharedMemoryColumnarBuffer
    generation: int
    sequence: int = 0
    restarts: int = 0
    last_heartbeat: float = field(default_factory=time.monotonic)
    started_at: float = field(default_factory=time.monotonic)
    #: Set once this record's resources are released, making a second
    #: ``_dispose`` (e.g. after a failed respawn left the record in place)
    #: a safe no-op instead of a double ring unlink.
    disposed: bool = False


@dataclass
class CollectResult:
    """The outcome of one reply-collection round across shards.

    ``replies`` holds successful payloads; ``failures`` holds *retryable*
    shard-level problems (death, timeout, unreachable); ``errors`` holds
    worker-reported exceptions (the worker is alive and the failure is
    deterministic, so retrying the same bytes would fail the same way).
    """

    replies: Dict[int, Any] = field(default_factory=dict)
    failures: Dict[int, str] = field(default_factory=dict)
    errors: Dict[int, str] = field(default_factory=dict)


class ShardSupervisor:
    """Owns, watches and restarts the shard worker fleet.

    One instance per :class:`~repro.serving.sharded.ShardedPolicyServer`
    (at ``num_shards > 1``).  All fleet state — processes, pipes, rings,
    generations, the registration journal — lives here behind one reentrant
    :attr:`lock`; the serving layer takes the lock for the duration of each
    batch, and the heartbeat monitor only sweeps when it can take the lock
    without waiting.

    Parameters
    ----------
    context:
        The ``multiprocessing`` context workers are spawned from.
    num_shards:
        Fleet size (fixed for the supervisor's lifetime; routing depends
        on it).
    store_root:
        Policy-store root workers re-open on (re)start, or ``None``.
    cache_size:
        Per-shard compiled-policy LRU size.
    ring_capacity:
        Bytes per request/response ring.
    heartbeat_interval:
        Seconds between monitor sweeps; ``None`` disables the monitor (the
        serve path still heals on contact).
    heartbeat_timeout:
        Seconds an active ping may take before a worker counts as hung.
    arena_spec:
        Packed-arena path every worker mmaps on (re)start, or ``False`` for
        the JSON-store path.  Restart recovery reopens this mapping instead
        of replaying recompiles.
    """

    def __init__(
        self,
        context: BaseContext,
        num_shards: int,
        store_root: Optional[str],
        cache_size: int,
        ring_capacity: int,
        heartbeat_interval: Optional[float] = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        arena_spec: Union[str, bool] = False,
    ):
        self.num_shards = int(num_shards)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.lock = threading.RLock()
        self._context = context
        #: Indirection point so tests can inject spawn failures.
        self._process_factory: Callable[..., BaseProcess] = context.Process
        self._store_root = store_root
        self._cache_size = int(cache_size)
        self._arena_spec = arena_spec
        self._ring_capacity = int(ring_capacity)
        self._shards: Dict[int, ShardState] = {}
        self._journal: Dict[Tuple[int, str], Dict[str, Any]] = {}
        self._restarts_total = 0
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    @property
    def started(self) -> bool:
        """Whether the fleet is currently running."""
        return bool(self._shards) and not self._closed

    @property
    def restarts_total(self) -> int:
        """How many worker restarts the supervisor has performed."""
        return self._restarts_total

    def start(self) -> None:
        """Spawn the whole fleet; on partial failure, tear down and re-raise.

        A failure spawning shard *k* disposes of shards ``0..k-1`` (and any
        rings shard *k* got as far as creating), so a failed start never
        leaks shared memory — :meth:`close` afterwards is a clean no-op.
        """
        with self.lock:
            if self._closed:
                raise ShardedServingError("Supervisor already closed")
            if self._shards:
                return
            try:
                for index in range(self.num_shards):
                    self._shards[index] = self._spawn(index, generation=0, restarts=0)
            except Exception:
                self.close()
                raise
        self._start_monitor()

    def close(self) -> None:
        """Stop the monitor, reap every worker, unlink every ring (idempotent).

        Live workers get a polite ``stop`` message and a join window; a
        worker that ignores it is escalated ``terminate`` → ``kill``, so a
        hung worker can never leak past ``close``.  The parent owns every
        segment, so shared memory is fully reclaimed here even when workers
        were SIGKILLed mid-flight.
        """
        self._stop.set()
        monitor = self._monitor
        if monitor is not None and monitor is not threading.current_thread():
            monitor.join(timeout=REAP_GRACE_SECONDS)
        self._monitor = None
        with self.lock:
            self._closed = True
            for state in self._shards.values():
                self._dispose(state, polite=True)
            self._shards.clear()

    # --------------------------------------------------------------- workers
    def state(self, index: int) -> ShardState:
        """The live state record for one shard (raises when not running)."""
        try:
            return self._shards[index]
        except KeyError:
            raise ShardedServingError(
                f"Shard {index} is not running (fleet not started or closed)"
            ) from None

    def states(self) -> List[ShardState]:
        """Every live shard state, ordered by shard index."""
        return [self._shards[index] for index in sorted(self._shards)]

    def ensure_alive(self, index: int) -> ShardState:
        """The shard's state, restarting its worker first if it died."""
        with self.lock:
            state = self.state(index)
            if not state.process.is_alive():
                return self.restart(
                    index, reason=f"worker exited with code {state.process.exitcode}"
                )
            return state

    def restart(self, index: int, reason: str = "") -> ShardState:
        """Replace one shard's worker, rings and generation; replay registers.

        The old process is reaped (``terminate`` → ``kill`` escalation —
        no polite join, it is presumed dead or hung), its rings are
        unlinked, and a replacement is spawned with fresh rings under
        ``generation + 1``.  Registered policies recorded in the journal are
        replayed into the new worker before it serves anything, so restart
        is invisible to callers beyond latency.
        """
        with self.lock:
            state = self.state(index)
            self._dispose(state, polite=False)
            replacement = self._spawn(
                index, generation=state.generation + 1, restarts=state.restarts + 1
            )
            self._shards[index] = replacement
            self._restarts_total += 1
            self._replay_registrations(replacement)
            return replacement

    def _spawn(self, index: int, generation: int, restarts: int) -> ShardState:
        """Create rings + pipe, fork one worker; leak-free on partial failure."""
        request_ring = SharedMemoryColumnarBuffer.create(
            self._ring_capacity, generation=generation
        )
        try:
            response_ring = SharedMemoryColumnarBuffer.create(
                self._ring_capacity, generation=generation
            )
        except Exception:
            request_ring.close()
            request_ring.unlink()
            raise
        try:
            parent_end, worker_end = self._context.Pipe(duplex=True)
            process = self._process_factory(
                target=shard_worker_main,
                args=(
                    index,
                    self._store_root,
                    self._cache_size,
                    self._arena_spec,
                    request_ring.name,
                    response_ring.name,
                    generation,
                    worker_end,
                ),
                daemon=True,
                name=f"repro-shard-{index}-g{generation}",
            )
            process.start()
            worker_end.close()  # the parent keeps only its end
        except Exception:
            request_ring.close()
            request_ring.unlink()
            response_ring.close()
            response_ring.unlink()
            raise
        return ShardState(
            index=index,
            process=process,
            connection=parent_end,
            request_ring=request_ring,
            response_ring=response_ring,
            generation=generation,
            restarts=restarts,
        )

    def _dispose(self, state: ShardState, polite: bool) -> None:
        """Reap one worker and release its pipe and rings (idempotent)."""
        if state.disposed:
            return
        state.disposed = True
        if polite and state.process.is_alive():
            try:
                state.connection.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        self._reap(state.process, polite=polite)
        try:
            state.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for ring in (state.request_ring, state.response_ring):
            ring.close()
            ring.unlink()

    @staticmethod
    def _reap(process: BaseProcess, polite: bool) -> None:
        """Join with escalation: join → ``terminate()`` → ``kill()``.

        ``polite`` grants an initial join window (the worker was asked to
        stop); an impolite reap — a restart of a dead or hung worker —
        goes straight to SIGTERM.  A worker that survives SIGTERM (stuck in
        uninterruptible state) is SIGKILLed; the final join cannot hang
        because SIGKILL is not maskable.
        """
        if polite:
            process.join(timeout=REAP_GRACE_SECONDS)
        if process.is_alive():
            process.terminate()
            process.join(timeout=REAP_GRACE_SECONDS)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=REAP_GRACE_SECONDS)

    # -------------------------------------------------------- wire protocol
    def send(self, index: int, kind: str, *payload: Any) -> int:
        """Send one sequence-stamped message to a shard; return its sequence.

        The liveness check and the broken-pipe translation live here so
        every control-plane caller reports a dead worker as
        :class:`ShardedServingError` rather than a raw ``BrokenPipeError``.
        """
        state = self.state(index)
        if not state.process.is_alive():
            raise ShardedServingError(
                f"Shard {index} worker (pid {state.process.pid}) is dead"
            )
        state.sequence += 1
        try:
            state.connection.send((kind, state.sequence, *payload))
        except (BrokenPipeError, OSError) as exc:
            raise ShardedServingError(
                f"Shard {index} worker (pid {state.process.pid}) is unreachable: {exc}"
            ) from exc
        return state.sequence

    def collect(self, expected: Dict[int, int], timeout: float) -> CollectResult:
        """Gather the reply to each ``{shard: sequence}`` within ``timeout``.

        Never raises on worker trouble: death and timeouts land in
        ``failures`` (retryable), worker-reported exceptions land in
        ``errors`` (deterministic), successes in ``replies`` — the caller
        owns retry policy.  Replies whose echoed sequence predates the
        expected one are stale — answers to a request the parent already
        timed out on — and are discarded rather than mistaken for the
        current reply.  Every reply, stale or not, refreshes the shard's
        heartbeat (the worker is demonstrably alive).
        """
        result = CollectResult()
        pending = {self.state(index).connection: index for index in expected}
        deadline = time.monotonic() + max(timeout, 0.0)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for index in pending.values():
                    alive = self._shards[index].process.is_alive()
                    result.failures[index] = (
                        f"no reply within {timeout:.2f}s "
                        f"({'alive but unresponsive' if alive else 'worker dead'})"
                    )
                break
            ready = connection_wait(list(pending), timeout=remaining)
            for connection in ready:
                index = pending.pop(connection)
                try:
                    # The bounded connection_wait above returned this
                    # connection as ready, so this recv cannot block.
                    kind, _, seq, payload = connection.recv()  # reprolint: disable=REP006 -- bounded by the connection_wait(timeout=...) that returned it ready
                except (EOFError, OSError):
                    result.failures[index] = "worker died mid-request"
                    continue
                self._shards[index].last_heartbeat = time.monotonic()
                if seq != expected[index]:
                    pending[connection] = index  # stale reply: keep waiting
                elif kind == "error":
                    result.errors[index] = str(payload)
                elif kind not in ("ok", "pong"):
                    result.errors[index] = f"unexpected {kind!r} reply"
                else:
                    result.replies[index] = payload
        return result

    def request(self, index: int, kind: str, *payload: Any, timeout: float) -> Any:
        """One round-trip to one shard; raises on any failure."""
        seq = self.send(index, kind, *payload)
        result = self.collect({index: seq}, timeout=timeout)
        if index in result.errors:
            raise ShardedServingError(f"shard {index}: {result.errors[index]}")
        if index in result.failures:
            raise ShardedServingError(f"shard {index}: {result.failures[index]}")
        return result.replies[index]

    # ----------------------------------------------------------- registration
    def record_registration(
        self, index: int, policy_id: str, payload: Dict[str, Any]
    ) -> None:
        """Journal one cross-process ``register`` for replay after restarts.

        Keyed by ``(shard, policy_id)`` so re-registering a policy replaces
        its journal entry rather than replaying every historical version.
        """
        self._journal[(index, policy_id)] = payload

    def registrations(self) -> List[Tuple[int, str, Dict[str, Any]]]:
        """Every journaled registration as ``(shard, policy_id, payload)``."""
        return [
            (index, policy_id, payload)
            for (index, policy_id), payload in self._journal.items()
        ]

    def _replay_registrations(self, state: ShardState) -> None:
        """Re-register this shard's journaled policies into a fresh worker."""
        for (index, policy_id), payload in self._journal.items():
            if index != state.index:
                continue
            self.request(
                state.index,
                "register",
                policy_id,
                payload,
                timeout=REPLAY_TIMEOUT_SECONDS,
            )

    # -------------------------------------------------------------- heartbeat
    def _start_monitor(self) -> None:
        """Launch the background heartbeat sweep (no-op when disabled)."""
        if self._monitor is not None or not self.heartbeat_interval:
            return
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()

    def _monitor_loop(self) -> None:
        """Sweep the fleet every interval until :meth:`close` stops us."""
        interval = float(self.heartbeat_interval or 0.0)
        while not self._stop.wait(interval):
            if not self.lock.acquire(blocking=False):
                continue  # serving traffic is active; it heals on contact
            try:
                self._sweep()
            except Exception:  # noqa: BLE001 - the monitor must never die
                pass
            finally:
                self.lock.release()

    def _sweep(self) -> None:
        """One heartbeat pass: restart the dead, ping the idle, reap the hung."""
        interval = float(self.heartbeat_interval or 0.0)
        now = time.monotonic()
        for index in sorted(self._shards):
            if self._closed or self._stop.is_set():
                return
            state = self._shards[index]
            if not state.process.is_alive():
                self.restart(index, reason="found dead by heartbeat monitor")
                continue
            if now - state.last_heartbeat < interval:
                continue
            try:
                self.request(index, "ping", timeout=self.heartbeat_timeout)
            except ShardedServingError:
                self.restart(index, reason="unresponsive to heartbeat ping")

    # -------------------------------------------------------------- reporting
    def describe(self) -> Dict[str, Any]:
        """Supervisor state for ``stats()`` and the CLI: restarts, generations.

        Per shard: pid, liveness, ring generation, restart count, seconds
        since the last observed heartbeat and uptime of the current worker.
        """
        now = time.monotonic()
        shards = {
            state.index: {
                "pid": state.process.pid,
                "alive": state.process.is_alive(),
                "generation": state.generation,
                "restarts": state.restarts,
                "last_heartbeat_age_seconds": now - state.last_heartbeat,
                "uptime_seconds": now - state.started_at,
            }
            for state in self.states()
        }
        return {
            "restarts": self._restarts_total,
            "heartbeat_interval": self.heartbeat_interval,
            "registered_policies": len(self._journal),
            "shards": shards,
        }
