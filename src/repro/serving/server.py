"""The policy serving front door.

:class:`PolicyServer` is the embeddable core of a setpoint service: it owns a
:class:`~repro.store.PolicyStore`, keeps an LRU cache of
:class:`~repro.serving.compiled.CompiledTreePolicy` instances keyed by store
entry, and answers request batches that may mix any number of buildings.

The native endpoint is columnar: :meth:`PolicyServer.serve_columnar` takes a
:class:`~repro.data.PolicyRequestBatch` (a building-id column plus a
``(B, F)`` observation matrix) and returns a
:class:`~repro.data.PolicyResponseBatch` — arrays in, arrays out.  Rows are
routed to their policies with one stable ``argsort`` over the integer-coded
id column, each distinct tree runs one vectorised ``predict_batch`` over a
contiguous slice of the sorted observations (zero-copy), and results return
to request order with an inverse-permutation scatter.  No per-request python
objects exist anywhere on this path; the legacy object API
(:meth:`PolicyServer.serve` over :class:`PolicyRequest`) is a thin adapter
on top of it.

Transport (HTTP, MQTT, a BMS bridge) is deliberately out of scope: the
related SCADA repos show that layer is deployment-specific, while the
batching, caching and store-resolution logic below is what every deployment
shares.  ``repro serve`` (and ``repro serve --columnar``) drives this class
with a synthetic request stream to measure the serving ceiling.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.tree_policy import TreePolicy
from repro.data import PolicyRequestBatch, PolicyResponseBatch
from repro.serving.compiled import CompiledTreePolicy
from repro.store import ArenaLike, PolicyArena, PolicyStore, resolve_arena, resolve_store


@dataclass(frozen=True)
class PolicyRequest:
    """One setpoint query: which policy (building) and the current observation."""

    policy_id: str
    observation: Sequence[float]


@dataclass(frozen=True)
class PolicyResponse:
    """The served decision for one request."""

    policy_id: str
    action_index: int
    heating_setpoint: int
    cooling_setpoint: int


@dataclass
class ServerStats:
    """Operational counters (exposed by ``repro serve``)."""

    requests: int = 0
    batches: int = 0
    compile_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    arena_hits: int = 0
    arena_policies: int = 0
    arena_bytes_mapped: int = 0
    per_policy_requests: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The counters as a JSON-ready dict (plus derived ``unique_policies``)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "compile_count": self.compile_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "arena_hits": self.arena_hits,
            "arena_policies": self.arena_policies,
            "arena_bytes_mapped": self.arena_bytes_mapped,
            "unique_policies": len(self.per_policy_requests),
            "per_policy_requests": dict(self.per_policy_requests),
        }


class UnknownPolicyError(KeyError):
    """The requested policy_id is neither registered nor in the store."""


class PolicyServer:
    """Batched, store-backed serving of compiled tree policies.

    Policy resolution is **arena-first**: when the store carries a packed
    arena (:mod:`repro.store.arena`) — auto-detected, or forced/pointed at
    via the ``arena`` argument — a requested policy is answered by a
    zero-copy mmap handle in O(1), no JSON parse and no compile.  The LRU
    only exists for policies *not* in the arena (the JSON path); arena
    handles are thin views into the shared mapping, so caching them is free
    and evicting them would save nothing — eviction of arena-backed entries
    is a structural no-op.

    ``arena`` accepts anything :func:`repro.store.resolve_arena` does:
    ``None`` (auto-detect ``<store>/policies.arena``), ``False`` (disable),
    ``True`` (require), a path, or an open :class:`~repro.store.PolicyArena`
    (shared; the caller keeps ownership).  A corrupt or truncated arena
    never takes the server down — it is skipped with the reason recorded in
    :attr:`arena_error` and serving falls back to the JSON store path.
    """

    def __init__(
        self,
        store: Union[PolicyStore, str, None] = None,
        cache_size: int = 8,
        arena: ArenaLike = None,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.store = resolve_store(store if store is not None else True)
        self.cache_size = cache_size
        self._cache: "OrderedDict[str, CompiledTreePolicy]" = OrderedDict()
        self._registered: Dict[str, CompiledTreePolicy] = {}
        self.stats = ServerStats()
        #: The server closes an arena it opened itself; a shared instance
        #: passed in by the caller is left open.
        self._owns_arena = not isinstance(arena, PolicyArena)
        self.arena, self.arena_error = resolve_arena(arena, self.store)
        if self.arena is not None:
            self.stats.arena_policies = self.arena.policy_count
            self.stats.arena_bytes_mapped = self.arena.nbytes_mapped

    def close(self) -> None:
        """Release the arena mapping if this server opened it (idempotent)."""
        if self.arena is not None and self._owns_arena:
            self.arena.close()

    # ------------------------------------------------------------ resolution
    def register(
        self, policy_id: str, policy: Union[TreePolicy, CompiledTreePolicy]
    ) -> CompiledTreePolicy:
        """Pin an in-memory policy under a name (bypasses the store and LRU)."""
        compiled = (
            policy
            if isinstance(policy, CompiledTreePolicy)
            else CompiledTreePolicy.from_policy(policy)
        )
        self._registered[policy_id] = compiled
        return compiled

    def policy_ids(self) -> List[str]:
        """Every servable policy id: registered, arena-packed, store entries."""
        ids = list(self._registered)
        seen = set(ids)
        if self.arena is not None:
            fresh = [pid for pid in self.arena.policy_ids() if pid not in seen]
            ids.extend(fresh)
            seen.update(fresh)
        if self.store is not None:
            ids.extend(
                entry.key.name
                for entry in self.store.entries()
                if entry.key.name not in seen
            )
        return ids

    def resolve(self, policy_id: str) -> CompiledTreePolicy:
        """The compiled policy for an id — registered, arena, cached, or loaded.

        Resolution order: pinned registrations, then the packed arena (O(1)
        zero-copy mmap handle, counted in ``arena_hits``), then the LRU of
        JSON-compiled policies, then a store load + compile.  Arena handles
        never enter the LRU, so they can never be evicted — restart-warm and
        eviction-proof by construction.
        """
        registered = self._registered.get(policy_id)
        if registered is not None:
            return registered
        if self.arena is not None:
            handle = self.arena.get(policy_id)
            if handle is not None:
                self.stats.arena_hits += 1
                return handle
        cached = self._cache.get(policy_id)
        if cached is not None:
            self._cache.move_to_end(policy_id)
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        if self.store is None:
            raise UnknownPolicyError(policy_id)
        stored = self.store.find(policy_id)
        if stored is None:
            raise UnknownPolicyError(policy_id)
        compiled = CompiledTreePolicy.from_policy(stored.policy)
        self.stats.compile_count += 1
        self._cache[policy_id] = compiled
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return compiled

    # --------------------------------------------------------------- serving
    def serve_columnar(self, batch: PolicyRequestBatch) -> PolicyResponseBatch:
        """Answer one columnar batch of (possibly mixed-building) requests.

        The whole path is array-native: rows are routed to their policies by
        a stable ``argsort`` over the batch's integer policy codes, each
        distinct tree sees one contiguous slice of the sorted observation
        matrix (``predict_batch`` consumes it zero-copy), and the per-policy
        results are scattered back to request order through the inverse
        permutation.  A single-policy batch — the overwhelmingly common case
        for a per-building feed — skips the permutation entirely.
        """
        rows = len(batch)
        if rows == 0:
            return PolicyResponseBatch(
                policy_ids=np.empty(0, dtype=str),
                action_indices=np.empty(0, dtype=np.int64),
                heating_setpoints=np.empty(0, dtype=np.int64),
                cooling_setpoints=np.empty(0, dtype=np.int64),
            )
        codes, unique_ids = batch.grouping()
        observations = batch.observations
        tally = self.stats.per_policy_requests

        if len(unique_ids) == 1:
            policy_id = str(unique_ids[0])
            compiled = self.resolve(policy_id)
            actions = compiled.predict_batch(observations)
            pairs = compiled.action_pairs[actions]
            tally[policy_id] = tally.get(policy_id, 0) + rows
        else:
            order = np.argsort(codes, kind="stable")
            sorted_observations = observations[order]
            # Group boundaries in the sorted batch: one contiguous slice per
            # distinct policy (codes index unique_ids, which is sorted).
            starts = np.searchsorted(codes[order], np.arange(len(unique_ids)))
            stops = np.append(starts[1:], rows)
            sorted_actions = np.empty(rows, dtype=np.int64)
            sorted_pairs = np.empty((rows, 2), dtype=np.int64)
            for group, policy_id in enumerate(unique_ids):
                lo, hi = int(starts[group]), int(stops[group])
                compiled = self.resolve(str(policy_id))
                group_actions = compiled.predict_batch(sorted_observations[lo:hi])
                sorted_actions[lo:hi] = group_actions
                sorted_pairs[lo:hi] = compiled.action_pairs[group_actions]
                tally[str(policy_id)] = tally.get(str(policy_id), 0) + (hi - lo)
            # Inverse-permutation scatter restores request order without any
            # intermediate per-policy python lists.
            actions = np.empty(rows, dtype=np.int64)
            pairs = np.empty((rows, 2), dtype=np.int64)
            actions[order] = sorted_actions
            pairs[order] = sorted_pairs

        self.stats.requests += rows
        self.stats.batches += 1
        return PolicyResponseBatch(
            policy_ids=batch.policy_ids,
            action_indices=actions,
            heating_setpoints=pairs[:, 0],
            cooling_setpoints=pairs[:, 1],
        )

    def serve(self, requests: Sequence[PolicyRequest]) -> List[PolicyResponse]:
        """Answer one batch of legacy per-request objects.

        A thin adapter over :meth:`serve_columnar`: requests are packed into
        one :class:`~repro.data.PolicyRequestBatch`, served on the columnar
        path, and unpacked back into :class:`PolicyResponse` objects in
        request order.  Semantics (grouping, stats, errors) are identical.
        """
        if not requests:
            return []
        return self.serve_columnar(
            PolicyRequestBatch.from_requests(requests)
        ).to_responses()

    def serve_one(self, policy_id: str, observation: Sequence[float]) -> PolicyResponse:
        """Single-request convenience (a batch of one)."""
        return self.serve([PolicyRequest(policy_id=policy_id, observation=observation)])[0]
