"""The policy serving front door.

:class:`PolicyServer` is the embeddable core of a setpoint service: it owns a
:class:`~repro.store.PolicyStore`, keeps an LRU cache of
:class:`~repro.serving.compiled.CompiledTreePolicy` instances keyed by store
entry, and answers batches of :class:`PolicyRequest` objects that may mix any
number of buildings.  Requests are grouped by policy so each distinct tree
runs one vectorised ``predict_batch`` over all of its rows, no matter how the
batch interleaves buildings — the serving analogue of the batched simulation
backend.

Transport (HTTP, MQTT, a BMS bridge) is deliberately out of scope: the
related SCADA repos show that layer is deployment-specific, while the
batching, caching and store-resolution logic below is what every deployment
shares.  ``repro serve`` drives this class with a synthetic request stream to
measure the serving ceiling.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.tree_policy import TreePolicy
from repro.serving.compiled import CompiledTreePolicy
from repro.store import PolicyStore, resolve_store


@dataclass(frozen=True)
class PolicyRequest:
    """One setpoint query: which policy (building) and the current observation."""

    policy_id: str
    observation: Sequence[float]


@dataclass(frozen=True)
class PolicyResponse:
    """The served decision for one request."""

    policy_id: str
    action_index: int
    heating_setpoint: int
    cooling_setpoint: int


@dataclass
class ServerStats:
    """Operational counters (exposed by ``repro serve``)."""

    requests: int = 0
    batches: int = 0
    compile_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    per_policy_requests: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "compile_count": self.compile_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "unique_policies": len(self.per_policy_requests),
            "per_policy_requests": dict(self.per_policy_requests),
        }


class UnknownPolicyError(KeyError):
    """The requested policy_id is neither registered nor in the store."""


class PolicyServer:
    """Batched, store-backed serving of compiled tree policies."""

    def __init__(
        self,
        store: Union[PolicyStore, str, None] = None,
        cache_size: int = 8,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.store = resolve_store(store if store is not None else True)
        self.cache_size = cache_size
        self._cache: "OrderedDict[str, CompiledTreePolicy]" = OrderedDict()
        self._registered: Dict[str, CompiledTreePolicy] = {}
        self.stats = ServerStats()

    # ------------------------------------------------------------ resolution
    def register(
        self, policy_id: str, policy: Union[TreePolicy, CompiledTreePolicy]
    ) -> CompiledTreePolicy:
        """Pin an in-memory policy under a name (bypasses the store and LRU)."""
        compiled = (
            policy
            if isinstance(policy, CompiledTreePolicy)
            else CompiledTreePolicy.from_policy(policy)
        )
        self._registered[policy_id] = compiled
        return compiled

    def policy_ids(self) -> List[str]:
        """Every servable policy id: registered names plus store entries."""
        ids = list(self._registered)
        if self.store is not None:
            ids.extend(entry.key.name for entry in self.store.entries())
        return ids

    def resolve(self, policy_id: str) -> CompiledTreePolicy:
        """The compiled policy for an id — registered, cached, or store-loaded."""
        registered = self._registered.get(policy_id)
        if registered is not None:
            return registered
        cached = self._cache.get(policy_id)
        if cached is not None:
            self._cache.move_to_end(policy_id)
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        if self.store is None:
            raise UnknownPolicyError(policy_id)
        stored = self.store.find(policy_id)
        if stored is None:
            raise UnknownPolicyError(policy_id)
        compiled = CompiledTreePolicy.from_policy(stored.policy)
        self.stats.compile_count += 1
        self._cache[policy_id] = compiled
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return compiled

    # --------------------------------------------------------------- serving
    def serve(self, requests: Sequence[PolicyRequest]) -> List[PolicyResponse]:
        """Answer one batch of (possibly mixed-building) requests.

        Rows are grouped by ``policy_id`` and each group runs a single
        vectorised ``predict_batch``; responses come back in request order.
        """
        if not requests:
            return []
        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for position, request in enumerate(requests):
            groups.setdefault(request.policy_id, []).append(position)

        responses: List[Optional[PolicyResponse]] = [None] * len(requests)
        for policy_id, positions in groups.items():
            compiled = self.resolve(policy_id)
            inputs = np.array(
                [requests[p].observation for p in positions], dtype=np.float64
            )
            actions = compiled.predict_batch(inputs)
            pairs = compiled.action_pairs[actions]
            for row, position in enumerate(positions):
                responses[position] = PolicyResponse(
                    policy_id=policy_id,
                    action_index=int(actions[row]),
                    heating_setpoint=int(pairs[row, 0]),
                    cooling_setpoint=int(pairs[row, 1]),
                )
            tally = self.stats.per_policy_requests
            tally[policy_id] = tally.get(policy_id, 0) + len(positions)
        self.stats.requests += len(requests)
        self.stats.batches += 1
        return responses  # type: ignore[return-value]

    def serve_one(self, policy_id: str, observation: Sequence[float]) -> PolicyResponse:
        """Single-request convenience (a batch of one)."""
        return self.serve([PolicyRequest(policy_id=policy_id, observation=observation)])[0]
