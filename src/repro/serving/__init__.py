"""Compiled policy serving: flattened trees, the batched server, and shards.

The deployment half of the policy store.  ``CompiledTreePolicy`` turns a
verified :class:`~repro.core.tree_policy.TreePolicy` into contiguous numpy
arrays with a vectorised ``predict_batch``; ``PolicyServer`` fronts a
:class:`~repro.store.PolicyStore` with an LRU of compiled policies and
batches concurrent requests across buildings.  The native request API is
columnar (:meth:`PolicyServer.serve_columnar` over
:class:`~repro.data.PolicyRequestBatch`); the per-request object API is a
thin adapter over it.  ``ShardedPolicyServer`` scales the same front door
across N worker processes over the zero-copy shared-memory transport
(:mod:`repro.data.shm`), with a self-healing ``ShardSupervisor``
(:mod:`repro.serving.supervision`) restarting dead or hung workers behind
retry/deadline/degraded-fallback semantics, exercised by the deterministic
fault-injection harness in :mod:`repro.serving.faults`.  Resolution is
arena-first when the store carries a packed arena
(:mod:`repro.store.arena`): policies are answered by zero-copy mmap views
shared across every shard, with restart warm-up reduced to reopening the
mapping.  Driven by ``repro serve`` (``--shards N`` for the sharded fleet,
``--arena`` to require the packed path).
"""

from repro.data import PolicyRequestBatch, PolicyResponseBatch
from repro.serving.compiled import CompiledTreeForest, CompiledTreePolicy
from repro.serving.server import (
    PolicyRequest,
    PolicyResponse,
    PolicyServer,
    ServerStats,
    UnknownPolicyError,
)
from repro.serving.faults import FAULT_KINDS, Fault, FaultPlan, FaultState
from repro.serving.sharded import (
    FleetStats,
    ShardedPolicyServer,
    ShardedServingError,
    shard_for_policy,
    shard_rows,
)
from repro.serving.supervision import ShardState, ShardSupervisor

__all__ = [
    "CompiledTreeForest",
    "CompiledTreePolicy",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultState",
    "FleetStats",
    "PolicyRequest",
    "PolicyRequestBatch",
    "PolicyResponse",
    "PolicyResponseBatch",
    "PolicyServer",
    "ServerStats",
    "ShardState",
    "ShardSupervisor",
    "ShardedPolicyServer",
    "ShardedServingError",
    "UnknownPolicyError",
    "shard_for_policy",
    "shard_rows",
]
