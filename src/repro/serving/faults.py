"""Deterministic fault injection for the sharded serving fleet.

Chaos testing a multi-process server is only useful when the chaos is
*replayable*: a flaky recovery bug must reproduce from a seed, not from
scheduler luck.  This module is the fault model shared by the supervision
layer (:mod:`repro.serving.supervision`), the chaos test suite and the
``repro bench --target serve-faults`` recovery benchmark:

* :class:`Fault` — one injected failure, described entirely by plain
  scalars so it can cross the worker control pipe without violating the
  transport's no-pickle discipline.  Kinds (:data:`FAULT_KINDS`):

  - ``kill`` — the worker hard-exits (``os._exit``) the moment the fault
    fires, before touching its rings: indistinguishable from a SIGKILL
    landing mid-batch.
  - ``hang`` — the worker sleeps ``seconds`` before serving: the parent's
    per-attempt timeout expires and the supervisor must treat the worker
    as unresponsive.
  - ``late`` — a short sleep before a *successful* reply: latency without
    failure, exercising the parent's patience rather than its recovery.
  - ``stale_header`` — the worker serves correctly but stamps its response
    header with the **previous ring generation**, simulating a reply built
    against a dead generation's ring layout; the parent's generation fence
    (:meth:`repro.data.shm.SharedMemoryColumnarBuffer.read_batch`) must
    reject it rather than mis-read the segment.

* :class:`FaultPlan` — a seeded schedule of faults over a batch-stream
  horizon; the same seed always yields the same plan.
* :class:`FaultState` — the worker-side arming/countdown logic: faults are
  armed over the control channel (``inject`` messages) and fire on the
  Nth subsequent ``serve``.

Faults are honored by the worker loop itself (not monkeypatching), so the
recovery paths exercised are exactly the production ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Every fault kind a worker knows how to honor.
FAULT_KINDS: Tuple[str, ...] = ("kill", "hang", "late", "stale_header")

#: Exit code a worker dies with when a ``kill`` fault fires — distinctive,
#: so tests can tell an injected crash from a genuine one.
KILL_EXIT_CODE = 86

#: Default sleep for ``hang`` faults: comfortably past any sane per-attempt
#: timeout, so a hang always surfaces as unresponsiveness.
DEFAULT_HANG_SECONDS = 30.0

#: Default sleep for ``late`` faults: visible latency, but within timeouts.
DEFAULT_LATE_SECONDS = 0.05


@dataclass(frozen=True)
class Fault:
    """One injected failure, wire-safe by construction.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    shard:
        The shard index whose worker should honor the fault.
    after_batches:
        How many ``serve`` messages the worker handles *before* the fault
        fires: ``0`` fires on the very next batch.
    seconds:
        Sleep duration for ``hang``/``late`` kinds (ignored otherwise).
        ``0.0`` selects the kind's default.
    """

    kind: str
    shard: int
    after_batches: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        """Validate the fault description eagerly, before it crosses a pipe."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"Unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.shard < 0:
            raise ValueError("shard must be non-negative")
        if self.after_batches < 0:
            raise ValueError("after_batches must be non-negative")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")

    @property
    def sleep_seconds(self) -> float:
        """The effective sleep for ``hang``/``late`` (defaults applied)."""
        if self.seconds > 0:
            return self.seconds
        if self.kind == "hang":
            return DEFAULT_HANG_SECONDS
        if self.kind == "late":
            return DEFAULT_LATE_SECONDS
        return 0.0

    def to_wire(self) -> Dict[str, object]:
        """The fault as a plain-scalar dict safe for the control pipe."""
        return {
            "kind": self.kind,
            "shard": int(self.shard),
            "after_batches": int(self.after_batches),
            "seconds": float(self.seconds),
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "Fault":
        """Rebuild a fault from its wire dict (validates on construction)."""
        return cls(
            kind=str(payload["kind"]),
            shard=int(payload["shard"]),  # type: ignore[call-overload]
            after_batches=int(payload.get("after_batches", 0)),  # type: ignore[call-overload]
            seconds=float(payload.get("seconds", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults over a batch-stream horizon."""

    faults: Tuple[Fault, ...]

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_shards: int,
        horizon: int,
        kinds: Sequence[str] = FAULT_KINDS,
        count: Optional[int] = None,
    ) -> "FaultPlan":
        """A replayable plan: same ``seed`` → byte-identical schedule.

        Cycles through ``kinds`` (default: all of them) drawing the target
        shard and firing batch from a seeded generator.  ``horizon`` is the
        number of batches the stream will serve; firing points are spread
        over it.  ``count`` defaults to one fault per kind.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        if not kinds:
            raise ValueError("kinds must not be empty")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"Unknown fault kind {kind!r}; known: {FAULT_KINDS}")
        total = len(kinds) if count is None else int(count)
        rng = np.random.default_rng(seed)
        faults: List[Fault] = []
        for position in range(total):
            faults.append(
                Fault(
                    kind=kinds[position % len(kinds)],
                    shard=int(rng.integers(0, num_shards)),
                    after_batches=int(rng.integers(0, horizon)),
                )
            )
        return cls(faults=tuple(faults))

    def for_shard(self, shard: int) -> Tuple[Fault, ...]:
        """The subset of the plan targeting one shard."""
        return tuple(fault for fault in self.faults if fault.shard == shard)


@dataclass
class _ArmedFault:
    """One queued fault plus its remaining serve countdown (worker-side)."""

    fault: Fault
    countdown: int


class FaultState:
    """Worker-side arming and countdown of injected faults.

    The worker arms faults as ``inject`` messages arrive and calls
    :meth:`on_serve` once per ``serve`` message; at most one fault fires per
    batch (the earliest-armed due fault), the rest keep counting down.
    """

    def __init__(self) -> None:
        self._armed: List[_ArmedFault] = []

    def arm(self, fault: Fault) -> None:
        """Queue a fault to fire after ``fault.after_batches`` more serves."""
        self._armed.append(_ArmedFault(fault=fault, countdown=fault.after_batches))

    def on_serve(self) -> Optional[Fault]:
        """Advance every countdown by one batch; return the fault firing now."""
        firing: Optional[Fault] = None
        remaining: List[_ArmedFault] = []
        for entry in self._armed:
            if firing is None and entry.countdown <= 0:
                firing = entry.fault
                continue
            remaining.append(
                _ArmedFault(fault=entry.fault, countdown=max(entry.countdown - 1, 0))
            )
        self._armed = remaining
        return firing

    @property
    def pending(self) -> int:
        """How many armed faults have not fired yet."""
        return len(self._armed)
