"""Multi-process sharded policy serving over the shared-memory transport.

One :class:`~repro.serving.server.PolicyServer` saturates one core: the tree
kernel, the grouping argsort and the response scatter all run on a single
Python thread.  :class:`ShardedPolicyServer` is the multi-core scale-out
layer — it spawns N worker processes, each owning a full ``PolicyServer``
shard, and routes request rows to shards by a **stable hash of the policy
id** so every compiled policy lives in exactly one worker's LRU (no
duplicated compilation, no cross-shard cache churn).

The process boundary is crossed with zero copies of array payloads:
requests and responses travel as
:class:`~repro.data.shm.SharedMemoryColumnarBuffer` writes (one ring per
shard per direction), and only tiny
:class:`~repro.data.shm.ShmBatchHeader` structs — validated by the
transport's no-pickle guard on every send — pass through the per-shard
control pipes.  Workers map numpy views straight onto the request ring,
serve, and park the response in their response ring for the parent to map
back out.

``num_shards=1`` takes an in-process fallback path (a plain ``PolicyServer``
behind the same API), so tests, notebooks and small deployments pay no
process, queue or ring tax until they ask for one.

Lifecycle: :meth:`ShardedPolicyServer.start` spawns the workers (implicit on
first use), :meth:`~ShardedPolicyServer.ping` health-checks them,
:meth:`~ShardedPolicyServer.close` shuts them down and unlinks every ring.
Workers install a SIGTERM handler that closes their shm attachments before
exiting, and rings are owned (created + unlinked) solely by the parent, so a
killed worker can never leak or tear down shared memory.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import zlib
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np
from numpy.typing import NDArray

from repro.data import PolicyRequestBatch, PolicyResponseBatch
from repro.data.shm import DEFAULT_CAPACITY, SharedMemoryColumnarBuffer, ShmTransportError
from repro.serving.server import PolicyRequest, PolicyResponse, PolicyServer
from repro.store import PolicyStore, resolve_store

#: Per-direction, per-shard ring size (bytes) — the transport's default; see
#: :data:`repro.data.shm.DEFAULT_CAPACITY` for the sizing rationale.
DEFAULT_RING_CAPACITY = DEFAULT_CAPACITY

#: Seconds the parent waits on a worker response before declaring it dead.
DEFAULT_TIMEOUT = 60.0


class ShardedServingError(RuntimeError):
    """A worker failed (died, timed out, or raised while serving)."""


def shard_for_policy(policy_id: str, num_shards: int) -> int:
    """The shard that owns ``policy_id`` — stable across processes and runs.

    Uses CRC-32 rather than :func:`hash` (which is salted per interpreter),
    so the same policy always resolves to the same shard: its compiled tree
    is cached in exactly one worker's LRU and re-routing is deterministic.
    """
    return zlib.crc32(str(policy_id).encode("utf-8")) % int(num_shards)


def shard_rows(batch: PolicyRequestBatch, num_shards: int) -> NDArray[Any]:
    """Per-row shard assignment for a request batch, shape ``(B,)``.

    Hashes only the batch's *unique* policy ids (via the cached integer
    grouping codes), then gathers — O(unique policies) hash calls regardless
    of row count.
    """
    codes, unique_ids = batch.grouping()
    shard_by_policy = np.fromiter(
        (shard_for_policy(str(policy_id), num_shards) for policy_id in unique_ids),
        dtype=np.int64,
        count=len(unique_ids),
    )
    return shard_by_policy[codes]


def _sigterm_to_exit(signum: int, frame: Any) -> None:  # pragma: no cover - runs in workers
    """Turn SIGTERM into SystemExit so worker ``finally`` blocks run."""
    raise SystemExit(0)


def _shard_worker_main(
    shard_index: int,
    store_root: Optional[str],
    cache_size: int,
    request_ring_name: str,
    response_ring_name: str,
    connection: Connection,
) -> None:
    """Worker entry point: one ``PolicyServer`` shard behind two shm rings.

    Control traffic runs over one duplex ``Pipe`` connection (lower latency
    than a ``Queue``: no feeder thread, and a dead worker surfaces as EOF on
    the parent side).  Every request carries a parent-assigned sequence
    number that the reply echoes, so a reply that arrives after the parent
    timed out and moved on can never be mistaken for the answer to a later
    request.  Protocol (messages received on ``connection``):

    * ``("serve", seq, header)`` — map the request batch out of the request
      ring (zero-copy), serve it, park the response in the response ring,
      reply ``("ok", shard, seq, response_header)``.
    * ``("register", seq, policy_id, policy_dict)`` — pin an in-memory
      policy (control plane; this is the one place a policy payload crosses
      the pipe, by design), reply ``("ok", shard, seq, None)``.
    * ``("ping", seq)`` — reply ``("pong", shard, seq, {pid, stats})``.
    * ``("stop",)`` or ``None`` — clean shutdown.

    Any exception while serving is reported as
    ``("error", shard, seq, message)`` rather than killing the worker.
    SIGTERM triggers the same cleanup path as ``stop`` (close both ring
    attachments; the parent owns and unlinks the segments).
    """
    signal.signal(signal.SIGTERM, _sigterm_to_exit)
    request_ring = SharedMemoryColumnarBuffer.attach(request_ring_name)
    response_ring = SharedMemoryColumnarBuffer.attach(response_ring_name)
    server = PolicyServer(
        store=store_root if store_root is not None else False,
        cache_size=cache_size,
    )
    try:
        while True:
            try:
                message = connection.recv()
            except EOFError:  # parent went away
                break
            if message is None or message[0] == "stop":
                break
            kind, seq = message[0], message[1]
            if kind == "serve":
                try:
                    header = message[2]
                    request = PolicyRequestBatch.from_shm(request_ring, header)
                    response = server.serve_columnar(request)
                    del request  # release the ring views before the next batch
                    out = response.to_shm(response_ring)
                    out.assert_zero_copy()
                    connection.send(("ok", shard_index, seq, out))
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    connection.send(
                        ("error", shard_index, seq, f"{type(exc).__name__}: {exc}")
                    )
            elif kind == "register":
                try:
                    from repro.core.tree_policy import TreePolicy

                    _, _, policy_id, payload = message
                    server.register(policy_id, TreePolicy.from_dict(payload))
                    connection.send(("ok", shard_index, seq, None))
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    connection.send(
                        ("error", shard_index, seq, f"{type(exc).__name__}: {exc}")
                    )
            elif kind == "ping":
                connection.send(
                    ("pong", shard_index, seq, {"pid": os.getpid(), "stats": server.stats.to_dict()})
                )
            else:
                connection.send(("error", shard_index, seq, f"unknown message {kind!r}"))
    except SystemExit:  # pragma: no cover - SIGTERM path
        pass
    finally:
        request_ring.close()
        response_ring.close()
        connection.close()


class ShardedPolicyServer:
    """N ``PolicyServer`` shards in N processes behind one columnar front door.

    Same request/response contract as
    :meth:`~repro.serving.server.PolicyServer.serve_columnar` — and
    action-exact against it, because every shard *is* a ``PolicyServer`` and
    rows reach their policy's shard unreordered relative to that policy.

    Parameters
    ----------
    store:
        Anything :func:`repro.store.resolve_store` accepts.  Workers open
        their own :class:`~repro.store.PolicyStore` at the resolved root
        (stores are plain directories; concurrent readers are safe).
    num_shards:
        Worker process count.  ``1`` serves in-process (no workers, no
        rings) behind the identical API.
    cache_size:
        Per-shard compiled-policy LRU size.
    ring_capacity:
        Bytes per shared-memory ring (one request + one response ring per
        shard).  Must hold the largest single batch routed to one shard.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where available
        (fast), else ``spawn``.
    timeout:
        Seconds to wait on a worker before declaring it dead.
    """

    def __init__(
        self,
        store: Union[PolicyStore, str, None] = None,
        num_shards: int = 1,
        cache_size: int = 8,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        start_method: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = int(num_shards)
        self.cache_size = int(cache_size)
        self.ring_capacity = int(ring_capacity)
        self.timeout = float(timeout)
        self._store = resolve_store(store if store is not None else True)
        self._local: Optional[PolicyServer] = None
        if self.num_shards == 1:
            # In-process fallback: identical API, zero process/ring tax.
            self._local = PolicyServer(store=self._store, cache_size=cache_size)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self._workers: List[Any] = []
        self._connections: List[Connection] = []
        self._sequences: List[int] = []
        self._request_rings: List[SharedMemoryColumnarBuffer] = []
        self._response_rings: List[SharedMemoryColumnarBuffer] = []
        self._started = False
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    @property
    def started(self) -> bool:
        """Whether worker processes are currently running (always False at N=1)."""
        return self._started

    def start(self) -> "ShardedPolicyServer":
        """Spawn the worker fleet (no-op at ``num_shards=1`` or if running)."""
        if self._local is not None or self._started:
            return self
        if self._closed:
            raise ShardedServingError("Server already closed")
        store_root = str(self._store.root) if self._store is not None else None
        for shard in range(self.num_shards):
            request_ring = SharedMemoryColumnarBuffer.create(self.ring_capacity)
            response_ring = SharedMemoryColumnarBuffer.create(self.ring_capacity)
            parent_end, worker_end = self._context.Pipe(duplex=True)
            worker = self._context.Process(
                target=_shard_worker_main,
                args=(
                    shard,
                    store_root,
                    self.cache_size,
                    request_ring.name,
                    response_ring.name,
                    worker_end,
                ),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            worker.start()
            worker_end.close()  # the parent keeps only its end
            self._workers.append(worker)
            self._connections.append(parent_end)
            self._sequences.append(0)
            self._request_rings.append(request_ring)
            self._response_rings.append(response_ring)
        self._started = True
        return self

    def close(self) -> None:
        """Stop every worker and unlink every ring (idempotent).

        Workers get a ``stop`` message and a join window; stragglers are
        terminated.  The parent owns all segments, so shared memory is fully
        reclaimed here even if a worker was SIGKILLed mid-flight.
        """
        if self._closed:
            return
        self._closed = True
        for connection, worker in zip(self._connections, self._workers):
            if worker.is_alive():
                try:
                    connection.send(("stop",))
                except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                    pass
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5.0)
        for connection in self._connections:
            connection.close()
        for ring in self._request_rings + self._response_rings:
            ring.close()
            ring.unlink()
        self._workers.clear()
        self._request_rings.clear()
        self._response_rings.clear()
        self._connections.clear()
        self._sequences.clear()
        self._started = False

    def __enter__(self) -> "ShardedPolicyServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ---------------------------------------------------------------- health
    def ping(self) -> Dict[int, Dict]:
        """Health-check every shard: ``{shard: {pid, stats}}``.

        Raises :class:`ShardedServingError` when a worker is dead or
        unresponsive within ``timeout``.
        """
        if self._local is not None:
            return {
                0: {
                    "pid": os.getpid(),
                    "in_process": True,
                    "stats": self._local.stats.to_dict(),
                }
            }
        self._ensure_started()
        expected = {
            shard: self._send(shard, "ping") for shard in range(self.num_shards)
        }
        replies = self._collect(expected, expected_kind="pong")
        return {shard: payload for shard, payload in replies.items()}

    def stats(self) -> Dict[str, Any]:
        """Aggregated serving counters across all shards.

        Sums the per-shard :class:`~repro.serving.server.ServerStats`
        counters and merges the per-policy tallies; also reports the
        per-shard breakdown under ``"shards"``.
        """
        per_shard = {
            shard: payload["stats"] for shard, payload in self.ping().items()
        }
        totals: Dict[str, object] = {
            key: sum(stats[key] for stats in per_shard.values())
            for key in (
                "requests",
                "batches",
                "compile_count",
                "cache_hits",
                "cache_misses",
                "evictions",
            )
        }
        merged: Dict[str, int] = {}
        for stats in per_shard.values():
            for policy_id, count in stats["per_policy_requests"].items():
                merged[policy_id] = merged.get(policy_id, 0) + count
        totals["unique_policies"] = len(merged)
        totals["per_policy_requests"] = merged
        totals["shards"] = per_shard
        return totals

    # ----------------------------------------------------------- registration
    def register(self, policy_id: str, policy) -> int:
        """Pin an in-memory :class:`~repro.core.tree_policy.TreePolicy`.

        Control-plane operation: the policy is serialised (``to_dict``) to
        the *one* shard that :func:`shard_for_policy` routes the id to —
        registration is the only message type that carries a policy payload
        through a queue; the serving hot path never does.  Returns the
        owning shard index.
        """
        if self._local is not None:
            self._local.register(policy_id, policy)
            return 0
        self._ensure_started()
        shard = shard_for_policy(policy_id, self.num_shards)
        seq = self._send(shard, "register", policy_id, policy.to_dict())
        self._collect({shard: seq}, expected_kind="ok")
        return shard

    # ---------------------------------------------------------------- serving
    def serve_columnar(self, batch: PolicyRequestBatch) -> PolicyResponseBatch:
        """Answer one columnar batch, fanned out across the shard fleet.

        Rows are partitioned by :func:`shard_rows` with one stable argsort,
        each shard's contiguous slice is parked in that shard's request ring
        (header-only queue message), all shards serve **concurrently**, and
        responses are mapped back out of the response rings and scattered to
        request order through the inverse permutation — the exact mirror of
        the single-process grouping inside ``PolicyServer.serve_columnar``,
        one level up.
        """
        if self._local is not None:
            return self._local.serve_columnar(batch)
        rows = len(batch) if batch is not None else 0
        if rows == 0:
            return PolicyResponseBatch(
                policy_ids=np.empty(0, dtype=str),
                action_indices=np.empty(0, dtype=np.int64),
                heating_setpoints=np.empty(0, dtype=np.int64),
                cooling_setpoints=np.empty(0, dtype=np.int64),
            )
        self._ensure_started()
        row_shards = shard_rows(batch, self.num_shards)
        present = np.unique(row_shards)

        if len(present) == 1:
            shard = int(present[0])
            seq = self._dispatch(shard, batch)
            replies = self._collect({shard: seq}, expected_kind="ok")
            response = self._read_response(shard, replies[shard])
            actions = response.action_indices.copy()
            heating = response.heating_setpoints.copy()
            cooling = response.cooling_setpoints.copy()
            return PolicyResponseBatch(
                policy_ids=batch.policy_ids,
                action_indices=actions,
                heating_setpoints=heating,
                cooling_setpoints=cooling,
            )

        order = np.argsort(row_shards, kind="stable")
        sorted_ids = batch.policy_ids[order]
        sorted_observations = batch.observations[order]
        starts = np.searchsorted(row_shards[order], present)
        stops = np.append(starts[1:], rows)
        bounds = {}
        expected = {}
        for position, shard in enumerate(present):
            lo, hi = int(starts[position]), int(stops[position])
            bounds[int(shard)] = (lo, hi)
            expected[int(shard)] = self._dispatch(
                int(shard),
                PolicyRequestBatch(
                    policy_ids=sorted_ids[lo:hi],
                    observations=sorted_observations[lo:hi],
                ),
            )
        replies = self._collect(expected, expected_kind="ok")

        sorted_actions = np.empty(rows, dtype=np.int64)
        sorted_heating = np.empty(rows, dtype=np.int64)
        sorted_cooling = np.empty(rows, dtype=np.int64)
        for shard, header in replies.items():
            lo, hi = bounds[shard]
            response = self._read_response(shard, header)
            sorted_actions[lo:hi] = response.action_indices
            sorted_heating[lo:hi] = response.heating_setpoints
            sorted_cooling[lo:hi] = response.cooling_setpoints

        actions = np.empty(rows, dtype=np.int64)
        heating = np.empty(rows, dtype=np.int64)
        cooling = np.empty(rows, dtype=np.int64)
        actions[order] = sorted_actions
        heating[order] = sorted_heating
        cooling[order] = sorted_cooling
        return PolicyResponseBatch(
            policy_ids=batch.policy_ids,
            action_indices=actions,
            heating_setpoints=heating,
            cooling_setpoints=cooling,
        )

    def serve(self, requests: Sequence[PolicyRequest]) -> List[PolicyResponse]:
        """Legacy object adapter, mirroring ``PolicyServer.serve``."""
        if not requests:
            return []
        return self.serve_columnar(
            PolicyRequestBatch.from_requests(requests)
        ).to_responses()

    # -------------------------------------------------------------- internals
    def _ensure_started(self) -> None:
        if not self._started:
            self.start()

    def _send(self, shard: int, kind: str, *payload) -> int:
        """Send one sequence-stamped message to a shard; return its sequence.

        The liveness check and the broken-pipe translation live here so every
        control-plane caller (serve, register, ping) reports a dead worker as
        :class:`ShardedServingError` rather than a raw ``BrokenPipeError``.
        """
        worker = self._workers[shard]
        if not worker.is_alive():
            raise ShardedServingError(f"Shard {shard} worker (pid {worker.pid}) is dead")
        self._sequences[shard] += 1
        seq = self._sequences[shard]
        try:
            self._connections[shard].send((kind, seq, *payload))
        except (BrokenPipeError, OSError) as exc:
            raise ShardedServingError(
                f"Shard {shard} worker (pid {worker.pid}) is unreachable: {exc}"
            ) from exc
        return seq

    def _dispatch(self, shard: int, sub_batch: PolicyRequestBatch) -> int:
        """Park one shard's slice in its request ring; send the tiny header."""
        header = sub_batch.to_shm(self._request_rings[shard])
        header.assert_zero_copy()  # the transport's no-pickle guard
        return self._send(shard, "serve", header)

    def _read_response(self, shard: int, header) -> PolicyResponseBatch:
        """Map one shard's response out of its ring (views; copy before reuse)."""
        return PolicyResponseBatch.from_shm(self._response_rings[shard], header)

    def _collect(self, expected: Dict[int, int], expected_kind: str) -> Dict[int, object]:
        """Gather the reply to each ``{shard: sequence}``; raise on errors.

        Replies whose echoed sequence predates the expected one are stale —
        answers to a request the parent already timed out on — and are
        discarded rather than mistaken for the current reply, so a retry
        after a :class:`ShardedServingError` can never serve another batch's
        actions.
        """
        pending = {self._connections[shard]: shard for shard in expected}
        replies: Dict[int, object] = {}
        errors: List[str] = []
        deadline = time.monotonic() + self.timeout
        while pending:
            remaining = deadline - time.monotonic()
            ready = connection_wait(list(pending), timeout=max(remaining, 0.0))
            if not ready:
                dead = [i for i, w in enumerate(self._workers) if not w.is_alive()]
                raise ShardedServingError(
                    f"Timed out waiting for shards {sorted(pending.values())} "
                    f"(dead shards: {dead or 'none'})"
                )
            for connection in ready:
                shard = pending.pop(connection)
                try:
                    kind, _, seq, payload = connection.recv()
                except (EOFError, OSError):
                    errors.append(f"shard {shard}: worker died mid-request")
                    continue
                if seq != expected[shard]:
                    pending[connection] = shard  # stale reply: keep waiting
                elif kind == "error":
                    errors.append(f"shard {shard}: {payload}")
                elif kind != expected_kind:
                    errors.append(f"shard {shard}: unexpected {kind!r} reply")
                else:
                    replies[shard] = payload
        if errors:
            raise ShardedServingError("; ".join(errors))
        return replies
