"""Multi-process sharded policy serving over the shared-memory transport.

One :class:`~repro.serving.server.PolicyServer` saturates one core: the tree
kernel, the grouping argsort and the response scatter all run on a single
Python thread.  :class:`ShardedPolicyServer` is the multi-core scale-out
layer — it spawns N worker processes, each owning a full ``PolicyServer``
shard, and routes request rows to shards by a **stable hash of the policy
id** so every compiled policy lives in exactly one worker's LRU (no
duplicated compilation, no cross-shard cache churn).

The process boundary is crossed with zero copies of array payloads:
requests and responses travel as
:class:`~repro.data.shm.SharedMemoryColumnarBuffer` writes (one ring per
shard per direction), and only tiny
:class:`~repro.data.shm.ShmBatchHeader` structs — validated by the
transport's no-pickle guard on every send — pass through the per-shard
control pipes.  Workers map numpy views straight onto the request ring,
serve, and park the response in their response ring for the parent to map
back out.

The fleet is **self-healing**: a :class:`~repro.serving.supervision.
ShardSupervisor` owns the worker processes, restarts any that die or stop
responding (fresh rings under a bumped generation, registered policies
replayed from a journal), and a heartbeat monitor sweeps the fleet between
requests.  ``serve_columnar`` retries a failed shard's slice with
exponential backoff under a per-request deadline, keeping surviving shards'
results; under ``degraded="fallback"`` an exhausted slice is served by a
parent-side in-process ``PolicyServer`` instead of raising — callers see
latency, not exceptions.  See :mod:`repro.serving.supervision` for the
mechanism and :mod:`repro.serving.faults` for the deterministic chaos
harness that exercises it.

``num_shards=1`` takes an in-process fallback path (a plain ``PolicyServer``
behind the same API), so tests, notebooks and small deployments pay no
process, queue or ring tax until they ask for one.

Lifecycle: :meth:`ShardedPolicyServer.start` spawns the workers (implicit on
first use), :meth:`~ShardedPolicyServer.ping` health-checks them,
:meth:`~ShardedPolicyServer.close` shuts them down — escalating
``join`` → ``terminate`` → ``kill`` for stragglers — and unlinks every
ring.  Rings are owned (created + unlinked) solely by the parent, so a
killed worker can never leak or tear down shared memory, and ``close`` is
idempotent even after a failed partial ``start``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

import numpy as np
from numpy.typing import NDArray

from repro.data import PolicyRequestBatch, PolicyResponseBatch
from repro.data.shm import (
    DEFAULT_CAPACITY,
    ShmBatchHeader,
    ShmTransportError,
)
from repro.serving.faults import Fault
from repro.serving.server import PolicyRequest, PolicyResponse, PolicyServer
from repro.serving.supervision import (
    DEFAULT_HEARTBEAT_INTERVAL,
    ShardedServingError,
    ShardSupervisor,
)
from repro.store import ArenaLike, PolicyArena, PolicyStore, resolve_arena, resolve_store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tree_policy import TreePolicy

#: Per-direction, per-shard ring size (bytes) — the transport's default; see
#: :data:`repro.data.shm.DEFAULT_CAPACITY` for the sizing rationale.
DEFAULT_RING_CAPACITY = DEFAULT_CAPACITY

#: Seconds the parent waits on a worker response (per attempt) before
#: declaring it unresponsive.
DEFAULT_TIMEOUT = 60.0

#: How many times a failed shard slice is re-dispatched (after restarting
#: the shard) before the request degrades or fails.
DEFAULT_RETRIES = 2

#: Base of the exponential backoff between retry attempts, in seconds.
DEFAULT_BACKOFF = 0.05

__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_TIMEOUT",
    "FleetStats",
    "ShardedPolicyServer",
    "ShardedServingError",
    "shard_for_policy",
    "shard_rows",
]


def shard_for_policy(policy_id: str, num_shards: int) -> int:
    """The shard that owns ``policy_id`` — stable across processes and runs.

    Uses CRC-32 rather than :func:`hash` (which is salted per interpreter),
    so the same policy always resolves to the same shard: its compiled tree
    is cached in exactly one worker's LRU and re-routing is deterministic.
    """
    return zlib.crc32(str(policy_id).encode("utf-8")) % int(num_shards)


def shard_rows(batch: PolicyRequestBatch, num_shards: int) -> NDArray[Any]:
    """Per-row shard assignment for a request batch, shape ``(B,)``.

    Hashes only the batch's *unique* policy ids (via the cached integer
    grouping codes), then gathers — O(unique policies) hash calls regardless
    of row count.
    """
    codes, unique_ids = batch.grouping()
    shard_by_policy = np.fromiter(
        (shard_for_policy(str(policy_id), num_shards) for policy_id in unique_ids),
        dtype=np.int64,
        count=len(unique_ids),
    )
    return shard_by_policy[codes]


@dataclass
class FleetStats:
    """Parent-side counters for the fleet's fault-handling behavior.

    Distinct from the per-worker serving counters: these count what the
    *supervision* layer did — retries burned, rows served by the degraded
    fallback, and rows lost to exhausted retry budgets (the chaos suite
    asserts this stays zero).
    """

    requests: int = 0
    batches: int = 0
    retries: int = 0
    fallback_rows: int = 0
    degraded_batches: int = 0
    lost_requests: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain dict for ``stats()`` and the CLI."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "retries": self.retries,
            "fallback_rows": self.fallback_rows,
            "degraded_batches": self.degraded_batches,
            "lost_requests": self.lost_requests,
        }


@dataclass
class _PendingSlice:
    """One shard's contiguous slice of the sorted batch, awaiting a reply."""

    lo: int
    hi: int

    @property
    def rows(self) -> int:
        return self.hi - self.lo


@dataclass
class _SortedBatch:
    """A request batch pre-sorted into contiguous per-shard slices."""

    ids: NDArray[Any]
    observations: NDArray[Any]
    order: Optional[NDArray[Any]]
    actions: NDArray[Any]
    heating: NDArray[Any]
    cooling: NDArray[Any]
    pending: Dict[int, _PendingSlice] = field(default_factory=dict)

    def slice_request(self, entry: _PendingSlice) -> PolicyRequestBatch:
        """The sub-batch for one shard slice (views into the sorted arrays)."""
        return PolicyRequestBatch(
            policy_ids=self.ids[entry.lo : entry.hi],
            observations=self.observations[entry.lo : entry.hi],
        )

    def fill(self, entry: _PendingSlice, response: PolicyResponseBatch) -> None:
        """Copy one slice's served columns into the sorted output arrays."""
        self.actions[entry.lo : entry.hi] = response.action_indices
        self.heating[entry.lo : entry.hi] = response.heating_setpoints
        self.cooling[entry.lo : entry.hi] = response.cooling_setpoints


class ShardedPolicyServer:
    """N ``PolicyServer`` shards in N processes behind one columnar front door.

    Same request/response contract as
    :meth:`~repro.serving.server.PolicyServer.serve_columnar` — and
    action-exact against it, because every shard *is* a ``PolicyServer`` and
    rows reach their policy's shard unreordered relative to that policy.
    Worker death or unresponsiveness is handled inside ``serve_columnar``
    (restart + bounded retry, optionally a degraded in-process fallback)
    rather than surfaced to the caller.

    Parameters
    ----------
    store:
        Anything :func:`repro.store.resolve_store` accepts.  Workers open
        their own :class:`~repro.store.PolicyStore` at the resolved root
        (stores are plain directories; concurrent readers are safe).
    num_shards:
        Worker process count.  ``1`` serves in-process (no workers, no
        rings) behind the identical API.
    cache_size:
        Per-shard compiled-policy LRU size.
    ring_capacity:
        Bytes per shared-memory ring (one request + one response ring per
        shard).  Must hold the largest single batch routed to one shard.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where available
        (fast), else ``spawn``.
    timeout:
        Seconds to wait on a worker reply **per attempt** before treating
        the shard as unresponsive (and restarting it).
    retries:
        How many re-dispatch attempts a failed slice gets after the first;
        each retry restarts the failed shard and backs off exponentially.
    backoff:
        Base seconds of the exponential backoff between retries (capped at
        one second per sleep).
    request_deadline:
        Optional wall-clock budget in seconds for one ``serve_columnar``
        call across all attempts; ``None`` means attempts are bounded only
        by ``retries`` × ``timeout``.
    degraded:
        What to do when a slice exhausts its retry budget: ``"fail"`` raises
        :class:`ShardedServingError`; ``"fallback"`` serves the slice with a
        parent-side in-process ``PolicyServer`` (store-resolved + journaled
        registrations), trading latency for availability.
    heartbeat_interval:
        Seconds between background heartbeat sweeps (dead workers restarted
        proactively, idle workers pinged); ``None`` disables the monitor —
        the serve path still heals on contact.
    arena:
        Anything :func:`repro.store.resolve_arena` accepts.  The parent
        resolves it once (validating up front), then every worker mmaps the
        *same* arena file — the OS shares the compiled pages across shard
        processes, and a restarted worker reopens the arena instead of
        replaying JSON recompiles.  A corrupt arena falls back to the JSON
        path fleet-wide (reason in :attr:`arena_error`).
    """

    def __init__(
        self,
        store: Union[PolicyStore, str, None] = None,
        num_shards: int = 1,
        cache_size: int = 8,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        start_method: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        request_deadline: Optional[float] = None,
        degraded: str = "fail",
        heartbeat_interval: Optional[float] = DEFAULT_HEARTBEAT_INTERVAL,
        arena: ArenaLike = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if degraded not in ("fail", "fallback"):
            raise ValueError(
                f"degraded must be 'fail' or 'fallback', got {degraded!r}"
            )
        self.num_shards = int(num_shards)
        self.cache_size = int(cache_size)
        self.ring_capacity = int(ring_capacity)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.request_deadline = (
            float(request_deadline) if request_deadline is not None else None
        )
        self.degraded = degraded
        self._store = resolve_store(store if store is not None else True)
        self._local: Optional[PolicyServer] = None
        self._supervisor: Optional[ShardSupervisor] = None
        self._fallback_server: Optional[PolicyServer] = None
        self._fleet_stats = FleetStats()
        self._closed = False
        if self.num_shards == 1:
            # In-process fallback: identical API, zero process/ring tax.
            self._local = PolicyServer(
                store=self._store, cache_size=cache_size, arena=arena
            )
            self._arena = self._local.arena
            self.arena_error = self._local.arena_error
            self._owns_arena = False  # the local server owns (and closes) it
            return
        # Resolve the arena once parent-side: configuration errors (e.g.
        # arena=True with no packed file) surface here, and the resolved
        # *path* is what workers receive — each worker mmaps the same file,
        # so the compiled pages are shared across every shard process.
        self._owns_arena = not isinstance(arena, PolicyArena)
        self._arena, self.arena_error = resolve_arena(arena, self._store)
        arena_spec: Union[str, bool] = (
            str(self._arena.path) if self._arena is not None else False
        )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._supervisor = ShardSupervisor(
            context=multiprocessing.get_context(start_method),
            num_shards=self.num_shards,
            store_root=str(self._store.root) if self._store is not None else None,
            cache_size=self.cache_size,
            ring_capacity=self.ring_capacity,
            heartbeat_interval=heartbeat_interval,
            arena_spec=arena_spec,
        )

    # ------------------------------------------------------------- lifecycle
    @property
    def started(self) -> bool:
        """Whether worker processes are currently running (always False at N=1)."""
        return self._supervisor is not None and self._supervisor.started

    @property
    def supervisor(self) -> Optional[ShardSupervisor]:
        """The fleet supervisor (``None`` on the in-process path)."""
        return self._supervisor

    @property
    def fleet_stats(self) -> FleetStats:
        """Parent-side fault-handling counters (see :class:`FleetStats`)."""
        return self._fleet_stats

    @property
    def arena(self) -> Optional[PolicyArena]:
        """The resolved packed arena (parent-side handle), or ``None``."""
        return self._arena

    def start(self) -> "ShardedPolicyServer":
        """Spawn the worker fleet (no-op at ``num_shards=1`` or if running).

        A failure mid-spawn tears down whatever partial fleet exists (the
        supervisor unlinks every ring it created) before re-raising, so a
        failed ``start`` never leaks shared memory and a subsequent
        :meth:`close` is a clean no-op.
        """
        if self._local is not None:
            return self
        if self._closed:
            raise ShardedServingError("Server already closed")
        assert self._supervisor is not None
        try:
            self._supervisor.start()
        except ShardedServingError:
            self._closed = True
            raise
        except Exception as exc:
            self._closed = True
            raise ShardedServingError(f"Failed to start shard fleet: {exc}") from exc
        return self

    def close(self) -> None:
        """Stop every worker and unlink every ring (idempotent).

        Live workers get a ``stop`` message and a join window; a worker
        that ignores it is escalated ``terminate()`` → ``kill()``, so a
        hung worker can never outlive ``close``.  The parent owns all
        segments, so shared memory is fully reclaimed here even if a worker
        was SIGKILLed mid-flight or ``start`` failed partway.
        """
        if self._closed:
            self._dispose_supervisor()
            return
        self._closed = True
        self._dispose_supervisor()
        if self._local is not None:
            self._local.close()
        if self._fallback_server is not None:
            self._fallback_server.close()
        if self._arena is not None and self._owns_arena:
            self._arena.close()

    def _dispose_supervisor(self) -> None:
        if self._supervisor is not None:
            self._supervisor.close()

    def __enter__(self) -> "ShardedPolicyServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ---------------------------------------------------------------- health
    def ping(self) -> Dict[int, Dict[str, Any]]:
        """Health-check every shard: ``{shard: {pid, generation, stats}}``.

        A dead worker is restarted and the replacement pinged; a shard that
        still cannot answer reports ``{"error": message}`` instead of
        raising, so one bad shard never hides the health of the rest.
        """
        if self._local is not None:
            return {
                0: {
                    "pid": os.getpid(),
                    "in_process": True,
                    "stats": self._local.stats.to_dict(),
                }
            }
        self._ensure_started()
        assert self._supervisor is not None
        result: Dict[int, Dict[str, Any]] = {}
        with self._supervisor.lock:
            for shard in range(self.num_shards):
                try:
                    self._supervisor.ensure_alive(shard)
                    payload = self._supervisor.request(
                        shard, "ping", timeout=self.timeout
                    )
                    result[shard] = dict(payload)
                except ShardedServingError as exc:
                    result[shard] = {"error": str(exc)}
        return result

    def stats(self) -> Dict[str, Any]:
        """Aggregated serving counters across all shards.

        Sums the per-shard :class:`~repro.serving.server.ServerStats`
        counters and merges the per-policy tallies; also reports the
        per-shard breakdown under ``"shards"``, the parent-side
        fault-handling counters under ``"fleet"`` and — on the multi-shard
        path — supervisor state (restarts, generations, heartbeat ages)
        under ``"supervisor"``.
        """
        pings = self.ping()
        per_shard = {
            shard: payload["stats"]
            for shard, payload in pings.items()
            if "stats" in payload
        }
        totals: Dict[str, Any] = {
            key: sum(stats[key] for stats in per_shard.values())
            for key in (
                "requests",
                "batches",
                "compile_count",
                "cache_hits",
                "cache_misses",
                "evictions",
                "arena_hits",
            )
        }
        # Every shard maps the *same* arena file (shared pages), so policy
        # count and mapped bytes aggregate as max, not sum.
        for key in ("arena_policies", "arena_bytes_mapped"):
            totals[key] = max(
                (int(stats.get(key, 0)) for stats in per_shard.values()), default=0
            )
        merged: Dict[str, int] = {}
        for stats in per_shard.values():
            for policy_id, count in stats["per_policy_requests"].items():
                merged[policy_id] = merged.get(policy_id, 0) + count
        totals["unique_policies"] = len(merged)
        totals["per_policy_requests"] = merged
        totals["shards"] = per_shard
        totals["fleet"] = self._fleet_stats.to_dict()
        if self._supervisor is not None:
            with self._supervisor.lock:
                totals["supervisor"] = self._supervisor.describe()
        return totals

    # ----------------------------------------------------------- registration
    def register(self, policy_id: str, policy: "TreePolicy") -> int:
        """Pin an in-memory :class:`~repro.core.tree_policy.TreePolicy`.

        Control-plane operation: the policy is serialised (``to_dict``) to
        the *one* shard that :func:`shard_for_policy` routes the id to —
        registration is the only message type that carries a policy payload
        through the pipe; the serving hot path never does.  The payload is
        also journaled parent-side, so a restarted worker gets every
        registration replayed before it serves (and the degraded fallback
        server, if one exists, registers it too).  Returns the owning shard
        index.
        """
        if self._local is not None:
            self._local.register(policy_id, policy)
            return 0
        self._ensure_started()
        assert self._supervisor is not None
        with self._supervisor.lock:
            shard = shard_for_policy(policy_id, self.num_shards)
            payload = policy.to_dict()
            # Journal first: even if this send fails and the worker is
            # restarted, the replay delivers the registration.
            self._supervisor.record_registration(shard, policy_id, payload)
            self._supervisor.ensure_alive(shard)
            self._supervisor.request(
                shard, "register", policy_id, payload, timeout=self.timeout
            )
            if self._fallback_server is not None:
                self._fallback_server.register(policy_id, policy)
            return shard

    # -------------------------------------------------------- fault injection
    def inject_fault(self, fault: Fault) -> None:
        """Arm one :class:`~repro.serving.faults.Fault` in its target worker.

        Chaos-testing control plane: the fault crosses the control pipe as
        plain scalars and fires inside the worker's real serve path (see
        :mod:`repro.serving.faults`).  Requires a multi-shard fleet.
        """
        if self._local is not None:
            raise ShardedServingError(
                "Fault injection requires a multi-shard fleet (num_shards > 1)"
            )
        self._ensure_started()
        assert self._supervisor is not None
        with self._supervisor.lock:
            self._supervisor.ensure_alive(fault.shard)
            self._supervisor.request(
                fault.shard, "inject", fault.to_wire(), timeout=self.timeout
            )

    # ---------------------------------------------------------------- serving
    def serve_columnar(self, batch: PolicyRequestBatch) -> PolicyResponseBatch:
        """Answer one columnar batch, fanned out across the shard fleet.

        Rows are partitioned by :func:`shard_rows` with one stable argsort,
        each shard's contiguous slice is parked in that shard's request ring
        (header-only pipe message), all shards serve **concurrently**, and
        responses are mapped back out of the response rings and scattered to
        request order through the inverse permutation — the exact mirror of
        the single-process grouping inside ``PolicyServer.serve_columnar``,
        one level up.

        Fault handling: a shard that dies, times out, or replies under a
        stale ring generation is restarted and its slice re-dispatched, with
        exponential backoff, up to ``retries`` times within
        ``request_deadline``; surviving shards' results are kept throughout.
        When the budget is exhausted, ``degraded="fallback"`` serves the
        remaining slices in-process and ``degraded="fail"`` raises
        :class:`ShardedServingError`.  Worker-*reported* exceptions (e.g. an
        unknown policy id) are deterministic and raise immediately — the
        worker is healthy; the request is not.
        """
        if self._local is not None:
            return self._local.serve_columnar(batch)
        rows = len(batch) if batch is not None else 0
        if rows == 0:
            return PolicyResponseBatch(
                policy_ids=np.empty(0, dtype=str),
                action_indices=np.empty(0, dtype=np.int64),
                heating_setpoints=np.empty(0, dtype=np.int64),
                cooling_setpoints=np.empty(0, dtype=np.int64),
            )
        self._ensure_started()
        assert self._supervisor is not None
        with self._supervisor.lock:
            return self._serve_fleet(batch, rows)

    def serve(self, requests: Sequence[PolicyRequest]) -> List[PolicyResponse]:
        """Legacy object adapter, mirroring ``PolicyServer.serve``."""
        if not requests:
            return []
        return self.serve_columnar(
            PolicyRequestBatch.from_requests(requests)
        ).to_responses()

    # -------------------------------------------------------------- internals
    def _ensure_started(self) -> None:
        if self._local is None and not self.started:
            self.start()

    def _partition(self, batch: PolicyRequestBatch, rows: int) -> _SortedBatch:
        """Sort the batch into contiguous per-shard slices (no copy at 1)."""
        row_shards = shard_rows(batch, self.num_shards)
        present = np.unique(row_shards)
        sorted_batch = _SortedBatch(
            ids=batch.policy_ids,
            observations=batch.observations,
            order=None,
            actions=np.empty(rows, dtype=np.int64),
            heating=np.empty(rows, dtype=np.int64),
            cooling=np.empty(rows, dtype=np.int64),
        )
        if len(present) == 1:
            sorted_batch.pending[int(present[0])] = _PendingSlice(lo=0, hi=rows)
            return sorted_batch
        order = np.argsort(row_shards, kind="stable")
        sorted_batch.order = order
        sorted_batch.ids = batch.policy_ids[order]
        sorted_batch.observations = batch.observations[order]
        starts = np.searchsorted(row_shards[order], present)
        stops = np.append(starts[1:], rows)
        for position, shard in enumerate(present):
            sorted_batch.pending[int(shard)] = _PendingSlice(
                lo=int(starts[position]), hi=int(stops[position])
            )
        return sorted_batch

    def _serve_fleet(self, batch: PolicyRequestBatch, rows: int) -> PolicyResponseBatch:
        """The multi-shard serve path: dispatch, retry, degrade, scatter."""
        assert self._supervisor is not None
        sorted_batch = self._partition(batch, rows)
        deadline = time.monotonic() + (
            self.request_deadline if self.request_deadline is not None else math.inf
        )
        attempt = 0
        while sorted_batch.pending:
            failures = self._attempt(sorted_batch, deadline)
            if not failures:
                break
            exhausted = attempt >= self.retries or time.monotonic() >= deadline
            # Restart failed shards either way: retries need a live worker,
            # and even a failing request should leave the fleet healed for
            # the next one.  A restart that itself fails is retried by the
            # next attempt (or by the heartbeat monitor).
            for shard, reason in failures.items():
                try:
                    self._supervisor.restart(shard, reason=reason)
                except Exception:  # noqa: BLE001 - healing is best-effort here
                    pass
            if not exhausted:
                attempt += 1
                self._fleet_stats.retries += 1
                time.sleep(min(self.backoff * (2 ** (attempt - 1)), 1.0))
                continue
            if self.degraded == "fallback":
                self._serve_degraded(sorted_batch)
                break
            lost = sum(entry.rows for entry in sorted_batch.pending.values())
            self._fleet_stats.lost_requests += lost
            raise ShardedServingError(
                "Retry budget exhausted for shards "
                f"{sorted(sorted_batch.pending)} after {attempt + 1} attempts: "
                + "; ".join(
                    f"shard {shard}: {reason}"
                    for shard, reason in sorted(failures.items())
                )
            )
        self._fleet_stats.requests += rows
        self._fleet_stats.batches += 1
        return self._scatter(batch, rows, sorted_batch)

    def _attempt(
        self, sorted_batch: _SortedBatch, deadline: float
    ) -> Dict[int, str]:
        """One dispatch + collect round over the still-pending slices.

        Fills served slices into the sorted output arrays and pops them from
        ``pending``; returns ``{shard: reason}`` for *retryable* failures
        (death, timeout, stale-generation replies).  Worker-reported
        exceptions other than transport errors raise immediately.
        """
        assert self._supervisor is not None
        failures: Dict[int, str] = {}
        expected: Dict[int, int] = {}
        for shard, entry in sorted_batch.pending.items():
            try:
                self._supervisor.ensure_alive(shard)
                expected[shard] = self._dispatch(
                    shard, sorted_batch.slice_request(entry)
                )
            except ShardedServingError as exc:
                failures[shard] = str(exc)
        if expected:
            wait = min(self.timeout, max(deadline - time.monotonic(), 0.0))
            result = self._supervisor.collect(expected, timeout=wait)
            hard = {
                shard: message
                for shard, message in result.errors.items()
                if not message.startswith("ShmTransportError")
            }
            if hard:
                raise ShardedServingError(
                    "; ".join(
                        f"shard {shard}: {message}"
                        for shard, message in sorted(hard.items())
                    )
                )
            for shard, message in result.errors.items():
                failures[shard] = message  # transport trouble: retryable
            failures.update(result.failures)
            for shard, header in result.replies.items():
                entry = sorted_batch.pending[shard]
                try:
                    sorted_batch.fill(entry, self._read_response(shard, header))
                except (ShmTransportError, ValueError) as exc:
                    # e.g. the generation fence rejecting a stale header.
                    failures[shard] = f"{type(exc).__name__}: {exc}"
                    continue
                del sorted_batch.pending[shard]
        return failures

    def _serve_degraded(self, sorted_batch: _SortedBatch) -> None:
        """Serve every still-pending slice with the in-process fallback."""
        server = self._fallback()
        for shard in sorted(sorted_batch.pending):
            entry = sorted_batch.pending.pop(shard)
            sorted_batch.fill(
                entry, server.serve_columnar(sorted_batch.slice_request(entry))
            )
            self._fleet_stats.fallback_rows += entry.rows
        self._fleet_stats.degraded_batches += 1

    def _fallback(self) -> PolicyServer:
        """The lazily-built parent-side degraded server (journal replayed)."""
        if self._fallback_server is None:
            from repro.core.tree_policy import TreePolicy

            assert self._supervisor is not None
            server = PolicyServer(
                store=self._store if self._store is not None else False,
                cache_size=self.cache_size,
                arena=self._arena if self._arena is not None else False,
            )
            for _, policy_id, payload in self._supervisor.registrations():
                server.register(policy_id, TreePolicy.from_dict(payload))
            self._fallback_server = server
        return self._fallback_server

    def _scatter(
        self, batch: PolicyRequestBatch, rows: int, sorted_batch: _SortedBatch
    ) -> PolicyResponseBatch:
        """Un-sort the served columns back to request order."""
        if sorted_batch.order is None:
            actions: NDArray[Any] = sorted_batch.actions
            heating: NDArray[Any] = sorted_batch.heating
            cooling: NDArray[Any] = sorted_batch.cooling
        else:
            actions = np.empty(rows, dtype=np.int64)
            heating = np.empty(rows, dtype=np.int64)
            cooling = np.empty(rows, dtype=np.int64)
            actions[sorted_batch.order] = sorted_batch.actions
            heating[sorted_batch.order] = sorted_batch.heating
            cooling[sorted_batch.order] = sorted_batch.cooling
        return PolicyResponseBatch(
            policy_ids=batch.policy_ids,
            action_indices=actions,
            heating_setpoints=heating,
            cooling_setpoints=cooling,
        )

    def _dispatch(self, shard: int, sub_batch: PolicyRequestBatch) -> int:
        """Park one shard's slice in its request ring; send the tiny header."""
        assert self._supervisor is not None
        state = self._supervisor.state(shard)
        header = sub_batch.to_shm(state.request_ring)
        header.assert_zero_copy()  # the transport's no-pickle guard
        return self._supervisor.send(shard, "serve", header)

    def _read_response(self, shard: int, header: ShmBatchHeader) -> PolicyResponseBatch:
        """Map one shard's response out of its ring (views; copy before reuse).

        The ring's generation fence rejects headers written under a dead
        generation (:class:`~repro.data.shm.ShmTransportError`), which the
        caller treats as a retryable failure.
        """
        assert self._supervisor is not None
        state = self._supervisor.state(shard)
        return PolicyResponseBatch.from_shm(state.response_ring, header)
