"""JSON-based serialization helpers.

Decision trees, extracted policies and experiment results are persisted as JSON
so they can be inspected by hand — interpretability is a theme of the paper,
and a policy file a building manager can open in a text editor is part of that.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into plain JSON-serialisable values."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    if hasattr(obj, "__dict__"):
        return to_jsonable(vars(obj))
    raise TypeError(f"Object of type {type(obj)!r} is not JSON serialisable")


def save_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialise ``obj`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(to_jsonable(obj), fh, indent=indent, sort_keys=False)
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON from ``path``."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


def canonical_json(obj: Any) -> str:
    """A canonical (sorted-key, minimal-separator) JSON rendering of ``obj``.

    Two structurally equal objects always produce byte-identical strings, which
    is what makes content hashes of policy artifacts deterministic.
    """
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def content_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def atomic_save_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Like :func:`save_json` but atomic: readers never see a partial file.

    The payload is written to a temporary sibling and renamed into place, so a
    concurrent :class:`~repro.store.PolicyStore` reader either sees the old
    artifact or the complete new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(to_jsonable(obj), fh, indent=indent, sort_keys=False)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
