"""JSON-based serialization helpers.

Decision trees, extracted policies and experiment results are persisted as JSON
so they can be inspected by hand — interpretability is a theme of the paper,
and a policy file a building manager can open in a text editor is part of that.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into plain JSON-serialisable values."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    if hasattr(obj, "__dict__"):
        return to_jsonable(vars(obj))
    raise TypeError(f"Object of type {type(obj)!r} is not JSON serialisable")


def save_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialise ``obj`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(to_jsonable(obj), fh, indent=indent, sort_keys=False)
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON from ``path``."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
