"""Plain-text table formatting used by the benchmark harness.

The benchmarks print the same rows the paper reports (Table 2, Table 3, the
series behind each figure); this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_float(value: Any, digits: int = 3) -> str:
    """Format a number compactly; pass strings through unchanged."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.1f}"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
    digits: int = 3,
) -> str:
    """Render an ASCII table with aligned columns."""
    str_rows: List[List[str]] = [[format_float(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("Row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(render_row(row))
    return "\n".join(lines)
