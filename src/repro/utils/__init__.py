"""Shared utilities: RNG handling, configuration, serialization and table formatting.

These helpers are deliberately dependency-light (NumPy only) so every other
subpackage can rely on them without import cycles.
"""

from repro.utils.config import (
    SimulationConfig,
    RewardConfig,
    ActionSpaceConfig,
    ComfortConfig,
    ExperimentConfig,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.serialization import to_jsonable, save_json, load_json
from repro.utils.tables import format_table, format_float

__all__ = [
    "SimulationConfig",
    "RewardConfig",
    "ActionSpaceConfig",
    "ComfortConfig",
    "ExperimentConfig",
    "ensure_rng",
    "spawn_rngs",
    "to_jsonable",
    "save_json",
    "load_json",
    "format_table",
    "format_float",
]
