"""Configuration dataclasses shared across the library.

The values mirror the experimental setup of the paper (Section 4.1):

* 15-minute control timestep,
* January simulation period,
* heating setpoints that are integers in ``[15, 23] °C`` and cooling setpoints
  in ``[21, 30] °C``,
* comfort ranges ``[20, 23.5] °C`` (winter) and ``[23, 26] °C`` (summer),
* reward weight ``w_e = 1e-2`` when occupied and ``1.0`` when unoccupied.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, List, Tuple

MINUTES_PER_STEP = 15
STEPS_PER_HOUR = 60 // MINUTES_PER_STEP
STEPS_PER_DAY = 24 * STEPS_PER_HOUR


@dataclass(frozen=True)
class ComfortConfig:
    """Comfort (safety) range for the controlled zone temperature."""

    lower: float = 20.0
    upper: float = 23.5

    def __post_init__(self) -> None:
        if self.lower >= self.upper:
            raise ValueError(
                f"Comfort lower bound {self.lower} must be below upper bound {self.upper}"
            )

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, temperature: float) -> bool:
        return self.lower <= temperature <= self.upper

    def violation(self, temperature: float) -> float:
        """Distance outside the comfort range (0 when inside)."""
        if temperature > self.upper:
            return temperature - self.upper
        if temperature < self.lower:
            return self.lower - temperature
        return 0.0

    @staticmethod
    def winter() -> "ComfortConfig":
        return ComfortConfig(20.0, 23.5)

    @staticmethod
    def summer() -> "ComfortConfig":
        return ComfortConfig(23.0, 26.0)

    @staticmethod
    def for_season(season: str) -> "ComfortConfig":
        """The paper's seasonal comfort range, looked up by name."""
        return get_season(season).comfort


@dataclass(frozen=True)
class SeasonConfig:
    """Simulation window and comfort band for one season.

    The single source of the winter/summer constants used by
    :mod:`repro.core.pipeline`, :mod:`repro.experiments.scenarios` and
    :func:`repro.env.hvac_env.make_environment`.
    """

    name: str
    start_month: int
    start_day_of_year: int
    comfort: ComfortConfig


SEASONS: Dict[str, SeasonConfig] = {
    "winter": SeasonConfig("winter", start_month=1, start_day_of_year=0, comfort=ComfortConfig(20.0, 23.5)),
    "summer": SeasonConfig("summer", start_month=7, start_day_of_year=181, comfort=ComfortConfig(23.0, 26.0)),
}


def get_season(name: str) -> SeasonConfig:
    """Look up a season by name."""
    if name not in SEASONS:
        raise ValueError(
            f"Unknown season {name!r}. Available seasons: {', '.join(sorted(SEASONS))}"
        )
    return SEASONS[name]


@dataclass(frozen=True)
class ActionSpaceConfig:
    """Discrete setpoint action space used by all agents.

    The action is a pair ``(heating_setpoint, cooling_setpoint)``.  Setpoints
    are integers, matching the experimental platform of the paper.
    """

    heating_min: int = 15
    heating_max: int = 23
    cooling_min: int = 21
    cooling_max: int = 30

    def __post_init__(self) -> None:
        if self.heating_min > self.heating_max:
            raise ValueError("heating_min must not exceed heating_max")
        if self.cooling_min > self.cooling_max:
            raise ValueError("cooling_min must not exceed cooling_max")

    @property
    def heating_setpoints(self) -> List[int]:
        return list(range(self.heating_min, self.heating_max + 1))

    @property
    def cooling_setpoints(self) -> List[int]:
        return list(range(self.cooling_min, self.cooling_max + 1))

    @property
    def num_heating(self) -> int:
        return self.heating_max - self.heating_min + 1

    @property
    def num_cooling(self) -> int:
        return self.cooling_max - self.cooling_min + 1

    def joint_actions(self) -> List[Tuple[int, int]]:
        """All (heating, cooling) pairs with heating <= cooling."""
        actions = []
        for h in self.heating_setpoints:
            for c in self.cooling_setpoints:
                if h <= c:
                    actions.append((h, c))
        return actions

    def clip(self, heating: float, cooling: float) -> Tuple[int, int]:
        """Round and clip an arbitrary pair of setpoints into the valid space."""
        h = int(round(heating))
        c = int(round(cooling))
        h = min(max(h, self.heating_min), self.heating_max)
        c = min(max(c, self.cooling_min), self.cooling_max)
        if h > c:
            c = max(h, self.cooling_min)
            c = min(c, self.cooling_max)
            h = min(h, c)
        return h, c

    def off_setpoints(self) -> Tuple[int, int]:
        """Setpoints corresponding to the HVAC being effectively off.

        The paper estimates energy as the L1 distance between the selected
        setpoint and the setpoint corresponding to the HVAC being turned off
        (lowest heating setpoint, highest cooling setpoint).
        """
        return self.heating_min, self.cooling_max


@dataclass(frozen=True)
class RewardConfig:
    """Parameters of the reward function (Eq. 2 of the paper)."""

    weight_energy_occupied: float = 1e-2
    weight_energy_unoccupied: float = 1.0
    comfort: ComfortConfig = field(default_factory=ComfortConfig.winter)

    def energy_weight(self, occupied: bool) -> float:
        return self.weight_energy_occupied if occupied else self.weight_energy_unoccupied

    def energy_weights(self, occupied) -> "np.ndarray":
        """Vectorised :meth:`energy_weight` over a boolean array."""
        import numpy as np

        return np.where(
            occupied, self.weight_energy_occupied, self.weight_energy_unoccupied
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Simulation period and resolution."""

    days: int = 31
    minutes_per_step: int = MINUTES_PER_STEP
    start_month: int = 1
    start_day_of_year: int = 0

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if 60 % self.minutes_per_step != 0:
            raise ValueError("minutes_per_step must divide 60")

    @property
    def steps_per_hour(self) -> int:
        return 60 // self.minutes_per_step

    @property
    def steps_per_day(self) -> int:
        return 24 * self.steps_per_hour

    @property
    def total_steps(self) -> int:
        return self.days * self.steps_per_day

    @property
    def step_hours(self) -> float:
        return self.minutes_per_step / 60.0


@dataclass
class ExperimentConfig:
    """Top-level configuration bundling everything an experiment needs."""

    city: str = "pittsburgh"
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    actions: ActionSpaceConfig = field(default_factory=ActionSpaceConfig)
    reward: RewardConfig = field(default_factory=RewardConfig)
    seed: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)
