"""Random number generator helpers.

Every stochastic component in the library accepts either an integer seed, a
``numpy.random.Generator`` or ``None`` and normalises it through
:func:`ensure_rng`.  Deterministic seeding is essential here: the whole point of
the paper is that the extracted decision-tree policy is deterministic, and the
test-suite checks reproducibility of the surrounding pipeline as well.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RNGLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` built from ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"Cannot build a random generator from {seed!r}")


def spawn_rngs(seed: RNGLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # A generator cannot be split deterministically; derive children from
        # integers drawn from it instead.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def deterministic_hash(values: Iterable[float], modulus: int = 2**31 - 1) -> int:
    """A small, stable hash used to derive per-sample seeds from float vectors."""
    h = 1469598103934665603
    for v in values:
        h ^= hash(round(float(v), 6))
        h *= 1099511628211
        h &= 0xFFFFFFFFFFFFFFFF
    return int(h % modulus)


def optional_seed(rng: Optional[np.random.Generator]) -> Optional[int]:
    """Draw an integer seed from ``rng`` or return ``None`` if ``rng`` is ``None``."""
    if rng is None:
        return None
    return int(rng.integers(0, 2**31 - 1))
