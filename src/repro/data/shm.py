"""Zero-copy shared-memory transport for the columnar batch schema.

The sharded policy server (:mod:`repro.serving.sharded`) moves
:class:`~repro.data.schema.ColumnarBatch` payloads between processes.  Pickling
a ``(B, F)`` observation matrix through a ``multiprocessing`` queue would
serialise, copy and deserialise every byte per hop — exactly the object tax the
columnar data plane removed in-process.  This module keeps the arrays out of
the queues entirely:

* :class:`SharedMemoryColumnarBuffer` — a ring allocator over one
  ``multiprocessing.shared_memory.SharedMemory`` segment.  ``write_batch``
  places each column's bytes at an aligned offset in the ring and returns a
  tiny :class:`ShmBatchHeader`; ``read_batch`` maps ``numpy`` views directly
  onto the segment at those offsets (no copy, no pickle) and rebuilds the
  batch around them.
* :class:`ShmBatchHeader` / :class:`ColumnSegment` — the only things that ever
  cross a queue: batch type name, column dtypes/shapes/offsets and scalar
  metadata.  :meth:`ShmBatchHeader.assert_zero_copy` is the transport's
  no-pickle guard — it refuses any header that smuggles an array (or other
  bulk payload), so the queue traffic provably stays O(columns), not O(rows).

Ownership protocol
------------------
Exactly one process *owns* a segment: it creates it (:meth:`
SharedMemoryColumnarBuffer.create`) and must eventually :meth:`~
SharedMemoryColumnarBuffer.unlink` it.  Any number of peers :meth:`~
SharedMemoryColumnarBuffer.attach` by name and only ever :meth:`~
SharedMemoryColumnarBuffer.close` their mapping — attaching deliberately
unregisters the segment from the attaching process's ``resource_tracker`` so
a worker exiting (including via SIGTERM) can never unlink a ring the owner is
still serving from.

The ring is deliberately single-producer: each direction of each shard gets
its own buffer, and the sharded server keeps at most one batch in flight per
ring, so a bump allocator that wraps at the end of the segment can never
overwrite bytes a reader still needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Optional, Tuple, Type

import numpy as np
from numpy.typing import NDArray

from repro.data.schema import (
    ActionBatch,
    ColumnarBatch,
    InfoBatch,
    ObservationBatch,
    PolicyRequestBatch,
    PolicyResponseBatch,
)

#: Byte alignment of every column payload inside a segment (cache-line sized,
#: and a multiple of every dtype itemsize the schema uses).
ALIGNMENT = 64

#: Default ring capacity (bytes).  Sized for ~8k-row mixed request batches
#: with room to spare; raise it (``ring_capacity=``) for bigger batches.
DEFAULT_CAPACITY = 32 * 1024 * 1024

#: The batch types the transport can carry, by class name — the header stores
#: the name so the reading side can rebuild the right type without pickling
#: classes through the queue.
BATCH_TYPES: Dict[str, Type[ColumnarBatch]] = {
    cls.__name__: cls
    for cls in (
        ObservationBatch,
        ActionBatch,
        InfoBatch,
        PolicyRequestBatch,
        PolicyResponseBatch,
    )
}

#: Python scalar types a header may carry (recursively, inside tuples/dicts).
_PLAIN_SCALARS = (str, int, float, bool, type(None))


class ShmTransportError(RuntimeError):
    """A shared-memory transport violation (oversized batch, bad header...)."""


def _assert_plain(value: object, where: str) -> None:
    """Recursively require queue-safe scalar metadata (no arrays, no bytes)."""
    if isinstance(value, _PLAIN_SCALARS):
        return
    if isinstance(value, (tuple, list)):
        for item in value:
            _assert_plain(item, where)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            _assert_plain(key, where)
            _assert_plain(item, where)
        return
    raise ShmTransportError(
        f"{where} would pickle a {type(value).__name__} through the queue; "
        "array payloads must travel via shared memory, not the header"
    )


@dataclass(frozen=True)
class ColumnSegment:
    """Where one column of a batch lives inside a shared-memory segment.

    Pure metadata: dtype string (``numpy`` descriptor, e.g. ``"<f8"`` or
    ``"<U44"``), shape tuple and byte offset.  The bytes themselves never
    leave the segment.
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Size of the column payload in bytes."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class ShmBatchHeader:
    """The queue-sized description of one batch parked in shared memory.

    This is the *only* object the sharded transport ever pickles: the batch
    type name, the owning segment's name, one :class:`ColumnSegment` per
    present column, and the batch-level scalar metadata (e.g. an
    ``ObservationBatch``'s feature names).  Its pickled size is a function of
    the column count, never the row count.
    """

    batch_type: str
    segment: str
    columns: Tuple[ColumnSegment, ...]
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Ring generation the batch was written under.  The supervision layer
    #: bumps a ring's generation every time it replaces a crashed shard's
    #: rings; :meth:`SharedMemoryColumnarBuffer.read_batch` refuses headers
    #: from any other generation, so a reply built against a dead
    #: generation's ring layout is rejected rather than mis-read.
    generation: int = 0

    @property
    def nbytes(self) -> int:
        """Total payload bytes parked in the segment for this batch."""
        return sum(column.nbytes for column in self.columns)

    def assert_zero_copy(self) -> None:
        """The transport's no-pickle guard.

        Raises :class:`ShmTransportError` if the header carries anything but
        plain scalars/strings (recursively) — i.e. if an array payload is
        about to be pickled through a queue instead of mapped through shared
        memory.  Called by both ends of the sharded transport on every send.
        """
        if self.batch_type not in BATCH_TYPES:
            raise ShmTransportError(f"Unknown batch type {self.batch_type!r}")
        for column in self.columns:
            _assert_plain((column.name, column.dtype, column.offset), "column header")
            _assert_plain(tuple(column.shape), "column shape")
        _assert_plain(self.metadata, f"{self.batch_type} metadata")
        _assert_plain(self.generation, f"{self.batch_type} generation")


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class SharedMemoryColumnarBuffer:
    """A single-producer ring of columnar batches over one shm segment.

    One process creates the segment (:meth:`create`) and writes batches into
    it; peers attach by name (:meth:`attach`) and map views out of it.  The
    allocator is a bump pointer that wraps to the start of the segment when a
    batch would run past the end — safe because each ring carries at most one
    in-flight batch (the sharded server's invariant), so the previous batch
    has always been consumed before its bytes are reused.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        owner: bool,
        generation: int = 0,
    ):
        self._shm = shm
        self._owner = owner
        self._head = 0
        self._closed = False
        self._generation = int(generation)

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(
        cls,
        capacity: int = DEFAULT_CAPACITY,
        name: Optional[str] = None,
        generation: int = 0,
    ) -> "SharedMemoryColumnarBuffer":
        """Create and own a new segment of ``capacity`` bytes.

        ``generation`` is the fencing token stamped into every header this
        ring writes (and required of every header it reads); the sharded
        supervision layer bumps it each time a shard's rings are replaced.
        """
        if capacity < ALIGNMENT:
            raise ValueError(f"capacity must be at least {ALIGNMENT} bytes")
        shm = shared_memory.SharedMemory(create=True, size=int(capacity), name=name)
        return cls(shm, owner=True, generation=generation)

    @classmethod
    def attach(cls, name: str, generation: int = 0) -> "SharedMemoryColumnarBuffer":
        """Attach to an existing segment by name (non-owning view).

        The attachment is unregistered from this process's
        ``resource_tracker`` so that a worker exiting — cleanly or via
        SIGTERM — never tears down a segment its parent still owns.
        """
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)  # 3.13+
        except TypeError:
            # Older interpreters register attachments unconditionally with the
            # resource tracker, which would then unlink the segment out from
            # under the owner when this process exits.  Suppress the
            # registration at the source (single-threaded: workers attach once
            # at startup) instead of unregistering after the fact, which with
            # a fork-shared tracker would erase the *owner's* registration.
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        return cls(shm, owner=False, generation=generation)

    @property
    def name(self) -> str:
        """The segment name peers attach by."""
        return self._shm.name

    @property
    def generation(self) -> int:
        """The fencing generation this ring writes into (and requires of) headers."""
        return self._generation

    @property
    def capacity(self) -> int:
        """Usable size of the segment in bytes."""
        return self._shm.size

    @property
    def owner(self) -> bool:
        """Whether this handle created (and must unlink) the segment."""
        return self._owner

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives).

        Any numpy views previously handed out keep the underlying ``mmap``
        alive until they are garbage-collected; closing with live views is
        therefore deferred by the OS rather than an error.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live views pin the mapping
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if not self._owner:
            raise ShmTransportError("Only the creating process may unlink a segment")
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedMemoryColumnarBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._owner:
            self.unlink()

    # ------------------------------------------------------------ allocation
    def _allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` at an aligned offset, wrapping at the end."""
        if nbytes > self.capacity:
            raise ShmTransportError(
                f"Batch needs {nbytes} bytes but the ring holds {self.capacity}; "
                "raise ring_capacity or serve smaller batches"
            )
        offset = _align(self._head)
        if offset + nbytes > self.capacity:
            offset = 0  # wrap: the single in-flight batch has been consumed
        self._head = offset + nbytes
        return offset

    # --------------------------------------------------------------- batches
    def write_batch(self, batch: ColumnarBatch) -> ShmBatchHeader:
        """Park a batch's columns in the ring; return its queue-sized header.

        Each present column is copied once into the segment at an aligned
        offset (the write *is* the hand-off — nothing is serialised), and the
        returned :class:`ShmBatchHeader` passes :meth:`~ShmBatchHeader.
        assert_zero_copy` by construction.
        """
        type_name = type(batch).__name__
        if type_name not in BATCH_TYPES:
            raise ShmTransportError(f"Cannot transport {type_name!r} batches")
        columns = batch.columns()
        total = sum(_align(array.nbytes) for array in columns.values()) + ALIGNMENT
        offset = self._allocate(total)
        segments = []
        for name, array in columns.items():
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf, offset=offset)
            view[...] = array
            segments.append(
                ColumnSegment(
                    name=name,
                    dtype=array.dtype.str,
                    shape=tuple(int(dim) for dim in array.shape),
                    offset=offset,
                )
            )
            offset = _align(offset + array.nbytes)
        metadata = {
            key: tuple(value) if isinstance(value, (list, tuple)) else value
            for key, value in batch._metadata().items()
        }
        header = ShmBatchHeader(
            batch_type=type_name,
            segment=self.name,
            columns=tuple(segments),
            metadata=metadata,
            generation=self._generation,
        )
        header.assert_zero_copy()
        return header

    def read_batch(self, header: ShmBatchHeader, copy: bool = False) -> ColumnarBatch:
        """Rebuild a batch from its header, mapping columns out of the ring.

        With ``copy=False`` (the default) every column is a zero-copy numpy
        view onto the segment: valid until the ring's single-producer writes
        its *next* batch, so consume (or ``copy=True``) before handing the
        ring back.  The batch type is resolved from :data:`BATCH_TYPES` —
        nothing executable travels in the header.  A header stamped with a
        different *generation* than this ring — a stale view of a shard
        fleet that has since been restarted — is rejected outright rather
        than risk mapping columns out of a reused segment layout.
        """
        header.assert_zero_copy()
        if header.segment != self.name:
            raise ShmTransportError(
                f"Header describes segment {header.segment!r}, buffer is {self.name!r}"
            )
        if header.generation != self._generation:
            raise ShmTransportError(
                f"Header was written under ring generation {header.generation}, "
                f"but this ring is generation {self._generation}; stale views of "
                "a dead generation are never mapped"
            )
        batch_cls = BATCH_TYPES[header.batch_type]
        columns: Dict[str, NDArray[Any]] = {}
        for segment in header.columns:
            if segment.offset + segment.nbytes > self.capacity:
                raise ShmTransportError(
                    f"Column {segment.name!r} runs past the end of the segment"
                )
            view = np.ndarray(
                segment.shape,
                dtype=np.dtype(segment.dtype),
                buffer=self._shm.buf,
                offset=segment.offset,
            )
            columns[segment.name] = view.copy() if copy else view
        return batch_cls(**columns, **header.metadata)
