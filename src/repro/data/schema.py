"""The columnar batch schema shared by every layer boundary.

Before this module, each layer of the system spoke its own dialect at its
boundary: the batched environment emitted dicts of arrays, agents unpacked
them back into arrays, and the policy server traded per-request dataclasses.
Each hop paid an object-conversion tax that, once the kernels themselves were
vectorised, dominated the hot paths (the ``PolicyServer`` front door most of
all).

The types below are contiguous, dtype-declared structs-of-arrays:

* :class:`ObservationBatch` — ``(B, F)`` Table-1 observation rows,
* :class:`ActionBatch` — ``(B,)`` discrete action indices (plus optional
  resolved setpoint columns),
* :class:`InfoBatch` — the per-step diagnostics of a batched environment
  step, one typed column per scalar info key of the serial environment,
* :class:`PolicyRequestBatch` / :class:`PolicyResponseBatch` — the columnar
  serving front door (arrays in, arrays out), with cached building-id
  grouping for argsort-based per-policy batching.

Every batch validates its columns on construction (dtype, dimensionality,
shared row count), supports row ``take``/``slice`` and ``concat``, and
interoperates with plain numpy via ``__array__`` so legacy callers keep
working unchanged.

Dtype policy
------------
Float columns accept ``float32`` or ``float64`` and preserve whichever they
are given (anything else is coerced to ``float64``, the bit-exact reference
dtype).  :func:`resolve_float_dtype` maps the ``PipelineConfig.dtype`` policy
strings to numpy dtypes; the float32 fast path of the dynamics models (see
:mod:`repro.nn.inference`) builds on it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.server import PolicyResponse

#: The float dtypes the data plane understands. ``float64`` is the bit-exact
#: reference; ``float32`` is the opt-in inference fast path.
FLOAT_DTYPES: Tuple[np.dtype, ...] = (np.dtype(np.float32), np.dtype(np.float64))

#: Names accepted by :func:`resolve_float_dtype` (the ``PipelineConfig.dtype``
#: policy values).
FLOAT_DTYPE_NAMES: Tuple[str, ...] = ("float32", "float64")


def resolve_float_dtype(dtype: Union[str, np.dtype, type]) -> np.dtype:
    """Map a dtype policy value (``"float32"``/``"float64"``) to a numpy dtype.

    Raises :class:`ValueError` for anything else — including strings numpy
    itself cannot parse — so config validation has one failure mode.
    """
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(
            f"Unsupported float dtype {dtype!r}; use one of {FLOAT_DTYPE_NAMES}"
        ) from exc
    if resolved not in FLOAT_DTYPES:
        raise ValueError(
            f"Unsupported float dtype {dtype!r}; use one of {FLOAT_DTYPE_NAMES}"
        )
    return resolved


@dataclass(frozen=True)
class ColumnSpec:
    """Declared type of one column of a :class:`ColumnarBatch`.

    ``kind`` picks the coercion rule:

    * ``"float"`` — floating column; float32/float64 preserved, everything
      else coerced to float64,
    * ``"int"`` — ``int64``,
    * ``"bool"`` — ``bool``,
    * ``"id"`` — string identifiers (unicode array; used for grouping keys).

    ``ndim`` is the required array rank (rows are always the leading axis);
    ``required=False`` columns may be ``None``.
    """

    name: str
    kind: str = "float"
    ndim: int = 1
    required: bool = True

    def coerce(self, value: NDArray[Any]) -> NDArray[Any]:
        """Coerce one column to its declared dtype/rank (contiguous, validated).

        Float columns preserve float32/float64 and coerce anything else to
        float64; int columns become ``int64``; id columns become unicode
        arrays.  Raises :class:`ValueError` on a rank mismatch.
        """
        if self.kind == "float":
            # reprolint: disable=REP001 -- dtype-preserving by design: float32
            # stays float32 (the fast path); everything else coerces below.
            array = np.asarray(value)
            if array.dtype not in FLOAT_DTYPES:
                array = array.astype(np.float64)
        elif self.kind == "int":
            array = np.asarray(value, dtype=np.int64)
        elif self.kind == "bool":
            array = np.asarray(value, dtype=bool)
        elif self.kind == "id":
            array = np.asarray(value)  # reprolint: disable=REP001 -- dtype inspected next line
            if array.dtype.kind not in "US":
                array = np.asarray(
                    [str(v) for v in np.atleast_1d(array)], dtype=np.str_
                )
        else:  # pragma: no cover - specs are module-level constants
            raise ValueError(f"Unknown column kind {self.kind!r}")
        if array.ndim != self.ndim:
            raise ValueError(
                f"Column {self.name!r} must have {self.ndim} dimension(s), "
                f"got shape {array.shape}"
            )
        return np.ascontiguousarray(array)


class ColumnarBatch:
    """Base machinery shared by the columnar batch types.

    Subclasses are dataclasses whose array fields are declared in
    ``COLUMNS``; any remaining fields are batch-level metadata, carried
    through :meth:`take`/:meth:`slice` unchanged and required to match under
    :meth:`concat`.  Construction coerces every column to its declared dtype,
    makes it contiguous and checks that all columns share one row count.
    """

    COLUMNS: ClassVar[Tuple[ColumnSpec, ...]] = ()

    # ------------------------------------------------------------ validation
    def __post_init__(self) -> None:
        rows: Optional[int] = None
        for spec in self.COLUMNS:
            value = getattr(self, spec.name)
            if value is None:
                if spec.required:
                    raise ValueError(f"Column {spec.name!r} is required")
                continue
            array = spec.coerce(value)
            setattr(self, spec.name, array)
            if rows is None:
                rows = len(array)
            elif len(array) != rows:
                raise ValueError(
                    f"Column {spec.name!r} has {len(array)} rows, expected {rows}"
                )
        if rows is None:
            raise ValueError(f"{type(self).__name__} needs at least one column")
        self._rows = rows

    # -------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return self._rows

    @property
    def num_rows(self) -> int:
        """Shared row count of every present column (``len(batch)``)."""
        return self._rows

    def columns(self) -> Dict[str, NDArray[Any]]:
        """The present columns as a name -> array mapping (no copies)."""
        return {
            spec.name: getattr(self, spec.name)
            for spec in self.COLUMNS
            if getattr(self, spec.name) is not None
        }

    def _metadata(self) -> Dict[str, object]:
        column_names = {spec.name for spec in self.COLUMNS}
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in column_names
        }

    def _rebuild(self, columns: Dict[str, Optional[NDArray[Any]]]) -> "ColumnarBatch":
        return type(self)(**columns, **self._metadata())

    # ------------------------------------------------------------- row verbs
    def _getitem_rows(
        self,
        item: Union[int, slice, Sequence[int], NDArray[Any]],
        scalar: Callable[[int], Any],
    ) -> Any:
        """Shared ``__getitem__`` body: rows only, loud on anything else.

        ``scalar`` materialises one row for an integer index; slices (any
        step) and index arrays return sub-batches.  Tuple indexing — what a
        legacy ``(B, F)`` ndarray caller would write as ``arr[i, j]`` — is
        rejected rather than silently reinterpreted as fancy row indexing;
        use ``np.asarray(batch)`` or a named column for element access.
        """
        if isinstance(item, tuple):
            raise TypeError(
                f"{type(self).__name__} indexes rows only; for element access "
                "use np.asarray(batch) or a named column"
            )
        if isinstance(item, (int, np.integer)):
            return scalar(item)
        if isinstance(item, slice):
            if item.step in (None, 1):
                return self.slice(item.start or 0, item.stop)
            return self.take(np.arange(*item.indices(len(self))))
        return self.take(item)

    def take(self, indices: Union[Sequence[int], NDArray[Any]]) -> "ColumnarBatch":
        """A new batch holding the given rows (fancy-indexed copy)."""
        # reprolint: disable=REP001 -- indices may be an int array or a bool
        # mask; both must keep their dtype for fancy indexing to mean the same.
        indices = np.asarray(indices)
        return self._rebuild(
            {
                spec.name: None if value is None else value[indices]
                for spec in self.COLUMNS
                for value in (getattr(self, spec.name),)
            }
        )

    def slice(self, start: int, stop: Optional[int] = None) -> "ColumnarBatch":
        """A new batch over rows ``[start, stop)`` (zero-copy views)."""
        window = slice(start, stop)
        return self._rebuild(
            {
                spec.name: None if value is None else value[window]
                for spec in self.COLUMNS
                for value in (getattr(self, spec.name),)
            }
        )

    # ---------------------------------------------------------- shm transport
    def to_shm(self, buffer) -> "ShmBatchHeader":
        """Park this batch's columns in a shared-memory ring.

        ``buffer`` is a :class:`~repro.data.shm.SharedMemoryColumnarBuffer`.
        Returns the queue-sized :class:`~repro.data.shm.ShmBatchHeader` —
        the only thing that should ever cross a process boundary for this
        batch; the array payloads stay in (and are mapped out of) the shared
        segment.  See :mod:`repro.data.shm` for the ownership protocol.
        """
        return buffer.write_batch(self)

    @classmethod
    def from_shm(cls, buffer, header, copy: bool = False) -> "ColumnarBatch":
        """Rebuild a batch of this type from a shared-memory ring.

        With ``copy=False`` the columns are zero-copy views onto the segment
        (valid until the ring's producer writes its next batch); ``copy=True``
        materialises private arrays.  Raises
        :class:`~repro.data.shm.ShmTransportError` when the header describes
        a different batch type.
        """
        from repro.data.shm import ShmTransportError

        batch = buffer.read_batch(header, copy=copy)
        if not isinstance(batch, cls):
            raise ShmTransportError(
                f"Header describes a {type(batch).__name__}, expected {cls.__name__}"
            )
        return batch

    @classmethod
    def concat(cls, batches: Sequence["ColumnarBatch"]) -> "ColumnarBatch":
        """Concatenate batches of one type row-wise."""
        if not batches:
            raise ValueError(f"concat needs at least one {cls.__name__}")
        first = batches[0]
        for other in batches[1:]:
            if type(other) is not cls:
                raise TypeError(f"Cannot concat {type(other).__name__} into {cls.__name__}")
            if other._metadata() != first._metadata():
                raise ValueError("Cannot concat batches with different metadata")
        columns: Dict[str, Optional[NDArray[Any]]] = {}
        for spec in cls.COLUMNS:
            values = [getattr(batch, spec.name) for batch in batches]
            if any(v is None for v in values):
                columns[spec.name] = None
            else:
                columns[spec.name] = np.concatenate(values)
        return first._rebuild(columns)


#: Canonical Table-1 observation feature order (matches the serial
#: environment's observation vector and the dynamics-model input layout).
OBSERVATION_FEATURES: Tuple[str, ...] = (
    "zone_temperature",
    "outdoor_temperature",
    "relative_humidity",
    "wind_speed",
    "solar_radiation",
    "occupant_count",
)


@dataclass
class ObservationBatch(ColumnarBatch):
    """``(B, F)`` observation rows, one feature per column of ``values``.

    ``values`` is the contiguous matrix the vectorised kernels consume
    directly; named feature columns are zero-copy views via :meth:`column`.
    Supports ``np.asarray(batch)`` and integer row indexing, so it drops into
    every legacy call site that expected a plain ``(B, F)`` array.
    """

    values: NDArray[Any]
    feature_names: Tuple[str, ...] = OBSERVATION_FEATURES

    COLUMNS = (ColumnSpec("values", kind="float", ndim=2),)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.feature_names = tuple(self.feature_names)
        if self.values.shape[1] != len(self.feature_names):
            raise ValueError(
                f"ObservationBatch has {self.values.shape[1]} feature column(s) "
                f"but {len(self.feature_names)} feature name(s)"
            )

    @property
    def num_features(self) -> int:
        """Feature column count F of the ``(B, F)`` values matrix."""
        return self.values.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Float dtype of ``values`` (float64 reference or float32 fast path)."""
        return self.values.dtype

    def column(self, name: str) -> NDArray[Any]:
        """One named feature column as a zero-copy ``(B,)`` view."""
        try:
            index = self.feature_names.index(name)
        except ValueError:
            raise KeyError(
                f"Unknown feature {name!r}; available: {self.feature_names}"
            ) from None
        return self.values[:, index]

    def astype(self, dtype: Union[str, np.dtype]) -> "ObservationBatch":
        """This batch under the given float dtype (no copy when already there)."""
        resolved = resolve_float_dtype(dtype)
        if self.values.dtype == resolved:
            return self
        return ObservationBatch(
            self.values.astype(resolved), feature_names=self.feature_names
        )

    def __array__(self, dtype: Any = None) -> NDArray[Any]:
        return self.values if dtype is None else self.values.astype(dtype, copy=False)

    def __getitem__(self, item: Union[int, slice, Sequence[int], NDArray[Any]]) -> Any:
        """Integer -> one observation row; slice/index array -> a sub-batch."""
        return self._getitem_rows(item, lambda index: self.values[index])

    @classmethod
    def from_rows(
        cls,
        rows: Union[NDArray[Any], Sequence[Sequence[float]]],
        feature_names: Optional[Sequence[str]] = None,
    ) -> "ObservationBatch":
        """Build from any (B, F) row collection (lists, stacked arrays, ...)."""
        # reprolint: disable=REP001 -- dtype-preserving on purpose: float32
        # rows stay float32; ColumnSpec.coerce applies the float policy below.
        values = np.atleast_2d(np.asarray(rows))
        if feature_names is None:
            if values.shape[1] == len(OBSERVATION_FEATURES):
                feature_names = OBSERVATION_FEATURES
            else:
                feature_names = tuple(f"f{i}" for i in range(values.shape[1]))
        return cls(values, feature_names=tuple(feature_names))


@dataclass
class ActionBatch(ColumnarBatch):
    """``(B,)`` discrete action indices, optionally with resolved setpoints.

    ``np.asarray(batch)`` yields the index column, so an ``ActionBatch`` is a
    drop-in replacement wherever a plain index array was passed before.
    """

    indices: NDArray[Any]
    heating_setpoints: Optional[NDArray[Any]] = None
    cooling_setpoints: Optional[NDArray[Any]] = None

    COLUMNS = (
        ColumnSpec("indices", kind="int"),
        ColumnSpec("heating_setpoints", kind="float", required=False),
        ColumnSpec("cooling_setpoints", kind="float", required=False),
    )

    @property
    def has_setpoints(self) -> bool:
        """Whether both resolved setpoint columns are present."""
        return self.heating_setpoints is not None and self.cooling_setpoints is not None

    def with_setpoints(self, action_pairs: NDArray[Any]) -> "ActionBatch":
        """Resolve setpoint columns by gathering from an (A, 2) pair table."""
        pairs = np.asarray(action_pairs, dtype=np.float64)[self.indices]
        return ActionBatch(
            self.indices,
            heating_setpoints=pairs[:, 0],
            cooling_setpoints=pairs[:, 1],
        )

    def __array__(self, dtype: Any = None) -> NDArray[Any]:
        return self.indices if dtype is None else self.indices.astype(dtype, copy=False)

    def tolist(self) -> List[int]:
        """The action indices as a plain python list (legacy adapter)."""
        # reprolint: disable=REP002 -- legacy adapter boundary: serial-era
        # callers want a python list; nothing on the shm transport calls this.
        return self.indices.tolist()

    def __getitem__(self, item: Union[int, slice, Sequence[int], NDArray[Any]]) -> Any:
        return self._getitem_rows(item, lambda index: int(self.indices[index]))

    @classmethod
    def from_indices(cls, indices: Union[NDArray[Any], Sequence[int]]) -> "ActionBatch":
        """Build from any 1-d collection of action indices (coerced to int64)."""
        return cls(np.atleast_1d(np.asarray(indices, dtype=np.int64)))


@dataclass
class InfoBatch(ColumnarBatch):
    """Per-step diagnostics of one batched environment step, columnar.

    One typed ``(B,)`` column per scalar info key of the serial environment,
    plus the scalar ``step`` index.  The float columns keep the exact values
    (and dtype) the legacy dict-of-arrays carried, and the mapping protocol
    (``info["occupied"]``, ``"step" in info``, ``info.keys()``) is preserved
    so existing consumers are oblivious to the change.
    """

    step: int
    hour_of_day: NDArray[Any]
    occupied: NDArray[Any]
    heating_setpoint: Optional[NDArray[Any]] = None
    cooling_setpoint: Optional[NDArray[Any]] = None
    zone_temperature: Optional[NDArray[Any]] = None
    hvac_electric_energy_kwh: Optional[NDArray[Any]] = None
    heating_energy_kwh: Optional[NDArray[Any]] = None
    cooling_energy_kwh: Optional[NDArray[Any]] = None
    energy_proxy: Optional[NDArray[Any]] = None
    comfort_violation: Optional[NDArray[Any]] = None
    comfort_violated: Optional[NDArray[Any]] = None
    sensor_dropped: Optional[NDArray[Any]] = None
    actuator_stuck: Optional[NDArray[Any]] = None
    demand_response: Optional[NDArray[Any]] = None

    COLUMNS = (
        ColumnSpec("hour_of_day", kind="float"),
        ColumnSpec("occupied", kind="float"),
        ColumnSpec("heating_setpoint", kind="float", required=False),
        ColumnSpec("cooling_setpoint", kind="float", required=False),
        ColumnSpec("zone_temperature", kind="float", required=False),
        ColumnSpec("hvac_electric_energy_kwh", kind="float", required=False),
        ColumnSpec("heating_energy_kwh", kind="float", required=False),
        ColumnSpec("cooling_energy_kwh", kind="float", required=False),
        ColumnSpec("energy_proxy", kind="float", required=False),
        ColumnSpec("comfort_violation", kind="float", required=False),
        ColumnSpec("comfort_violated", kind="float", required=False),
        ColumnSpec("sensor_dropped", kind="float", required=False),
        ColumnSpec("actuator_stuck", kind="float", required=False),
        ColumnSpec("demand_response", kind="float", required=False),
    )

    # ----------------------------------------------------- mapping protocol
    def keys(self) -> List[str]:
        """The present info keys, ``"step"`` first (dict-protocol adapter)."""
        present = [
            spec.name for spec in self.COLUMNS if getattr(self, spec.name) is not None
        ]
        return ["step"] + present

    def __contains__(self, key: str) -> bool:
        return key in self.keys()

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __getitem__(self, key: str) -> Union[int, NDArray[Any]]:
        if key == "step":
            return self.step
        if key not in self.keys():
            raise KeyError(key)
        return getattr(self, key)

    def items(self) -> List[Tuple[str, Union[int, NDArray[Any]]]]:
        """``(key, value)`` pairs over :meth:`keys` (dict-protocol adapter)."""
        return [(key, self[key]) for key in self.keys()]

    def get(self, key: str, default: Any = None) -> Any:
        """``dict.get`` semantics over the present info keys."""
        try:
            return self[key]
        except KeyError:
            return default

    def to_dict(self) -> Dict[str, Union[int, NDArray[Any]]]:
        """The legacy dict-of-arrays view (diagnostics/serialisation only)."""
        return dict(self.items())

    def episode_info(self, index: int) -> Dict[str, float]:
        """Materialise the serial-style info dict of one episode."""
        out: Dict[str, float] = {}
        for key, value in self.items():
            out[key] = (
                value
                if np.isscalar(value)
                else float(np.asarray(value, dtype=np.float64)[index])
            )
        return out


@dataclass
class PolicyRequestBatch(ColumnarBatch):
    """One serving batch: a building/policy id column plus observation rows.

    The per-policy grouping needed to route mixed-building batches is an
    ``argsort`` over the integer-coded id column (:meth:`grouping`), computed
    once and cached — no per-request python objects, no dict bucketing.
    """

    policy_ids: NDArray[Any]
    observations: NDArray[Any]
    _grouping: Optional[Tuple[NDArray[Any], NDArray[Any]]] = field(
        default=None, repr=False, compare=False
    )

    COLUMNS = (
        ColumnSpec("policy_ids", kind="id"),
        ColumnSpec("observations", kind="float", ndim=2),
    )

    def _metadata(self) -> Dict[str, object]:
        return {}  # the grouping cache never survives a rebuild

    def grouping(self) -> Tuple[NDArray[Any], NDArray[Any]]:
        """``(codes, unique_ids)``: integer policy codes per row, cached.

        ``codes[i]`` indexes ``unique_ids`` (sorted); computed with one
        ``np.unique`` pass on first use.
        """
        if self._grouping is None:
            unique_ids, codes = np.unique(self.policy_ids, return_inverse=True)
            self._grouping = (codes.astype(np.int64), unique_ids)
        return self._grouping

    @property
    def num_policies(self) -> int:
        """Distinct policy ids in this batch (via the cached grouping)."""
        return len(self.grouping()[1])

    @classmethod
    def single_policy(
        cls, policy_id: str, observations: Union[NDArray[Any], Sequence[Sequence[float]]]
    ) -> "PolicyRequestBatch":
        """All rows bound for one policy (the common fleet-of-one case)."""
        # reprolint: disable=REP001 -- dtype-preserving: float32 observations
        # ride the float fast path untouched.
        observations = np.atleast_2d(np.asarray(observations))
        return cls(
            # reprolint: disable=REP001 -- np.full must infer the unicode width
            # from policy_id (an explicit np.str_ would truncate to <U1).
            policy_ids=np.full(len(observations), policy_id),
            observations=observations,
        )

    @classmethod
    def from_requests(cls, requests: Sequence[Any]) -> "PolicyRequestBatch":
        """Adapter from legacy per-request objects (``PolicyRequest``)."""
        return cls(
            policy_ids=np.asarray([r.policy_id for r in requests], dtype=np.str_),
            observations=np.asarray(
                [r.observation for r in requests], dtype=np.float64
            ),
        )


@dataclass
class PolicyResponseBatch(ColumnarBatch):
    """The served decisions for one request batch, in request order."""

    policy_ids: NDArray[Any]
    action_indices: NDArray[Any]
    heating_setpoints: NDArray[Any]
    cooling_setpoints: NDArray[Any]

    COLUMNS = (
        ColumnSpec("policy_ids", kind="id"),
        ColumnSpec("action_indices", kind="int"),
        ColumnSpec("heating_setpoints", kind="int"),
        ColumnSpec("cooling_setpoints", kind="int"),
    )

    def setpoint_pairs(self) -> NDArray[Any]:
        """``(B, 2)`` (heating, cooling) pairs."""
        return np.column_stack([self.heating_setpoints, self.cooling_setpoints])

    def to_responses(self) -> List["PolicyResponse"]:
        """Adapter to legacy per-request ``PolicyResponse`` objects."""
        from repro.serving.server import PolicyResponse

        return [
            PolicyResponse(
                policy_id=str(self.policy_ids[i]),
                action_index=int(self.action_indices[i]),
                heating_setpoint=int(self.heating_setpoints[i]),
                cooling_setpoint=int(self.cooling_setpoints[i]),
            )
            for i in range(len(self))
        ]
