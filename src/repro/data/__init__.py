"""Columnar data plane: the typed struct-of-arrays batches every layer speaks.

``repro.data`` owns the schema types that flow across layer boundaries —
environment to agent, agent to runner, client to policy server — plus the
float dtype policy (``float64`` reference, ``float32`` fast path) and the
zero-copy shared-memory transport the sharded policy server moves batches
over.  See :mod:`repro.data.schema` for the schema story and
:mod:`repro.data.shm` for the transport's ownership protocol.
"""

from repro.data.schema import (
    FLOAT_DTYPE_NAMES,
    FLOAT_DTYPES,
    OBSERVATION_FEATURES,
    ActionBatch,
    ColumnSpec,
    ColumnarBatch,
    InfoBatch,
    ObservationBatch,
    PolicyRequestBatch,
    PolicyResponseBatch,
    resolve_float_dtype,
)
from repro.data.shm import (
    ColumnSegment,
    SharedMemoryColumnarBuffer,
    ShmBatchHeader,
    ShmTransportError,
)

__all__ = [
    "FLOAT_DTYPE_NAMES",
    "FLOAT_DTYPES",
    "OBSERVATION_FEATURES",
    "ActionBatch",
    "ColumnSegment",
    "ColumnSpec",
    "ColumnarBatch",
    "InfoBatch",
    "ObservationBatch",
    "PolicyRequestBatch",
    "PolicyResponseBatch",
    "SharedMemoryColumnarBuffer",
    "ShmBatchHeader",
    "ShmTransportError",
    "resolve_float_dtype",
]
