"""Columnar data plane: the typed struct-of-arrays batches every layer speaks.

``repro.data`` owns the schema types that flow across layer boundaries —
environment to agent, agent to runner, client to policy server — plus the
float dtype policy (``float64`` reference, ``float32`` fast path).  See
:mod:`repro.data.schema` for the full story.
"""

from repro.data.schema import (
    FLOAT_DTYPE_NAMES,
    FLOAT_DTYPES,
    OBSERVATION_FEATURES,
    ActionBatch,
    ColumnSpec,
    ColumnarBatch,
    InfoBatch,
    ObservationBatch,
    PolicyRequestBatch,
    PolicyResponseBatch,
    resolve_float_dtype,
)

__all__ = [
    "FLOAT_DTYPE_NAMES",
    "FLOAT_DTYPES",
    "OBSERVATION_FEATURES",
    "ActionBatch",
    "ColumnSpec",
    "ColumnarBatch",
    "InfoBatch",
    "ObservationBatch",
    "PolicyRequestBatch",
    "PolicyResponseBatch",
    "resolve_float_dtype",
]
