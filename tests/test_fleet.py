"""Closed-loop fleet operations: loop, telemetry, shadow, drift, rollout.

The acceptance scenario lives in ``TestFleetEndToEnd``: a ≥1k-building fleet
runs through the sharded server with a candidate canaried and shadow-evaluated
— promoted when healthy (bit-identical telemetry across ``num_shards=1``,
sharded, and sharded-with-a-mid-canary-worker-kill topologies, zero lost
ticks) and auto-rolled-back when deliberately corrupted (drift alarm).  The
unit classes pin each subsystem's contract in isolation.
"""

import numpy as np
import pytest

from repro.agents import HysteresisAgent
from repro.agents.registry import make_agent
from repro.core.tree_policy import TreePolicy
from repro.data import ActionBatch
from repro.dtree.cart import DecisionTreeClassifier
from repro.experiments.cli import main
from repro.experiments.scenarios import ScenarioSpec
from repro.fleet import (
    CANARY,
    IDLE,
    PROMOTED,
    ROLLED_BACK,
    DriftDetector,
    FleetGroup,
    FleetLoop,
    FleetTelemetry,
    MPCTeacher,
    RolloutManager,
    ShadowEvaluator,
    TreePolicyTeacher,
    canary_mask,
)
from repro.serving import (
    Fault,
    ShardedPolicyServer,
    ShardedServingError,
    shard_for_policy,
)

N_FEATURES = 6


def scenario_env(name="pittsburgh/winter", seed=0, days=1):
    return ScenarioSpec.from_name(name, days=days).build_environment(seed)


def tree_policy_for(env, seed: int) -> TreePolicy:
    """A random tree over the environment's own action table."""
    pairs = env.action_space.pairs
    rng = np.random.default_rng(seed)
    features = rng.uniform(
        [10.0, -20.0, 0.0, 0.0, 0.0, 0.0],
        [35.0, 40.0, 100.0, 15.0, 1000.0, 60.0],
        size=(200, N_FEATURES),
    )
    labels = rng.integers(0, len(pairs), size=200)
    tree = DecisionTreeClassifier(max_depth=4)
    tree.fit(features, labels)
    return TreePolicy(tree, action_pairs=pairs)


def corrupted_clone(policy: TreePolicy) -> TreePolicy:
    """Every leaf forced to the most aggressive pair — maximal drift."""
    clone = TreePolicy.from_dict(policy.to_dict())
    extreme = max(clone.action_pairs, key=lambda p: (p[0], -p[1]))
    for leaf in clone.leaves():
        clone.set_leaf_action(leaf, *extreme)
    return clone


def fake_info(count, energy=1.0, proxy=2.0, violation=0.5, violated=1.0, occupied=1.0):
    return {
        "hvac_electric_energy_kwh": np.full(count, energy),
        "energy_proxy": np.full(count, proxy),
        "comfort_violation": np.full(count, violation),
        "comfort_violated": np.full(count, violated),
        "occupied": np.full(count, occupied),
    }


# -------------------------------------------------------------- telemetry
class TestFleetTelemetry:
    def test_accumulates_per_building_columns(self):
        ids = np.array(["a/b0", "a/b1", "b/b0"])
        telemetry = FleetTelemetry(ids, step_hours=0.25, window=4)
        telemetry.record_group(0, np.array([1.0, 2.0]), fake_info(2, violation=2.0))
        telemetry.record_group(2, np.array([3.0]), fake_info(1, energy=5.0))
        telemetry.advance_tick()
        assert telemetry.ticks == 1
        assert np.array_equal(telemetry.reward_sum, [1.0, 2.0, 3.0])
        assert np.array_equal(telemetry.energy_kwh, [1.0, 1.0, 5.0])
        # degree-hours scale by the step duration
        assert np.allclose(
            telemetry.comfort_violation_degree_hours, [0.5, 0.5, 0.125]
        )
        snapshot = telemetry.snapshot()
        assert snapshot["buildings"] == 3
        assert snapshot["lost_ticks"] == 0

    def test_windowed_means_slide(self):
        telemetry = FleetTelemetry(np.array(["x"]), step_hours=1.0, window=2)
        for reward in (1.0, 3.0, 5.0):
            telemetry.record_group(0, np.array([reward]), fake_info(1))
            telemetry.advance_tick()
        # window=2 keeps only the last two ticks: (3 + 5) / 2
        assert telemetry.windowed_mean_reward()[0] == pytest.approx(4.0)

    def test_fallback_and_lost_counters(self):
        telemetry = FleetTelemetry(np.array(["x"]), step_hours=1.0)
        telemetry.advance_tick(fallback=True)
        telemetry.advance_tick(lost=True)
        assert telemetry.fallback_ticks == 1
        assert telemetry.lost_ticks == 1

    def test_equals_is_bit_exact(self):
        ids = np.array(["a", "b"])
        one = FleetTelemetry(ids, step_hours=0.25, window=4)
        two = FleetTelemetry(ids, step_hours=0.25, window=4)
        for telemetry in (one, two):
            telemetry.record_group(0, np.array([1.0, 2.0]), fake_info(2))
            telemetry.advance_tick()
        assert one.equals(two)
        two.record_group(0, np.array([1.0, 2.0]), fake_info(2))
        two.advance_tick()
        assert not one.equals(two)

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetTelemetry(np.array([]), step_hours=1.0)
        with pytest.raises(ValueError):
            FleetTelemetry(np.array(["x"]), step_hours=1.0, window=0)


# ----------------------------------------------------------------- shadow
class TestShadowEvaluator:
    def make(self, **kwargs):
        return ShadowEvaluator(20.0, 24.0, 15.0, 30.0, **kwargs)

    def test_identical_actions_are_healthy(self):
        shadow = self.make()
        pairs = np.array([[21, 25], [22, 26]])
        shadow.observe(pairs, pairs)
        assert shadow.disagreement == 0.0
        assert shadow.energy_delta == 0.0
        assert shadow.healthy()

    def test_divergent_candidate_fails_the_gate(self):
        shadow = self.make()
        incumbent = np.array([[15, 30], [15, 30]])
        candidate = np.array([[25, 21], [25, 21]])  # conditions much harder
        shadow.observe(incumbent, candidate)
        assert shadow.disagreement == 1.0
        assert shadow.energy_delta > 0
        assert not shadow.healthy()

    def test_comfort_risk_delta_sign(self):
        shadow = self.make(max_comfort_delta=0.1)
        safe = np.array([[21, 23]])  # inside the comfort band
        risky = np.array([[18, 27]])  # leaves the zone exposed both ways
        shadow.observe(safe, risky)
        assert shadow.comfort_delta > 0
        assert not shadow.healthy()

    def test_empty_ticks_advance_the_window(self):
        shadow = self.make(window=2)
        bad = (np.array([[15, 30]]), np.array([[25, 21]]))
        shadow.observe(*bad)
        shadow.observe(np.empty((0, 2)), np.empty((0, 2)))
        assert shadow.observed == 2
        # the bad tick still dominates the row-weighted window
        assert shadow.disagreement == 1.0

    def test_shape_mismatch_raises(self):
        shadow = self.make()
        with pytest.raises(ValueError):
            shadow.observe(np.zeros((2, 2)), np.zeros((3, 2)))


# ------------------------------------------------------------------ drift
class TestDriftDetector:
    def setup_method(self):
        self.env = scenario_env(seed=0)
        self.incumbent = tree_policy_for(self.env, seed=1)
        self.corrupted = corrupted_clone(self.incumbent)

    def observations(self, rows, seed=0):
        rng = np.random.default_rng(seed)
        return rng.uniform(
            [10.0, -20.0, 0.0, 0.0, 0.0, 0.0],
            [35.0, 40.0, 100.0, 15.0, 1000.0, 60.0],
            size=(rows, N_FEATURES),
        )

    def test_tree_teacher_labels_match_the_policy(self):
        teacher = TreePolicyTeacher(self.incumbent)
        inputs = self.observations(32)
        pairs = np.asarray(self.incumbent.action_pairs)
        expected = pairs[self.incumbent.compiled().predict_batch(inputs)]
        assert np.array_equal(teacher.label_pairs(inputs), expected)

    def test_baseline_relative_alarm_fires_only_on_the_drifted_version(self):
        teacher = TreePolicyTeacher(self.incumbent)
        detector = DriftDetector(
            teacher,
            sample_size=16,
            window=8,
            threshold=0.5,
            min_ticks=3,
            baseline_policy_id="inc",
            seed=0,
        )
        inputs = self.observations(16)
        incumbent_pairs = teacher.label_pairs(inputs)
        corrupted_pairs = TreePolicyTeacher(self.corrupted).label_pairs(inputs)
        ids = np.array(["inc"] * 8 + ["cand"] * 8)
        served = np.concatenate([incumbent_pairs[:8], corrupted_pairs[8:]])
        for tick in range(4):
            detector.observe(tick, ids, served, inputs)
        assert detector.disagreement("inc") == 0.0
        assert detector.disagreement("cand") == 1.0
        assert detector.excess("cand") == 1.0
        assert "cand" in detector.alarms()
        assert "inc" not in detector.alarms()  # the baseline never alarms
        # latched on the first eligible tick (min_ticks=3 -> tick index 2)
        assert detector.first_alarm_tick("cand") == 2

    def test_alarm_needs_min_ticks(self):
        teacher = TreePolicyTeacher(self.incumbent)
        detector = DriftDetector(
            teacher, sample_size=8, min_ticks=5, baseline_policy_id="inc", seed=0
        )
        inputs = self.observations(8)
        wrong = TreePolicyTeacher(self.corrupted).label_pairs(inputs)
        detector.observe(0, np.full(8, "cand"), wrong, inputs)
        assert detector.alarms() == {}

    def test_sample_rows_is_seed_deterministic(self):
        one = DriftDetector(TreePolicyTeacher(self.incumbent), sample_size=10, seed=7)
        two = DriftDetector(TreePolicyTeacher(self.incumbent), sample_size=10, seed=7)
        for _ in range(3):
            assert np.array_equal(one.sample_rows(100), two.sample_rows(100))
        assert len(one.sample_rows(4)) == 4  # clamped to the fleet size

    def test_mpc_teacher_is_deterministic_and_in_table(self):
        from repro.agents.random_shooting import RandomShootingOptimizer
        from repro.agents.rule_based import RuleBasedAgent
        from repro.env.dataset import collect_historical_data
        from repro.nn.dynamics import ThermalDynamicsModel

        data = collect_historical_data(
            self.env, RuleBasedAgent.from_config(self.env), steps=48, seed=1
        )
        model = ThermalDynamicsModel(hidden_sizes=(8,), seed=2)
        model.fit(data, epochs=2, seed=3)

        def make_teacher():
            optimizer = RandomShootingOptimizer(
                dynamics_model=model,
                action_space=self.env.action_space,
                reward_config=self.env.config.reward,
                action_config=self.env.config.actions,
                num_samples=16,
                horizon=3,
                seed=4,
            )
            return MPCTeacher(
                optimizer,
                self.env.action_space.pairs,
                monte_carlo_runs=2,
                planning_horizon=3,
                seed=5,
            )

        inputs = self.observations(6)
        labels = make_teacher().label_pairs(inputs)
        assert np.array_equal(labels, make_teacher().label_pairs(inputs))
        table = {tuple(p) for p in self.env.action_space.pairs}
        assert all(tuple(pair) in table for pair in labels)

    def test_validation(self):
        teacher = TreePolicyTeacher(self.incumbent)
        with pytest.raises(ValueError):
            DriftDetector(teacher, sample_size=0)
        with pytest.raises(ValueError):
            DriftDetector(teacher, window=0)
        detector = DriftDetector(teacher)
        with pytest.raises(ValueError):
            detector.sample_rows(0)
        with pytest.raises(ValueError):
            detector.observe(0, np.array(["a"]), np.zeros((1, 2)), self.observations(2))


# ---------------------------------------------------------------- rollout
class TestRolloutManager:
    def test_state_machine_promotes_after_healthy_window(self):
        rollout = RolloutManager("inc", "cand", canary_fraction=0.5, min_canary_ticks=3)
        assert rollout.state == IDLE
        rollout.begin_canary(0)
        assert rollout.state == CANARY and rollout.active
        assert rollout.on_tick(0, shadow_healthy=True, drift_alarmed=False) == CANARY
        assert rollout.on_tick(1, shadow_healthy=True, drift_alarmed=False) == CANARY
        assert rollout.on_tick(2, shadow_healthy=True, drift_alarmed=False) == PROMOTED
        assert not rollout.active
        assert [e.state for e in rollout.events] == [CANARY, PROMOTED]

    def test_drift_alarm_rolls_back_immediately(self):
        rollout = RolloutManager("inc", "cand", min_canary_ticks=10)
        rollout.begin_canary(0)
        assert rollout.on_tick(1, shadow_healthy=True, drift_alarmed=True) == ROLLED_BACK

    def test_red_shadow_gate_rolls_back_at_window_close(self):
        rollout = RolloutManager("inc", "cand", min_canary_ticks=2)
        rollout.begin_canary(0)
        assert rollout.on_tick(0, shadow_healthy=False, drift_alarmed=False) == CANARY
        assert rollout.on_tick(1, shadow_healthy=False, drift_alarmed=False) == ROLLED_BACK

    def test_serving_ids_per_state(self):
        rollout = RolloutManager("inc", "cand", canary_fraction=0.5)
        ids = np.array(["inc", "inc", "other"])
        mask = np.array([True, False, True])
        assert np.array_equal(rollout.serving_ids(ids, mask), ids)  # idle
        rollout.begin_canary(0)
        assert list(rollout.serving_ids(ids, mask)) == ["cand", "inc", "other"]
        rollout._transition(1, PROMOTED, "test")
        assert list(rollout.serving_ids(ids, mask)) == ["cand", "cand", "other"]
        rollout._transition(2, ROLLED_BACK, "test")
        assert list(rollout.serving_ids(ids, mask)) == ["inc", "inc", "other"]

    def test_canary_mask_is_stable_and_near_fraction(self):
        ids = np.array([f"town/b{i:05d}" for i in range(4000)])
        mask = canary_mask(ids, 0.25)
        assert np.array_equal(mask, canary_mask(ids, 0.25))  # no RNG anywhere
        assert 0.2 < np.mean(mask) < 0.3
        # membership is per-id: a permutation permutes the mask with it
        order = np.random.default_rng(0).permutation(len(ids))
        assert np.array_equal(canary_mask(ids[order], 0.25), mask[order])
        assert not canary_mask(ids, 0.0).any()
        assert canary_mask(ids, 1.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            RolloutManager("same", "same")
        with pytest.raises(ValueError):
            RolloutManager("inc", "cand", canary_fraction=0.0)
        with pytest.raises(ValueError):
            canary_mask(np.array(["a"]), 1.5)
        rollout = RolloutManager("inc", "cand")
        rollout.begin_canary(0)
        with pytest.raises(RuntimeError):
            rollout.begin_canary(1)


# ------------------------------------------------------------- hysteresis
class TestHysteresisAgent:
    def test_registered_with_aliases(self):
        agent = make_agent("hysteresis", season="winter")
        assert isinstance(agent, HysteresisAgent)
        assert isinstance(make_agent("thermostat", season="winter"), HysteresisAgent)

    def test_batched_selection_matches_serial(self):
        envs = [scenario_env(seed=s) for s in range(4)]
        serial_agents = HysteresisAgent.for_environments(envs)
        batch_agents = HysteresisAgent.for_environments(envs)
        from repro.env.vector_env import BatchedHVACEnvironment

        batched = BatchedHVACEnvironment(envs)
        observations, _ = batched.reset()
        serial_obs = [env.reset()[0] for env in envs]
        for step in range(96):
            expected = [
                agent.select_action(obs, env, step)
                for agent, obs, env in zip(serial_agents, serial_obs, envs)
            ]
            actions = HysteresisAgent.select_actions_batch(
                batch_agents, observations, envs, step
            )
            assert list(actions.indices) == expected
            serial_obs = [
                env.step(a).observation for env, a in zip(envs, expected)
            ]
            result = batched.step(ActionBatch(np.asarray(expected)))
            observations = result.observations

    def test_latch_behaviour(self):
        agent = HysteresisAgent(deadband=0.5)
        mid = agent.comfort.midpoint
        agent._advance_latch(mid - 1.0, occupied=True)
        assert agent._heat_on  # cold zone engages heating
        agent._advance_latch(mid, occupied=True)
        assert agent._heat_on  # latched until the top of the deadband
        agent._advance_latch(mid + 1.0, occupied=True)
        assert not agent._heat_on
        agent._advance_latch(mid - 2.0, occupied=False)
        assert not agent._heat_on  # unoccupied never conditions

    def test_validation(self):
        with pytest.raises(ValueError):
            HysteresisAgent(deadband=0.0)
        with pytest.raises(ValueError):
            HysteresisAgent(deadband=50.0)


# ------------------------------------------------------------- fleet loop
class _FailingServer:
    """A server whose retry budget is always exhausted."""

    def serve_columnar(self, batch):
        raise ShardedServingError("injected")


class TestFleetLoopDegradedModes:
    def make_group(self):
        return FleetGroup.from_scenario(
            "pittsburgh/winter", policy_id="inc", num_buildings=8, days=1
        )

    def test_serving_failure_falls_back_to_hysteresis(self):
        loop = FleetLoop(_FailingServer(), [self.make_group()])
        loop.run(3)
        assert loop.telemetry.fallback_ticks == 3
        assert loop.telemetry.lost_ticks == 0
        # the physics never paused: energy/reward accumulated anyway
        assert loop.telemetry.ticks == 3

    def test_without_fallback_ticks_are_lost_but_counted(self):
        loop = FleetLoop(_FailingServer(), [self.make_group()], fallback=False)
        loop.run(2)
        assert loop.telemetry.lost_ticks == 2
        assert loop.telemetry.fallback_ticks == 0

    def test_group_validation(self):
        with pytest.raises(ValueError):
            FleetLoop(_FailingServer(), [])
        with pytest.raises(ValueError):
            FleetGroup.from_scenario("pittsburgh/winter", policy_id="x", num_buildings=0)


# ------------------------------------------------------------- end to end
FLEET_BUILDINGS = 1024
FLEET_TICKS = 8


class TestFleetEndToEnd:
    """The acceptance scenario: canary through the real serving stack."""

    def build_fleet(self, corrupt=False):
        groups = [
            FleetGroup.from_scenario(
                "pittsburgh/winter",
                policy_id="inc-a",
                num_buildings=FLEET_BUILDINGS // 2,
                base_seed=0,
                days=1,
                name="pit-winter",
            ),
            FleetGroup.from_scenario(
                "tucson/summer",
                policy_id="inc-b",
                num_buildings=FLEET_BUILDINGS // 2,
                base_seed=100,
                days=1,
                name="tuc-summer",
            ),
        ]
        env_a = groups[0].env.environments[0]
        env_b = groups[1].env.environments[0]
        inc_a = tree_policy_for(env_a, seed=11)
        inc_b = tree_policy_for(env_b, seed=22)
        candidate = (
            corrupted_clone(inc_a)
            if corrupt
            else TreePolicy.from_dict(inc_a.to_dict())
        )
        return groups, {"inc-a": inc_a, "inc-b": inc_b, "cand": candidate}, env_a

    def run_fleet(self, num_shards, corrupt=False, kill_tick=None):
        groups, policies, env_a = self.build_fleet(corrupt=corrupt)
        rollout = RolloutManager(
            "inc-a", "cand", canary_fraction=0.25, min_canary_ticks=6
        )
        reward = env_a.config.reward
        shadow = ShadowEvaluator(
            reward.comfort.lower,
            reward.comfort.upper,
            *env_a.config.actions.off_setpoints(),
            window=8,
        )
        drift = DriftDetector(
            TreePolicyTeacher(policies["inc-a"]),
            sample_size=64,
            window=8,
            threshold=0.25,
            min_ticks=3,
            baseline_policy_id="inc-a",
            seed=5,
        )
        server = ShardedPolicyServer(
            store=False, num_shards=num_shards, timeout=10.0, heartbeat_interval=None
        )
        try:
            for policy_id, policy in policies.items():
                server.register(policy_id, policy)
            loop = FleetLoop(server, groups, rollout=rollout, shadow=shadow, drift=drift)
            rollout.begin_canary(0)
            for tick in range(FLEET_TICKS):
                if kill_tick is not None and tick == kill_tick:
                    server.inject_fault(
                        Fault(kind="kill", shard=shard_for_policy("cand", num_shards))
                    )
                loop.tick()
        finally:
            server.close()
        return loop

    def test_healthy_candidate_promotes_bit_identically_across_topologies(self):
        local = self.run_fleet(num_shards=1)
        sharded = self.run_fleet(num_shards=2)
        killed = self.run_fleet(num_shards=2, kill_tick=3)
        for loop in (local, sharded, killed):
            assert loop.rollout.state == PROMOTED
            assert loop.telemetry.lost_ticks == 0
            assert loop.telemetry.fallback_ticks == 0
            assert loop.shadow.healthy()  # identical clone: zero disagreement
        # telemetry is bit-identical across serving topologies, kill included
        assert local.telemetry.equals(sharded.telemetry)
        assert local.telemetry.equals(killed.telemetry)

    def test_corrupted_candidate_rolls_back_on_drift_alarm(self):
        loop = self.run_fleet(num_shards=1, corrupt=True)
        assert loop.rollout.state == ROLLED_BACK
        assert loop.telemetry.lost_ticks == 0
        assert "cand" in loop.drift.alarms() or loop.drift.first_alarm_tick("cand") is not None
        # rollback reverts the canary slice: serving ids are incumbents again
        served = loop._serving_ids()
        assert "cand" not in set(served.tolist())
        report = loop.report()
        assert report["rollout"]["events"][-1]["state"] == ROLLED_BACK


# -------------------------------------------------------------------- CLI
class TestFleetCLI:
    def test_fleet_command_canary_rollback_smoke(self, tmp_path):
        output = tmp_path / "report.json"
        stats = tmp_path / "stats.json"
        code = main(
            [
                "fleet",
                "--buildings", "24",
                "--ticks", "8",
                "--canary", "0.25",
                "--min-canary-ticks", "4",
                "--corrupt-candidate",
                "--window", "6",
                "--store", str(tmp_path / "store"),
                "--decision-data", "24",
                "--stats-json", str(stats),
                "--output", str(output),
            ]
        )
        assert code == 0
        import json

        report = json.loads(output.read_text())
        assert report["rollout"]["state"] == ROLLED_BACK
        assert report["telemetry"]["lost_ticks"] == 0
        counters = json.loads(stats.read_text())
        assert "fleet" in counters

    def test_fleet_rejects_bad_arguments(self, tmp_path):
        assert main(["fleet", "--buildings", "0"]) == 2
        assert main(["fleet", "--canary", "2.0"]) == 2
        assert main(["fleet", "--inject-kill", "1", "--shards", "1"]) == 2
