"""Policy store: deterministic keys, round-trips, integrity, pipeline caching."""

import json

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
from repro.store import (
    PolicyKey,
    PolicyStore,
    StoreIntegrityError,
    building_label,
)

TINY = dict(
    historical_days=2,
    hidden_sizes=(16,),
    training_epochs=8,
    optimizer_samples=32,
    planning_horizon=4,
    num_decision_data=48,
    monte_carlo_runs=2,
    num_probabilistic_samples=64,
)


@pytest.fixture(scope="module")
def config() -> PipelineConfig:
    return PipelineConfig.tiny(seed=11, **TINY)


@pytest.fixture(scope="module")
def result(config):
    return VerifiedPolicyPipeline(config).run()


@pytest.fixture()
def store(tmp_path) -> PolicyStore:
    return PolicyStore(tmp_path / "store")


# ------------------------------------------------------------------- keys
def test_key_is_deterministic(config):
    a = PolicyKey.from_config(config)
    b = PolicyKey.from_config(config)
    assert a == b
    assert a.key_id == b.key_id
    assert a.name == f"{config.city}/{config.season}/{a.key_id}"


def test_key_tracks_every_config_knob(config):
    base = PolicyKey.from_config(config)
    assert PolicyKey.from_config(config.with_overrides(seed=12)) != base
    # Headline coordinates identical, deep knob changed -> hash still differs.
    deep = PolicyKey.from_config(config.with_overrides(optimizer_samples=33))
    assert (deep.city, deep.season, deep.seed) == (base.city, base.season, base.seed)
    assert deep.config_hash != base.config_hash


def test_building_label_roundtrip():
    assert building_label(24) == "office"
    assert building_label(48) == "dense_office"
    assert building_label(7) == "occupants7"


# ------------------------------------------------------------- round trip
def test_put_get_roundtrip(store, result):
    entry = store.put(result)
    stored = store.get(result.config)
    assert stored is not None
    assert stored.policy.to_dict() == result.policy.to_dict()
    assert stored.fidelity == result.fidelity
    assert stored.model_rmse == result.model_rmse
    assert stored.verification.safe_probability == result.verification.safe_probability
    assert (
        stored.verification.formal_report.satisfied
        == result.verification.formal_report.satisfied
    )
    assert stored.entry.policy_sha256 == entry.policy_sha256


def test_put_is_idempotent_and_content_addressed(store, config, result):
    first = store.put(result)
    second = store.put(result)
    assert first.path == second.path
    assert first.content_sha256 == second.content_sha256
    assert first.policy_sha256 == second.policy_sha256
    assert len(store.entries()) == 1

    # An independent run of the same config hashes identically (determinism).
    rerun = VerifiedPolicyPipeline(config).run()
    assert store.put(rerun).content_sha256 == first.content_sha256


def test_entries_listing_and_filters(store, result, config):
    store.put(result)
    other = VerifiedPolicyPipeline(config.with_overrides(seed=12)).run()
    store.put(other)
    assert len(store.entries()) == 2
    assert len(store.entries(city=config.city)) == 2
    assert store.entries(city="nowhere") == []
    assert store.contains(config)
    found = store.find(PolicyKey.from_config(config).key_id)
    assert found is not None and found.policy.to_dict() == result.policy.to_dict()


def test_prune_and_delete(store, result, config):
    store.put(result)
    other = VerifiedPolicyPipeline(config.with_overrides(seed=12)).run()
    store.put(other)
    removed = store.prune(keep=1)
    assert len(removed) == 1
    assert len(store.entries()) == 1
    assert store.delete(store.entries()[0].key) is True
    assert store.entries() == []
    assert store.delete(config) is False


# -------------------------------------------------------------- integrity
def test_tampered_artifact_fails_integrity(store, result):
    entry = store.put(result)
    artifact = json.loads(entry.path.read_text())
    artifact["content"]["fidelity"] = 0.123456
    entry.path.write_text(json.dumps(artifact))
    with pytest.raises(StoreIntegrityError, match="hash mismatch"):
        store.get(result.config)


def test_schema_drift_fails_loudly(store, result):
    entry = store.put(result)
    artifact = json.loads(entry.path.read_text())
    artifact["schema_version"] = 999
    entry.path.write_text(json.dumps(artifact))
    with pytest.raises(StoreIntegrityError, match="schema_version"):
        store.get(result.config)


def test_tree_and_policy_schema_versions_validated(result):
    payload = result.policy.to_dict()
    assert payload["schema_version"] == 1
    assert payload["tree"]["schema_version"] == 1
    from repro.core.tree_policy import TreePolicy

    bad_policy = dict(payload, schema_version=99)
    with pytest.raises(ValueError, match="policy schema_version 99"):
        TreePolicy.from_dict(bad_policy)
    bad_tree = dict(payload, tree=dict(payload["tree"], schema_version=99))
    with pytest.raises(ValueError, match="tree schema_version 99"):
        TreePolicy.from_dict(bad_tree)


# ------------------------------------------------------- pipeline caching
def test_pipeline_second_run_is_pure_cache_hit(store, config, monkeypatch):
    first = VerifiedPolicyPipeline(config, store=store).run()
    assert first.cache_hit is False
    assert first.store_key is not None

    # Any attempt to rebuild pipeline stages on the second run is a failure.
    import repro.core.pipeline as pipeline_module

    def _boom(*args, **kwargs):
        raise AssertionError("cache hit must not re-run pipeline stages")

    monkeypatch.setattr(
        pipeline_module.VerifiedPolicyPipeline, "collect_history", _boom
    )
    monkeypatch.setattr(
        pipeline_module.VerifiedPolicyPipeline, "train_dynamics_model", _boom
    )
    second = VerifiedPolicyPipeline(config, store=store).run()
    assert second.cache_hit is True
    assert second.store_key == first.store_key
    assert second.policy.to_dict() == first.policy.to_dict()
    assert second.verified == first.verified
    assert set(second.stage_seconds) == {"store_lookup"}


def test_pipeline_refresh_forces_rerun(store, config):
    first = VerifiedPolicyPipeline(config, store=store).run()
    refreshed = VerifiedPolicyPipeline(config, store=store).run(refresh=True)
    assert refreshed.cache_hit is False
    assert refreshed.policy.to_dict() == first.policy.to_dict()  # determinism


def test_dt_agent_resolves_from_store(store, config, monkeypatch):
    from repro.agents import make_agent

    overrides = dict(TINY, seed=11)
    first = make_agent("dt", store=store, pipeline=overrides)
    assert len(store.entries()) == 1

    import repro.core.pipeline as pipeline_module

    def _boom(*args, **kwargs):
        raise AssertionError("second make_agent must be a pure store hit")

    monkeypatch.setattr(
        pipeline_module.VerifiedPolicyPipeline, "collect_history", _boom
    )
    second = make_agent("dt", store=store, pipeline=overrides)
    assert len(store.entries()) == 1
    assert second.policy.to_dict() == first.policy.to_dict()


def test_dt_agent_store_false_bypasses_persistence(store):
    from repro.agents import make_agent

    agent = make_agent("dt", store=False, pipeline=dict(TINY, seed=11))
    assert store.entries() == []
    assert agent.policy.leaf_count >= 1


def test_cached_result_roundtrips_verification(store, config):
    VerifiedPolicyPipeline(config, store=store).run()
    cached = VerifiedPolicyPipeline(config, store=store).run()
    summary = cached.summary_dict()
    assert summary["cache_hit"] is True
    assert summary["decision_data"] is None
    assert np.isfinite(summary["model_rmse"])
