"""Agent registry: lookup, aliases, config-driven construction."""

import pytest

from repro.agents import (
    BaseAgent,
    ConstantAgent,
    RandomAgent,
    RuleBasedAgent,
    available_agents,
    agent_aliases,
    canonical_name,
    make_agent,
    register_agent,
)
from repro.experiments.scenarios import ScenarioSpec
from repro.utils.config import ComfortConfig

ALL_AGENTS = {"clue", "constant", "dt", "mbrl", "mppi", "random", "rule_based"}


def test_all_seven_controllers_registered():
    assert ALL_AGENTS <= set(available_agents())


def test_aliases_resolve():
    assert canonical_name("default") == "rule_based"
    assert canonical_name("rs") == "mbrl"
    assert canonical_name("tree") == "dt"
    assert canonical_name("Rule-Based") == "rule_based"


def test_unknown_agent_raises_with_listing():
    with pytest.raises(KeyError, match="rule_based"):
        canonical_name("no_such_agent")


def test_make_simple_agents():
    assert isinstance(make_agent("rule_based"), RuleBasedAgent)
    assert isinstance(make_agent("random", seed=3), RandomAgent)
    constant = make_agent("constant", heating_setpoint=18, cooling_setpoint=26)
    assert isinstance(constant, ConstantAgent)
    assert constant.heating_setpoint == 18
    assert constant.cooling_setpoint == 26


def test_rule_based_inherits_environment_comfort():
    env = ScenarioSpec(city="tucson", season="summer", days=1).build_environment(seed=0)
    agent = make_agent("rule_based", environment=env)
    assert agent.comfort == ComfortConfig.summer()


def test_registered_via_decorator_and_rejects_duplicates():
    @register_agent("_test_only", aliases=("_test_alias",))
    class _TestAgent(BaseAgent):
        name = "_test_only"

        def select_action(self, observation, environment, step):
            return 0

    assert canonical_name("_test_alias") == "_test_only"
    assert isinstance(make_agent("_test_only"), _TestAgent)
    with pytest.raises(ValueError, match="already registered"):
        register_agent("_test_only")(_TestAgent)


def test_random_agent_seeded_construction_is_deterministic():
    env = ScenarioSpec(city="pittsburgh", days=1).build_environment(seed=0)
    a = make_agent("random", seed=11)
    b = make_agent("random", seed=11)
    obs, _ = env.reset()
    actions_a = [a.select_action(obs, env, 0) for _ in range(10)]
    obs, _ = env.reset()
    actions_b = [b.select_action(obs, env, 0) for _ in range(10)]
    assert actions_a == actions_b
