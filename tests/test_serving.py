"""Compiled serving: compiled-vs-recursive equivalence, server batching, CLI."""

import json

import numpy as np
import pytest

from repro.core.tree_policy import TreePolicy
from repro.dtree.cart import DecisionTreeClassifier
from repro.serving import (
    CompiledTreeForest,
    CompiledTreePolicy,
    PolicyRequest,
    PolicyServer,
    UnknownPolicyError,
)

N_FEATURES = 6
ACTION_PAIRS = [(15 + i, 22 + i) for i in range(8)]
FEATURE_NAMES = [f"f{i}" for i in range(N_FEATURES)]


def random_policy(seed: int, rows: int = 160) -> TreePolicy:
    """A tree fitted on random data — irregular shape, random thresholds."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(-5.0, 5.0, size=(rows, N_FEATURES))
    labels = rng.integers(0, len(ACTION_PAIRS), size=rows)
    tree = DecisionTreeClassifier(max_depth=int(rng.integers(2, 9)))
    tree.fit(features, labels)
    return TreePolicy(tree, action_pairs=ACTION_PAIRS, feature_names=FEATURE_NAMES)


def probe_inputs(policy: TreePolicy, seed: int, rows: int = 400) -> np.ndarray:
    """Random probes plus every split threshold placed exactly on the boundary."""
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(-6.0, 6.0, size=(rows, N_FEATURES))
    thresholds = [
        (node.feature_index, node.threshold)
        for node in policy.tree.root.iter_nodes()
        if not node.is_leaf
    ]
    for row, (feature, threshold) in enumerate(thresholds[: len(inputs)]):
        inputs[row, feature] = threshold  # the <= / > boundary case
    return inputs


# ------------------------------------------------------------- equivalence
@pytest.mark.parametrize("seed", range(8))
def test_compiled_matches_recursive_on_random_trees(seed):
    policy = random_policy(seed)
    compiled = CompiledTreePolicy.from_policy(policy)
    inputs = probe_inputs(policy, seed + 100)
    assert np.array_equal(
        compiled.predict_batch(inputs), policy.predict_action_indices(inputs)
    )


def test_compiled_matches_recursive_on_pipeline_policy():
    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline

    result = VerifiedPolicyPipeline(
        PipelineConfig.tiny(seed=21, num_decision_data=48, training_epochs=8)
    ).run()
    policy = result.policy
    compiled = policy.compiled()
    assert compiled.node_count == policy.node_count
    assert compiled.leaf_count == policy.leaf_count
    inputs = probe_inputs(policy, 22, rows=600)
    assert np.array_equal(
        compiled.predict_batch(inputs), policy.predict_action_indices(inputs)
    )
    # Setpoint decoding matches the recursive path too.
    setpoints = compiled.setpoints_batch(inputs[:32])
    expected = np.array([policy.setpoints_for(row) for row in inputs[:32]])
    assert np.array_equal(setpoints, expected)


def test_compiled_single_leaf_tree():
    tree = DecisionTreeClassifier()
    tree.fit(np.zeros((4, N_FEATURES)), np.full(4, 3))
    policy = TreePolicy(tree, action_pairs=ACTION_PAIRS)
    compiled = CompiledTreePolicy.from_policy(policy)
    assert compiled.predict_batch(np.zeros((5, N_FEATURES))).tolist() == [3] * 5


def test_compiled_rejects_bad_input_shape():
    compiled = CompiledTreePolicy.from_policy(random_policy(0))
    with pytest.raises(ValueError, match="shape"):
        compiled.predict_batch(np.zeros((3, N_FEATURES + 1)))


def test_forest_routes_each_row_through_its_own_tree():
    policies = [random_policy(seed) for seed in range(5)]
    forest = CompiledTreeForest.from_policies(policies)
    rng = np.random.default_rng(9)
    inputs = rng.uniform(-6.0, 6.0, size=(len(policies), N_FEATURES))
    expected = np.array(
        [policy.predict_action_index(inputs[i]) for i, policy in enumerate(policies)]
    )
    assert np.array_equal(forest.predict_rows(inputs), expected)


def test_forest_rejects_mixed_dimensions():
    small_tree = DecisionTreeClassifier()
    small_tree.fit(np.random.default_rng(0).uniform(size=(10, 2)), np.arange(10) % 2)
    small = TreePolicy(small_tree, action_pairs=ACTION_PAIRS, feature_names=["a", "b"])
    with pytest.raises(ValueError, match="dimension"):
        CompiledTreeForest.from_policies([random_policy(0), small])


# ------------------------------------------------------------------ server
def test_server_batches_across_policies(tmp_path):
    server = PolicyServer(store=str(tmp_path), cache_size=4)
    policies = {f"building-{i}": random_policy(i + 40) for i in range(3)}
    for policy_id, policy in policies.items():
        server.register(policy_id, policy)

    rng = np.random.default_rng(7)
    requests = [
        PolicyRequest(
            policy_id=f"building-{i % 3}",
            observation=rng.uniform(-5.0, 5.0, size=N_FEATURES),
        )
        for i in range(64)
    ]
    responses = server.serve(requests)
    assert len(responses) == len(requests)
    for request, response in zip(requests, responses):
        policy = policies[request.policy_id]
        index = policy.predict_action_index(np.asarray(request.observation))
        heating, cooling = policy.decode_action(index)
        assert response.policy_id == request.policy_id
        assert response.action_index == index
        assert (response.heating_setpoint, response.cooling_setpoint) == (heating, cooling)
    assert server.stats.requests == 64
    assert server.stats.batches == 1


def test_server_lru_eviction_and_store_resolution(tmp_path):
    from repro.core.pipeline import PipelineConfig, VerifiedPolicyPipeline
    from repro.store import PolicyStore

    store = PolicyStore(tmp_path)
    tiny = dict(num_decision_data=48, training_epochs=8, num_probabilistic_samples=64)
    for seed in (31, 32):
        VerifiedPolicyPipeline(PipelineConfig.tiny(seed=seed, **tiny), store=store).run()
    ids = [entry.key.name for entry in store.entries()]
    assert len(ids) == 2

    server = PolicyServer(store=store, cache_size=1)
    observation = np.full(N_FEATURES, 20.0)
    server.serve_one(ids[0], observation)
    server.serve_one(ids[1], observation)  # evicts ids[0]
    server.serve_one(ids[0], observation)  # recompiles
    assert server.stats.evictions >= 1
    assert server.stats.compile_count == 3
    assert server.stats.cache_misses == 3

    with pytest.raises(UnknownPolicyError):
        server.serve_one("no/such/policy", observation)


# --------------------------------------------------------------------- CLI
def test_cli_serve_and_policies_smoke(tmp_path, capsys):
    from repro.experiments.cli import main

    store_root = str(tmp_path / "store")
    assert (
        main(
            [
                "serve",
                "--store",
                store_root,
                "--requests",
                "300",
                "--batch-size",
                "64",
                "--decision-data",
                "48",
                "--output",
                str(tmp_path / "serve.json"),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "req/s" in out
    summary = json.loads((tmp_path / "serve.json").read_text())
    assert summary["requests"] == 300
    assert summary["requests_per_second"] > 0

    assert main(["policies", "--store", store_root, "--verify"]) == 0
    out = capsys.readouterr().out
    assert "pittsburgh/winter" in out
    assert "1/1 artifacts OK" in out

    # The serve run persisted its auto-extracted policy: a second serve is a
    # pure store hit (no re-extraction message).
    assert main(["serve", "--store", store_root, "--requests", "64"]) == 0
    out = capsys.readouterr().out
    assert "extracting" not in out


def test_cli_policies_empty_store(tmp_path, capsys):
    from repro.experiments.cli import main

    assert main(["policies", "--store", str(tmp_path / "empty")]) == 0
    assert "No stored policies" in capsys.readouterr().out
