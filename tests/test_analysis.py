"""Tests for reprolint: per-rule true/false positives, suppressions,
baseline diffing, the CLI entry points, and a smoke run on the real tree."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, Finding, make_rules, run_lint
from repro.analysis.reporters import render_human, render_json
from repro.analysis.suppressions import is_suppressed, parse_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def write_tree(root: Path, files: dict) -> Path:
    """Materialise ``{relpath: source}`` under ``root`` and return it."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(root: Path, only=(), baseline=None):
    """Run the engine over a fixture tree, restricted to ``only`` rules."""
    return run_lint(root, baseline=baseline, only=only)


def rules_of(result):
    """The rule ids the run flagged, as a sorted list."""
    return sorted(f.rule for f in result.findings)


# ----------------------------------------------------------------- REP001
class TestDtypePolicy:
    def test_flags_dtypeless_constructors_in_scope(self, tmp_path):
        write_tree(tmp_path, {
            "data/bad.py": """
                import numpy as np

                def alloc(n):
                    a = np.zeros(n)
                    b = np.full(n, 1.0)
                    c = np.asarray([1.0, 2.0])
                    return a, b, c
            """,
        })
        result = lint(tmp_path, only=("REP001",))
        assert rules_of(result) == ["REP001", "REP001", "REP001"]
        assert all(f.severity == "error" for f in result.findings)

    def test_accepts_explicit_dtype_keyword_and_positional(self, tmp_path):
        write_tree(tmp_path, {
            "data/good.py": """
                import numpy as np

                def alloc(n):
                    a = np.zeros(n, dtype=np.float32)
                    b = np.full(n, 1.0, np.float64)
                    c = np.asarray([1, 2], dtype=np.int64)
                    return a, b, c
            """,
        })
        assert lint(tmp_path, only=("REP001",)).findings == []

    def test_out_of_scope_files_are_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "utils/helper.py": """
                import numpy as np

                def alloc(n):
                    return np.zeros(n)
            """,
        })
        assert lint(tmp_path, only=("REP001",)).findings == []

    def test_non_numpy_zeros_is_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "data/other.py": """
                class Grid:
                    def zeros(self, n):
                        return [0] * n

                def use(grid, n):
                    return grid.zeros(n)
            """,
        })
        assert lint(tmp_path, only=("REP001",)).findings == []


# ----------------------------------------------------------------- REP002
class TestZeroCopy:
    def test_flags_pickle_deepcopy_and_tolist(self, tmp_path):
        write_tree(tmp_path, {
            "data/shm.py": """
                import pickle
                from copy import deepcopy

                def leak(batch):
                    blob = pickle.dumps(batch)
                    clone = deepcopy(batch)
                    rows = batch.values.tolist()
                    return blob, clone, rows
            """,
        })
        result = lint(tmp_path, only=("REP002",))
        # pickle import + pickle.dumps + deepcopy + tolist
        assert len(result.findings) == 4

    def test_flags_list_of_dict_materialisation(self, tmp_path):
        write_tree(tmp_path, {
            "data/adapter.py": """
                def rows(batch):
                    return [{"v": v} for v in batch.values]
            """,
        })
        assert rules_of(lint(tmp_path, only=("REP002",))) == ["REP002"]

    def test_send_path_requires_guard(self, tmp_path):
        write_tree(tmp_path, {
            "serving/sharded.py": """
                def dispatch(ring, batch):
                    header = batch.to_shm(ring)
                    return header
            """,
        })
        result = lint(tmp_path, only=("REP002",))
        assert rules_of(result) == ["REP002"]
        assert "assert_zero_copy" in result.findings[0].message

    def test_guarded_send_path_passes(self, tmp_path):
        write_tree(tmp_path, {
            "serving/sharded.py": """
                def dispatch(ring, batch):
                    header = batch.to_shm(ring)
                    header.assert_zero_copy()
                    return header
            """,
        })
        assert lint(tmp_path, only=("REP002",)).findings == []

    def test_pure_delegation_is_exempt(self, tmp_path):
        write_tree(tmp_path, {
            "data/schema.py": """
                def to_shm(self, ring):
                    \"\"\"Delegates; the guard runs inside write_batch.\"\"\"
                    return ring.write_batch(self)
            """,
        })
        assert lint(tmp_path, only=("REP002",)).findings == []

    def test_out_of_scope_pickle_is_fine(self, tmp_path):
        write_tree(tmp_path, {
            "store/io.py": """
                import pickle

                def save(obj, path):
                    with open(path, "wb") as fh:
                        pickle.dump(obj, fh)
            """,
        })
        assert lint(tmp_path, only=("REP002",)).findings == []


# ----------------------------------------------------------------- REP003
class TestSchemaContract:
    FIXTURE = """
        import numpy as np


        class ColumnarBatch:
            def take(self, idx):
                return self

        class ActionBatch(ColumnarBatch):
            indices: np.ndarray

            COLUMNS = (
                ColumnSpec("indices", kind="int"),
            )

            def head(self):
                return self.indices[0]
    """

    def test_undeclared_attribute_read_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "data/schema.py": self.FIXTURE,
            "serving/server.py": """
                from data.schema import ActionBatch

                def serve(batch: ActionBatch):
                    return batch.indicies.sum()
            """,
        })
        result = lint(tmp_path, only=("REP003",))
        assert rules_of(result) == ["REP003"]
        assert "indicies" in result.findings[0].message

    def test_declared_columns_methods_and_inherited_api_pass(self, tmp_path):
        write_tree(tmp_path, {
            "data/schema.py": self.FIXTURE,
            "serving/server.py": """
                from data.schema import ActionBatch

                def serve(batch: ActionBatch):
                    sub = batch.take([0])
                    return batch.indices.sum() + sub.head() + len(batch.COLUMNS)
            """,
        })
        assert lint(tmp_path, only=("REP003",)).findings == []

    def test_spec_without_matching_field_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "data/schema.py": """
                import numpy as np

                class GhostBatch:
                    COLUMNS = (
                        ColumnSpec("phantom", kind="float"),
                    )
            """,
        })
        result = lint(tmp_path, only=("REP003",))
        assert rules_of(result) == ["REP003"]
        assert "phantom" in result.findings[0].message

    def test_producer_dtype_must_match_declared_kind(self, tmp_path):
        write_tree(tmp_path, {
            "data/schema.py": self.FIXTURE,
            "serving/make.py": """
                import numpy as np
                from data.schema import ActionBatch

                def build(n):
                    return ActionBatch(indices=np.zeros(n, dtype=np.float64))
            """,
        })
        result = lint(tmp_path, only=("REP003",))
        assert rules_of(result) == ["REP003"]
        assert "float64" in result.findings[0].message

    def test_matching_producer_dtype_passes(self, tmp_path):
        write_tree(tmp_path, {
            "data/schema.py": self.FIXTURE,
            "serving/make.py": """
                import numpy as np
                from data.schema import ActionBatch

                def build(n):
                    return ActionBatch(indices=np.zeros(n, dtype=np.int64))
            """,
        })
        assert lint(tmp_path, only=("REP003",)).findings == []


# ----------------------------------------------------------------- REP004
class TestResourceOwnership:
    def test_unclosed_local_resource_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "transport.py": """
                from multiprocessing import shared_memory

                def leak(size):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    shm.buf[0] = 1
            """,
        })
        result = lint(tmp_path, only=("REP004",))
        assert rules_of(result) == ["REP004"]

    def test_closed_resource_and_escape_via_return_pass(self, tmp_path):
        write_tree(tmp_path, {
            "transport.py": """
                from multiprocessing import shared_memory, Pipe, Process

                def tidy(size):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    try:
                        shm.buf[0] = 1
                    finally:
                        shm.close()
                        shm.unlink()

                def factory(size):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    return Wrapper(shm, owner=True)

                def managed(path):
                    with Process(target=print) as proc:
                        proc.join()
            """,
        })
        assert lint(tmp_path, only=("REP004",)).findings == []

    def test_self_storage_in_disposing_class_passes(self, tmp_path):
        write_tree(tmp_path, {
            "transport.py": """
                from multiprocessing import Pipe, Process

                class Server:
                    def start(self):
                        ours, theirs = Pipe()
                        self._conns.append(ours)
                        theirs.close()
                        proc = Process(target=print)
                        self._workers.append(proc)

                    def close(self):
                        for conn in self._conns:
                            conn.close()
                        for proc in self._workers:
                            proc.join()
            """,
        })
        assert lint(tmp_path, only=("REP004",)).findings == []

    def test_self_storage_without_disposal_method_is_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "transport.py": """
                from multiprocessing import Process

                class Fire:
                    def start(self):
                        proc = Process(target=print)
                        self._workers.append(proc)
            """,
        })
        assert rules_of(lint(tmp_path, only=("REP004",))) == ["REP004"]


# ----------------------------------------------------------------- REP005
class TestRngDiscipline:
    def test_global_state_calls_are_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "agents/bad.py": """
                import numpy as np

                def sample(n):
                    np.random.seed(0)
                    return np.random.uniform(size=n)
            """,
        })
        result = lint(tmp_path, only=("REP005",))
        assert rules_of(result) == ["REP005", "REP005"]

    def test_generator_construction_and_method_calls_pass(self, tmp_path):
        write_tree(tmp_path, {
            "agents/good.py": """
                import numpy as np

                def sample(n, seed):
                    rng = np.random.default_rng(seed)
                    seq = np.random.SeedSequence(seed)
                    return rng.uniform(size=n), seq
            """,
        })
        assert lint(tmp_path, only=("REP005",)).findings == []

    def test_utils_rng_is_exempt(self, tmp_path):
        write_tree(tmp_path, {
            "utils/rng.py": """
                import numpy as np

                def legacy_seed(seed):
                    np.random.seed(seed)
            """,
        })
        assert lint(tmp_path, only=("REP005",)).findings == []


# ----------------------------------------------------------------- REP006
class TestTimeoutDiscipline:
    def test_flags_unbounded_join_wait_and_recv(self, tmp_path):
        write_tree(tmp_path, {
            "serving/bad.py": """
                from multiprocessing.connection import wait as connection_wait

                def reap(process):
                    process.join()

                def gather(connections, stop_event):
                    ready = connection_wait(connections)
                    stop_event.wait()
                    return ready

                def pump(connection):
                    return connection.recv()
            """,
        })
        result = lint(tmp_path, only=("REP006",))
        assert rules_of(result) == ["REP006"] * 4

    def test_accepts_bounded_blocking(self, tmp_path):
        write_tree(tmp_path, {
            "serving/good.py": """
                from multiprocessing.connection import wait as connection_wait

                def reap(process):
                    process.join(timeout=5.0)
                    process.join(5.0)

                def gather(connections, stop_event):
                    ready = connection_wait(connections, timeout=1.0)
                    stop_event.wait(0.25)
                    stop_event.wait(timeout=0.25)
                    return ready

                def pump(connection):
                    if not connection.poll(0.25):
                        return None
                    return connection.recv()
            """,
        })
        assert lint(tmp_path, only=("REP006",)).findings == []

    def test_str_join_and_recv_with_args_are_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "serving/strings.py": """
                def render(parts, sock):
                    joined = ", ".join(parts)
                    data = sock.recv(4096)
                    return joined, data
            """,
        })
        assert lint(tmp_path, only=("REP006",)).findings == []

    def test_poll_in_another_function_does_not_excuse_recv(self, tmp_path):
        write_tree(tmp_path, {
            "serving/split.py": """
                def guard(connection):
                    return connection.poll(0.25)

                def pump(connection):
                    return connection.recv()
            """,
        })
        result = lint(tmp_path, only=("REP006",))
        assert rules_of(result) == ["REP006"]

    def test_scope_is_serving_and_shm_only(self, tmp_path):
        write_tree(tmp_path, {
            "agents/elsewhere.py": """
                def reap(process, connection):
                    process.join()
                    return connection.recv()
            """,
            "data/shm.py": """
                def pump(connection):
                    return connection.recv()
            """,
        })
        result = lint(tmp_path, only=("REP006",))
        assert [f.path for f in result.findings] == ["data/shm.py"]

    def test_suppression_with_reason_is_honored(self, tmp_path):
        write_tree(tmp_path, {
            "serving/justified.py": """
                def pump(connection):
                    return connection.recv()  # reprolint: disable=REP006 -- bounded by caller's wait()
            """,
        })
        result = lint(tmp_path, only=("REP006",))
        assert result.findings == []


# ----------------------------------------------------------------- REP007
class TestFleetColumnar:
    def test_flags_per_building_loops_and_scalarising_calls(self, tmp_path):
        write_tree(tmp_path, {
            "fleet/bad.py": """
                def accumulate(building_ids, telemetry):
                    rows = []
                    for building_id in building_ids:
                        rows.append({"id": building_id})
                    for i in range(len(building_ids)):
                        telemetry[i] += 1
                    return telemetry.tolist()
            """,
        })
        result = lint(tmp_path, only=("REP007",))
        assert rules_of(result) == ["REP007", "REP007", "REP007"]

    def test_flags_wrapped_iteration_and_dict_telemetry(self, tmp_path):
        write_tree(tmp_path, {
            "fleet/bad.py": """
                def fold(observations, rewards):
                    pairs = [obs for obs in zip(observations, rewards)]
                    return [{"reward": float(r)} for r in pairs]
            """,
        })
        result = lint(tmp_path, only=("REP007",))
        assert rules_of(result) == ["REP007", "REP007"]

    def test_columnar_code_group_loops_and_summaries_pass(self, tmp_path):
        write_tree(tmp_path, {
            "fleet/good.py": """
                import numpy as np

                def tick(groups, observations, rewards):
                    total = np.sum(rewards)
                    for group in groups:
                        group.step()
                    return total

                class Telemetry:
                    def report(self, groups):
                        return [{"name": g.name} for g in groups]
            """,
        })
        result = lint(tmp_path, only=("REP007",))
        assert result.findings == []

    def test_scope_is_fleet_only_and_suppression_honored(self, tmp_path):
        write_tree(tmp_path, {
            "env/elsewhere.py": """
                def walk(building_ids):
                    return [b for b in building_ids]
            """,
            "fleet/justified.py": """
                def mask(building_ids):
                    return [hash(b) for b in building_ids]  # reprolint: disable=REP007 -- one-shot setup
            """,
        })
        result = lint(tmp_path, only=("REP007",))
        assert result.findings == []
        assert result.suppressed_count == 1


# ----------------------------------------------------------------- REP008
class TestArenaCopy:
    def test_flags_copy_and_tolist_on_compiled_array_receivers(self, tmp_path):
        write_tree(tmp_path, {
            "serving/bad.py": """
                def scratch(compiled):
                    a = compiled.feature.copy()
                    b = compiled.action_pairs.tolist()
                    c = self_arena_view.copy()
                    return a, b, c
            """,
        })
        result = lint(tmp_path, only=("REP008",))
        assert rules_of(result) == ["REP008", "REP008", "REP008"]

    def test_non_arena_receivers_pass(self, tmp_path):
        write_tree(tmp_path, {
            "serving/good.py": """
                def descend(nodes, roots):
                    remaining = nodes.copy()
                    pinned = roots.copy()
                    return remaining, pinned
            """,
        })
        assert lint(tmp_path, only=("REP008",)).findings == []

    def test_scope_excludes_non_serving_modules(self, tmp_path):
        write_tree(tmp_path, {
            "experiments/tooling.py": """
                def snapshot(compiled):
                    return compiled.threshold.copy()
            """,
        })
        assert lint(tmp_path, only=("REP008",)).findings == []

    def test_unnameable_receivers_are_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "serving/dynamic.py": """
                def rows(batch, resolve):
                    return batch[0].copy(), resolve("x").tolist()
            """,
        })
        assert lint(tmp_path, only=("REP008",)).findings == []


# ------------------------------------------------------------ suppressions
class TestSuppressions:
    def test_trailing_directive_silences_only_its_rule(self, tmp_path):
        write_tree(tmp_path, {
            "data/mixed.py": """
                import numpy as np

                def alloc(n):
                    a = np.zeros(n)  # reprolint: disable=REP001 -- width probe
                    b = np.zeros(n)  # reprolint: disable=REP002 -- wrong rule
                    return a, b
            """,
        })
        result = lint(tmp_path, only=("REP001",))
        assert len(result.findings) == 1
        assert result.suppressed_count == 1

    def test_standalone_directive_covers_next_code_line(self, tmp_path):
        write_tree(tmp_path, {
            "data/block.py": """
                import numpy as np

                def alloc(values):
                    # reprolint: disable=REP001 -- dtype-preserving on purpose,
                    # with the justification running over two comment lines.
                    return np.asarray(values)
            """,
        })
        result = lint(tmp_path, only=("REP001",))
        assert result.findings == []
        assert result.suppressed_count == 1

    def test_disable_all_and_multi_rule_forms(self):
        source = "x = 1  # reprolint: disable=all\ny = 2  # reprolint: disable=REP001, REP002\n"
        supp = parse_suppressions(source)
        assert is_suppressed(supp, "REP004", 1, 1)
        assert is_suppressed(supp, "REP001", 2, 2)
        assert is_suppressed(supp, "REP002", 2, 2)
        assert not is_suppressed(supp, "REP003", 2, 2)

    def test_directive_inside_string_literal_is_ignored(self):
        source = 's = "# reprolint: disable=REP001"\n'
        assert parse_suppressions(source) == {}

    def test_multiline_node_is_covered_by_first_line_comment(self, tmp_path):
        write_tree(tmp_path, {
            "data/span.py": """
                import numpy as np

                def alloc(n):
                    return np.full(  # reprolint: disable=REP001 -- spans lines
                        n,
                        1.0,
                    )
            """,
        })
        assert lint(tmp_path, only=("REP001",)).findings == []


# ---------------------------------------------------------------- baseline
class TestBaseline:
    def _finding(self, msg="dtype-less np.zeros()", line=3):
        return Finding("REP001", "data/x.py", line, "error", msg)

    def test_baseline_absorbs_known_debt_but_not_new(self):
        known = self._finding()
        baseline = Baseline.from_findings([known])
        new_finding = self._finding(msg="dtype-less np.full()")
        new, absorbed = baseline.filter_new([known, new_finding])
        assert absorbed == 1
        assert new == [new_finding]

    def test_line_moves_do_not_invalidate_the_baseline(self):
        baseline = Baseline.from_findings([self._finding(line=3)])
        new, absorbed = baseline.filter_new([self._finding(line=90)])
        assert new == [] and absorbed == 1

    def test_counts_gate_extra_identical_findings(self):
        baseline = Baseline.from_findings([self._finding()])
        new, absorbed = baseline.filter_new([self._finding(), self._finding(line=9)])
        assert absorbed == 1
        assert len(new) == 1

    def test_round_trip_and_missing_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert Baseline.load(path).counts == {}
        baseline = Baseline.from_findings([self._finding(), self._finding(line=9)])
        baseline.save(path)
        assert Baseline.load(path).counts == baseline.counts

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_engine_applies_baseline_to_gate(self, tmp_path):
        write_tree(tmp_path, {
            "data/debt.py": """
                import numpy as np

                def alloc(n):
                    return np.zeros(n)
            """,
        })
        first = lint(tmp_path, only=("REP001",))
        assert not first.ok
        baseline = Baseline.from_findings(first.findings)
        second = lint(tmp_path, only=("REP001",), baseline=baseline)
        assert second.ok
        assert second.baselined_count == 1
        assert second.new_findings == []


# ------------------------------------------------------------ engine + CLI
class TestEngineAndCli:
    def test_unknown_rule_id_is_rejected(self):
        with pytest.raises(ValueError, match="REP999"):
            make_rules(("REP999",))

    def test_syntax_error_fails_the_gate(self, tmp_path):
        write_tree(tmp_path, {"data/broken.py": "def broken(:\n"})
        result = lint(tmp_path)
        assert not result.ok
        assert result.parse_errors

    def test_reporters_render(self, tmp_path):
        write_tree(tmp_path, {
            "data/bad.py": """
                import numpy as np

                def alloc(n):
                    return np.zeros(n)
            """,
        })
        result = lint(tmp_path, only=("REP001",))
        human = render_human(result)
        assert "REP001" in human and "FAIL" in human and "hint:" in human
        report = json.loads(render_json(result))
        assert report["ok"] is False
        assert report["counts_by_rule"] == {"REP001": 1}
        assert report["findings"][0]["path"] == "data/bad.py"

    def test_module_entry_point_gates_on_exit_code(self, tmp_path):
        write_tree(tmp_path, {
            "data/bad.py": """
                import numpy as np

                def alloc(n):
                    return np.zeros(n)
            """,
        })
        env = {"PYTHONPATH": str(REPO_ROOT / "src")}
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--root", str(tmp_path),
             "--no-baseline", "--format", "json"],
            capture_output=True, text=True, env={**env, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert json.loads(proc.stdout)["new_finding_count"] == 1

    def test_write_baseline_then_pass(self, tmp_path):
        write_tree(tmp_path, {
            "data/bad.py": """
                import numpy as np

                def alloc(n):
                    return np.zeros(n)
            """,
        })
        baseline_path = tmp_path / "baseline.json"
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        args = [sys.executable, "-m", "repro.analysis", "--root", str(tmp_path),
                "--baseline", str(baseline_path)]
        first = subprocess.run(args + ["--write-baseline"], capture_output=True,
                               text=True, env=env)
        assert first.returncode == 0
        second = subprocess.run(args, capture_output=True, text=True, env=env)
        assert second.returncode == 0, second.stdout + second.stderr

    def test_repro_lint_subcommand_is_wired(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["lint", "--select", "REP001"])
        assert args.select == "REP001"
        assert args.func.__name__ == "cmd_lint"


# ------------------------------------------------------------- real tree
class TestRealTree:
    def test_src_repro_is_lint_clean_against_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / ".reprolint-baseline.json")
        result = run_lint(PACKAGE_ROOT, baseline=baseline)
        assert result.parse_errors == []
        assert result.gate_failures == [], render_human(result)

    def test_real_tree_schema_model_sees_the_batch_classes(self):
        from repro.analysis.engine import build_project

        project = build_project(PACKAGE_ROOT)
        for name in ("ColumnarBatch", "ObservationBatch", "ActionBatch",
                     "PolicyRequestBatch", "PolicyResponseBatch"):
            assert name in project.batch_classes
        api = project.class_api("ActionBatch")
        assert "indices" in api and "take" in api
