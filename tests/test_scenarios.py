"""Scenario grid construction and environment materialisation."""

import pytest

from repro.experiments.scenarios import (
    BUILDINGS,
    SEASONS,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    scenario_grid,
)
from repro.utils.config import ComfortConfig
from repro.weather.climates import available_climates


def test_default_grid_covers_all_axes():
    grid = scenario_grid()
    assert len(grid) == len(available_climates()) * len(SEASONS) * len(BUILDINGS)
    names = [spec.name for spec in grid]
    assert len(names) == len(set(names)), "scenario names must be unique"


def test_grid_filtering():
    grid = scenario_grid(cities=["tucson"], seasons=["summer"], buildings=["office"])
    assert len(grid) == 1
    assert grid[0].name == "tucson/summer/office"


def test_name_round_trip():
    for name in available_scenarios()[:6]:
        assert get_scenario(name).name == name


def test_from_name_resolves_climate_aliases():
    spec = ScenarioSpec.from_name("hot_dry/summer")
    assert spec.city == "tucson"
    assert spec.season == "summer"
    assert spec.building == "office"


def test_invalid_axes_raise():
    with pytest.raises(KeyError):
        ScenarioSpec(city="atlantis")
    with pytest.raises(ValueError):
        ScenarioSpec(city="tucson", season="monsoon")
    with pytest.raises(ValueError):
        ScenarioSpec(city="tucson", building="castle")


def test_build_environment_matches_spec():
    spec = ScenarioSpec(city="tucson", season="summer", building="dense_office", days=2)
    env = spec.build_environment(seed=5)
    assert env.num_steps == 2 * 96
    assert env.config.reward.comfort == ComfortConfig.summer()
    assert env.config.simulation.start_month == 7
    # Summer Tucson should be hot: mean outdoor temperature above 20 C.
    assert env.weather.outdoor_temperature.mean() > 20.0


def test_winter_summer_weather_differ():
    winter = ScenarioSpec(city="chicago", season="winter", days=2).build_environment(seed=0)
    summer = ScenarioSpec(city="chicago", season="summer", days=2).build_environment(seed=0)
    assert (
        summer.weather.outdoor_temperature.mean()
        > winter.weather.outdoor_temperature.mean() + 10.0
    )
